"""Noqa fixture: suppressed RC004 violation under serve/."""
import time


async def waived():
    time.sleep(0.0)                  # repro: noqa[RC004]
