"""Analysis and reporting: scoring, cost models, frequency and ASCII reports."""

from .costmodel import (
    MappingCostComparison,
    compare_costs,
    env_mapping_seconds,
    naive_mapping_experiments,
    naive_mapping_seconds,
)
from .frequency import PairFrequency, frequency_vs_clique_size, measurement_intervals
from .report import render_env_tree, render_plan, render_structural_tree, render_table
from .scoring import GroupScore, MappingScore, score_view

__all__ = [
    "naive_mapping_experiments", "naive_mapping_seconds", "env_mapping_seconds",
    "compare_costs", "MappingCostComparison",
    "score_view", "MappingScore", "GroupScore",
    "render_table", "render_env_tree", "render_structural_tree", "render_plan",
    "measurement_intervals", "frequency_vs_clique_size", "PairFrequency",
]
