"""CLM-COLLIDE — colliding measurements report about half the real value (§2.3).

Two NWS bandwidth experiments run at the same time on the same shared hub:
each one observes ≈ 50 % of the real capacity, which is exactly why the
deployment must keep experiments from colliding.  The benchmark also shows
that the ENV-planned deployment keeps the measurement error small while an
uncoordinated all-pairs deployment on the same hosts does not.
"""

import pytest

from repro.core import independent_pairs_plan, plan_from_view
from repro.netsim import FlowModel
from repro.nws import NWSConfig, NWSSystem
from repro.simkernel import Engine


def test_bench_collision_halves_bandwidth(benchmark, ens_lyon):
    fm = FlowModel(Engine(), ens_lyon)

    def collide():
        solo = fm.single_flow_mbps("myri1", "myri0")
        both = fm.steady_state_mbps([("myri1", "myri0"), ("myri2", "myri0")])
        return solo, both

    solo, both = benchmark(collide)

    print("\n[CLM-COLLIDE] concurrent experiments on one hub segment")
    print(f"  lone probe myri1->myri0:          {solo:6.1f} Mbit/s")
    print(f"  colliding probes (myri1, myri2):  {both[0]:6.1f} / {both[1]:6.1f} Mbit/s")
    print(f"  reported fraction of real value:  {both[0] / solo:.2f}")

    assert both[0] / solo == pytest.approx(0.5, abs=0.05)
    assert both[1] / solo == pytest.approx(0.5, abs=0.05)


def test_bench_collision_corrupts_uncoordinated_deployment(ens_lyon):
    hub_hosts = ["myri0", "myri1", "myri2", "popc0"]

    env_system = NWSSystem(ens_lyon, plan_from_view(
        __import__("repro.env", fromlist=["map_ens_lyon"]).map_ens_lyon(ens_lyon),
        period_s=10.0), config=NWSConfig(token_hold_gap_s=1.0))
    env_system.run(150.0)
    env_errors = env_system.measurement_error_report()
    env_hub_errors = [err for pair, err in env_errors.items()
                      if pair <= set(hub_hosts)] or list(env_errors.values())

    bad_system = NWSSystem(ens_lyon,
                           independent_pairs_plan(ens_lyon, hub_hosts, period_s=5.0),
                           config=NWSConfig(token_hold_gap_s=0.0))
    bad_system.run(150.0)
    bad_errors = bad_system.measurement_error_report()

    env_worst = max(env_hub_errors)
    bad_worst = max(bad_errors.values())
    print("\n[CLM-COLLIDE] measurement error, planned vs. uncoordinated deployment")
    print(f"  ENV-planned deployment, worst relative error:   {env_worst:.2f}")
    print(f"  uncoordinated all-pairs deployment, worst error: {bad_worst:.2f}")

    assert bad_worst > 0.25
    assert env_worst < bad_worst
