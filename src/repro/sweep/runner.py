"""The parallel sweep runner.

:func:`run_sweep` shards a list of registered scenarios across a
``multiprocessing`` pool, runs the full map → plan → quality pipeline per
scenario (:func:`repro.pipeline.run_pipeline`), caches each result on disk
keyed by scenario content hash + code version, and aggregates the outcomes
into a JSONL result store plus summary rows.

Cache layout (one file per scenario × code state × run parameters)::

    <cache_dir>/<scenario>-<scenario_hash[:12]>-<code_version[:12]>-<run_key[:8]>.json

A cached scenario is *not* re-run unless ``rerun=True``; editing any source
file under ``src/repro`` changes the code version and invalidates the whole
cache, editing a scenario's parameters invalidates that scenario only, and
sweeping with different run parameters (``period_s`` / ``baselines``) uses
separate cache entries.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import render_table
from ..dynamics import DynamicScenario, run_replay
from ..ioutils import write_atomic
from ..obs.profile import PROFILER
from ..obs.trace import TRACER
from ..perf import counters_snapshot, fast_path_enabled, set_fast_path
from ..pipeline import run_pipeline
from ..scenarios import Scenario, get_scenario, list_scenarios
from .results import (
    SweepRecord,
    append_jsonl,
    default_store_path,
    summary_rows,
)

__all__ = ["SweepResult", "TaskContext", "code_version", "cache_path",
           "run_scenario", "run_sweep", "load_cached_record", "store_record",
           "submit_scenario", "DEFAULT_CACHE_DIR", "DEFAULT_BASELINES"]

DEFAULT_CACHE_DIR = ".sweep-cache"
#: Baselines evaluated per scenario; a subset of the CLI ``quality`` set to
#: keep per-scenario cost dominated by the ENV pipeline itself.
DEFAULT_BASELINES: Tuple[str, ...] = ("global-clique", "subnet")


@dataclass(frozen=True)
class TaskContext:
    """Caller state shipped with every pool task.

    The warm pool's workers were forked once and keep their globals, so
    *nothing* set in the parent afterwards applies to them implicitly.
    Anything per-task must ride along explicitly: the fast-path switch
    (a pool created under one setting must not silently apply it to later
    tasks submitted under another) and the submitter's trace context (the
    worker parents its spans under it and ships them back over the result
    channel).
    """

    fast_path: bool = True
    trace: Optional[Dict[str, str]] = None
    #: Non-zero arms the worker's sampling profiler at this rate for the
    #: task; its collapsed stacks ride the result channel home (see
    #: :func:`_worker_with_counters`).
    profile_hz: int = 0

    @classmethod
    def current(cls) -> "TaskContext":
        """The submitting process' state at call time."""
        return cls(fast_path=fast_path_enabled(),
                   trace=TRACER.current_context())


@lru_cache(maxsize=1)
def code_version() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Any code change invalidates previously cached sweep results.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    sources: List[str] = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        sources.extend(os.path.join(dirpath, f)
                       for f in sorted(filenames) if f.endswith(".py"))
    for source in sources:
        digest.update(os.path.relpath(source, package_root).encode("utf-8"))
        with open(source, "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def _run_key(period_s: float, baselines: Sequence[str]) -> str:
    """Short digest of the run parameters that shape a scenario's result."""
    payload = json.dumps({"period_s": period_s,
                          "baselines": sorted(baselines)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def cache_path(cache_dir: str, scenario_name: str,
               period_s: float = 60.0,
               baselines: Sequence[str] = DEFAULT_BASELINES) -> str:
    """The cache file a result for ``scenario_name`` lives in.

    The key couples the scenario's content hash, the code version and the
    run parameters (period, baselines), so results recorded under different
    sweep flags are never served for one another.  Dynamic scenarios ignore
    ``baselines`` at run time (a replay has no baseline stage), so it is
    excluded from their key — a ``--baselines`` change never forces their
    expensive multi-epoch replays to re-run.
    """
    scenario = get_scenario(scenario_name)
    if isinstance(scenario, DynamicScenario):
        baselines = ()
    return os.path.join(
        cache_dir,
        f"{scenario.name}-{scenario.content_hash[:12]}-{code_version()[:12]}"
        f"-{_run_key(period_s, baselines)}.json")


def run_scenario(scenario_or_name: "Scenario | str",
                 period_s: float = 60.0,
                 baselines: Sequence[str] = DEFAULT_BASELINES) -> SweepRecord:
    """Build one scenario, run the pipeline, return its record (never raises).

    Accepts a :class:`Scenario` directly (what the pool workers receive, so a
    spawn-started worker never has to consult the parent's registry) or a
    registered scenario name.  Dynamic scenarios are replayed over their
    churn schedule instead of running the one-shot pipeline; their records
    carry the epoch-aware replay digest (``summary["epoch_records"]``), the
    ``baselines`` parameter does not apply to them (a replay has no baseline
    stage), and the cache key inherits the schedule identity because the
    scenario's content hash covers every churn parameter plus the base
    platform hash.
    """
    start = time.perf_counter()
    name = (scenario_or_name.name if isinstance(scenario_or_name, Scenario)
            else scenario_or_name)
    scenario = None
    try:
        scenario = (scenario_or_name if isinstance(scenario_or_name, Scenario)
                    else get_scenario(scenario_or_name))
        if isinstance(scenario, DynamicScenario):
            summary = run_replay(scenario, period_s=period_s).summary()
        else:
            with TRACER.span("pipeline.simulate", scenario=scenario.name):
                platform = scenario.build()
            summary = run_pipeline(platform, period_s=period_s,
                                   baselines=baselines).summary()
        return SweepRecord(
            scenario=scenario.name,
            family=scenario.family,
            scenario_hash=scenario.content_hash,
            code_version=code_version(),
            status="ok",
            elapsed_s=time.perf_counter() - start,
            summary=summary,
        )
    except Exception:
        return SweepRecord(
            scenario=name,
            family=scenario.family if scenario else "unknown",
            scenario_hash=scenario.content_hash if scenario else "",
            code_version=code_version(),
            status="error",
            elapsed_s=time.perf_counter() - start,
            error=traceback.format_exc(),
        )


def _worker(args: Tuple[Scenario, float, Tuple[str, ...], TaskContext]
            ) -> SweepRecord:
    scenario, period_s, baselines, context = args
    # Apply the shipped per-task state (see TaskContext): the fast-path
    # switch, and — under a sampled trace — a span adopting the submitter's
    # context so the scenario's pipeline-stage spans parent correctly.
    set_fast_path(context.fast_path)
    with TRACER.adopt(context.trace, "sweep.run_scenario",
                      scenario=scenario.name, fast_path=context.fast_path):
        return run_scenario(scenario, period_s=period_s, baselines=baselines)


def _worker_with_counters(args: Tuple[Scenario, float, Tuple[str, ...],
                                      TaskContext]
                          ) -> Tuple[SweepRecord, Dict[str, int],
                                     List[Dict[str, object]],
                                     Optional[Dict[str, object]]]:
    """Like :func:`_worker`, but ships the task's observability payload too.

    ``repro.perf.COUNTERS`` and the span ring buffer are per-process, so
    pipeline work done in a pool worker is invisible to the submitting
    process; the serving layer folds the counter deltas back in (so its
    ``/metrics`` endpoint reflects the work its jobs actually caused) and
    ingests the captured spans (so ``GET /trace/{id}`` shows the worker's
    pipeline stages).  A pool worker runs one task at a time, so the
    before/after counter difference — and the captured span set — is
    exactly this task's work.

    With ``context.profile_hz`` set, the task additionally runs under the
    worker's sampling profiler; the fourth element of the return tuple is
    the shipped profile payload (``None`` when unprofiled), which the
    submitter folds into its own :data:`~repro.obs.profile.PROFILER`.
    """
    context = args[3]
    before = counters_snapshot()
    with TRACER.capture() as captured, \
            PROFILER.maybe(bool(context.profile_hz),
                           hz=context.profile_hz) as profile:
        record = _worker(args)
    after = counters_snapshot()
    deltas = {name: after[name] - before[name] for name in after}
    return record, deltas, captured.spans, profile.as_payload()


# -- persistent warm worker pool ---------------------------------------------
# Spawning a fresh multiprocessing pool per sweep re-pays interpreter start-up
# and module import for every call; repeated sweeps (the CLI's dynamics run
# after a static sweep, test suites, notebook loops) reuse one warm pool as
# long as the requested worker count matches.

_pool: Optional[multiprocessing.pool.Pool] = None
_pool_processes = 0


def _shutdown_pool() -> None:
    global _pool, _pool_processes
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_processes = 0


atexit.register(_shutdown_pool)


def _warm_pool(processes: int) -> multiprocessing.pool.Pool:
    """The shared pool, recreated when the worker count changes.

    ``jobs`` is a concurrency *cap*, not a hint: reusing a larger warm pool
    for a smaller request would run more pipelines at once than the caller
    allowed (oversubscribing a memory-heavy batch).  Only an exact match
    reuses the warm workers — repeated sweeps with stable parameters, the
    case warmth pays off in, still hit it.
    """
    global _pool, _pool_processes
    if _pool is not None and _pool_processes != processes:
        _shutdown_pool()
    if _pool is None:
        _pool = multiprocessing.Pool(processes=processes)
        _pool_processes = processes
    return _pool


@dataclass
class SweepResult:
    """Aggregate outcome of one :func:`run_sweep` invocation."""

    records: List[SweepRecord] = field(default_factory=list)
    out_path: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def errors(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.ok]

    def record_for(self, scenario: str) -> SweepRecord:
        for record in self.records:
            if record.scenario == scenario:
                return record
        raise KeyError(scenario)

    def summary_table(self) -> str:
        return render_table(summary_rows(self.records))


def _load_cached(path: str) -> Optional[SweepRecord]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = SweepRecord.from_json(handle.read())
    except (OSError, ValueError, TypeError):
        return None
    # A cached failure is not worth keeping: re-run the scenario.
    return record if record.ok else None


def load_cached_record(cache_dir: str, scenario_name: str,
                       period_s: float = 60.0,
                       baselines: Sequence[str] = DEFAULT_BASELINES,
                       ) -> Optional[SweepRecord]:
    """The cached record of one scenario, or ``None`` on a miss.

    The public face of the sweep cache for other consumers (the serving
    layer's job queue checks it before dispatching pipeline work); corrupt
    entries and cached failures count as misses, exactly as in
    :func:`run_sweep`.
    """
    return _load_cached(cache_path(cache_dir, scenario_name,
                                   period_s=period_s, baselines=baselines))


def store_record(cache_dir: str, record: SweepRecord,
                 period_s: float = 60.0,
                 baselines: Sequence[str] = DEFAULT_BASELINES,
                 out_path: Optional[str] = None) -> str:
    """Persist one freshly run record the way :func:`run_sweep` does.

    Successful records land in the per-scenario cache (atomically, so a
    later sweep of the same scenario is a cache hit) and every record is
    appended to the JSONL result store.  Returns the store path.
    """
    if record.ok and not record.cached:
        os.makedirs(cache_dir, exist_ok=True)
        write_atomic(cache_path(cache_dir, record.scenario, period_s=period_s,
                                baselines=baselines),
                     record.to_json() + "\n", suffix=".json")
    out_path = out_path or default_store_path(cache_dir)
    append_jsonl(out_path, [record])
    return out_path


def submit_scenario(scenario_name: str, processes: int,
                    period_s: float = 60.0,
                    baselines: Sequence[str] = DEFAULT_BASELINES,
                    trace_ctx: Optional[Dict[str, str]] = None,
                    profile_hz: int = 0,
                    ) -> "multiprocessing.pool.AsyncResult":
    """Dispatch one scenario run onto the shared warm pool, asynchronously.

    Used by the serving layer (:mod:`repro.serve.jobs`): HTTP-submitted runs
    execute in the *same* warm worker pool the sweep engine uses — one pool
    per process, never a second one — and the caller polls the returned
    :class:`~multiprocessing.pool.AsyncResult` without blocking an event
    loop.  The worker never raises; failures come back as error records.
    The async result yields ``(record, perf-counter deltas, spans,
    profile)`` so the caller can account the worker's pipeline work — and
    its trace, and (with ``profile_hz`` set) its sampled stacks — in its
    own process.  ``trace_ctx`` overrides the submitter's ambient trace
    context (the serving layer captures it on the request thread, before the
    job reaches the dispatcher).
    """
    scenario = get_scenario(scenario_name)
    pool = _warm_pool(max(1, processes))
    context = TaskContext(fast_path=fast_path_enabled(),
                          trace=trace_ctx or TRACER.current_context(),
                          profile_hz=profile_hz)
    return pool.apply_async(
        _worker_with_counters,
        ((scenario, period_s, tuple(baselines), context),))


def run_sweep(names: Optional[Sequence[str]] = None,
              pattern: Optional[str] = None,
              jobs: int = 1,
              cache_dir: str = DEFAULT_CACHE_DIR,
              rerun: bool = False,
              out_path: Optional[str] = None,
              period_s: float = 60.0,
              baselines: Sequence[str] = DEFAULT_BASELINES) -> SweepResult:
    """Run the pipeline over many scenarios, with caching and parallelism.

    Parameters
    ----------
    names:
        Explicit scenario names; defaults to every registered scenario.
    pattern:
        Substring filter on name/family/tags, applied to the selection.
    jobs:
        Worker processes; ``1`` runs in-process (easier to debug/profile).
    cache_dir:
        Where per-scenario result files live; created on demand.
    rerun:
        Ignore (and overwrite) existing cache entries.
    out_path:
        JSONL result store to append this run's records to; defaults to
        ``<cache_dir>/results.jsonl``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    start = time.perf_counter()
    if names is None:
        selected = [s.name for s in list_scenarios(pattern)]
    else:
        selected = [get_scenario(n).name for n in names]
        if pattern:
            selected = [n for n in selected
                        if get_scenario(n).matches(pattern)]
        # Duplicate names would run the scenario twice and append duplicate
        # records to the result store; keep the first occurrence only.
        selected = list(dict.fromkeys(selected))
    if not selected:
        raise ValueError("no scenarios selected "
                         f"(pattern={pattern!r}, names={names!r})")
    os.makedirs(cache_dir, exist_ok=True)

    def _path(name: str) -> str:
        return cache_path(cache_dir, name, period_s=period_s,
                          baselines=baselines)

    records: Dict[str, SweepRecord] = {}
    todo: List[str] = []
    for name in selected:
        cached = None if rerun else _load_cached(_path(name))
        if cached is not None:
            cached.cached = True
            records[name] = cached
        else:
            todo.append(name)

    job_args = [(get_scenario(name), period_s, tuple(baselines),
                 TaskContext.current())
                for name in todo]
    if jobs == 1 or len(todo) <= 1:
        fresh = [_worker(args) for args in job_args]
    else:
        # Size by the requested cap alone: a pool never runs more tasks
        # than are queued, and a todo-dependent size would tear the warm
        # pool down whenever the cache state changes.
        processes = jobs
        # Chunked dispatch amortises the per-task IPC round trips; four
        # chunks per worker keeps the tail balanced when scenario costs vary.
        chunksize = max(1, len(job_args) // (processes * 4))
        pool = _warm_pool(processes)
        try:
            fresh = list(pool.imap_unordered(_worker, job_args,
                                             chunksize=chunksize))
        except Exception:
            # A broken pool (killed worker, corrupted pipe) must not poison
            # later sweeps: drop it so the next call starts a fresh one.
            _shutdown_pool()
            raise

    for record in fresh:
        records[record.scenario] = record
        if record.ok:
            # Atomic: a killed process must not leave a truncated cache entry.
            write_atomic(_path(record.scenario), record.to_json() + "\n",
                         suffix=".json")

    ordered = [records[name] for name in selected]
    out_path = out_path or default_store_path(cache_dir)
    append_jsonl(out_path, ordered)
    return SweepResult(records=ordered, out_path=out_path,
                       elapsed_s=time.perf_counter() - start)
