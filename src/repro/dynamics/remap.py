"""Incremental ENV remapping: patch the existing view instead of re-mapping.

A full :func:`~repro.env.mapper.map_platform` run re-does the lookup phase,
one traceroute per host, and the complete §4.2.2 experiment battery on every
cluster — O(hosts²) probe measurements.  After a *drift* event only the
flagged clusters actually changed, so :func:`incremental_remap` warm-starts
from the previous :class:`~repro.env.envtree.ENVView`: it deep-copies the
tree and re-runs the bandwidth experiments **only** on the suspect leaf
networks, splicing the refreshed clusters back into place.  Everything else
(structure, unaffected clusters, machine inventory) is reused as-is.

When the monitor reports a *structure* change (membership, reachability or
routing), or when drift touches most of the platform anyway, patching is
unsound and the remapper falls back to a full mapping run — the mode is
recorded on the :class:`RemapResult` so callers can account for both paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..env.bandwidth_tests import ClusterRefiner
from ..env.envtree import ENVNetwork, ENVView, KIND_STRUCTURAL
from ..env.mapper import make_driver, map_platform
from ..env.probes import ProbeMemo, ProbeStats
from ..env.thresholds import DEFAULT_THRESHOLDS, ENVThresholds
from ..netsim.topology import Platform
from .monitor import DriftReport

__all__ = ["RemapResult", "full_remap", "incremental_remap"]


@dataclass
class RemapResult:
    """Outcome and cost of one remapping decision."""

    view: ENVView
    #: ``"none"`` (nothing to do), ``"incremental"`` or ``"full"``.
    mode: str
    #: Probing cost of this remap alone (not cumulative).
    stats: ProbeStats = field(default_factory=ProbeStats)
    seconds: float = 0.0
    #: Classified networks that were re-probed (incremental mode).
    refreshed_labels: List[str] = field(default_factory=list)
    reason: str = ""


def full_remap(platform: Platform, master: str,
               thresholds: ENVThresholds = DEFAULT_THRESHOLDS,
               reason: str = "",
               memo: Optional[ProbeMemo] = None) -> RemapResult:
    """Re-map the platform from scratch (the oracle / fallback path).

    ``memo`` is passed for the *bootstrap* mapping and the incremental
    track's full-remap fallbacks, so their measurements warm the shared
    memo.  Without a memo the run is fully memo-less — even within the run —
    modelling the naive tool that re-executes every experiment; that is the
    oracle track's cost baseline.
    """
    start = time.perf_counter()
    driver = make_driver(platform, memo=memo, memoize=memo is not None)
    view = map_platform(platform, master, thresholds=thresholds, driver=driver)
    return RemapResult(view=view, mode="full", stats=view.stats,
                       seconds=time.perf_counter() - start, reason=reason)


def _copy_network(net: ENVNetwork) -> ENVNetwork:
    """A fresh tree whose nodes can be replaced without touching the original.

    Cheaper than ``copy.deepcopy``: host-name strings and measured values are
    immutable and shared, only the node objects and their lists are new.
    """
    clone = ENVNetwork(label=net.label, kind=net.kind, hosts=list(net.hosts),
                      gateway=net.gateway,
                      base_bandwidth_mbps=net.base_bandwidth_mbps,
                      local_bandwidth_mbps=net.local_bandwidth_mbps,
                      jam_ratio=net.jam_ratio)
    clone.children = [_copy_network(child) for child in net.children]
    return clone


def _copy_view(view: ENVView) -> ENVView:
    """A patchable copy of ``view`` (tree copied, machine records shared)."""
    return ENVView(master=view.master, root=_copy_network(view.root),
                   machines=dict(view.machines),
                   site_domain=view.site_domain, stats=view.stats)


def _find_with_parent(root: ENVNetwork, label: str
                      ) -> Optional[Tuple[Optional[ENVNetwork], ENVNetwork]]:
    """The classified network called ``label`` and its parent (None = root)."""
    if root.kind != KIND_STRUCTURAL and root.label == label:
        return None, root
    stack: List[ENVNetwork] = [root]
    while stack:
        parent = stack.pop()
        for child in parent.children:
            if child.kind != KIND_STRUCTURAL and child.label == label:
                return parent, child
            stack.append(child)
    return None


def _refresh_leaf(view: ENVView, parent: Optional[ENVNetwork],
                  leaf: ENVNetwork, refiner: ClusterRefiner) -> List[str]:
    """Re-run the experiment battery on one leaf and splice the result in."""
    master = view.master
    members = [h for h in sorted(set(leaf.hosts)) if h != master]
    clusters = refiner.refine(members, gateway=leaf.gateway)
    if not clusters:
        return []
    replacements: List[ENVNetwork] = []
    for index, cluster in enumerate(clusters):
        label = leaf.label if index == 0 else f"{leaf.label}~{index + 1}"
        replacements.append(cluster.to_network(label))
    # The master stays attached to its home cluster, as the mapper does.
    if master in leaf.hosts:
        home = max(replacements,
                   key=lambda net: net.base_bandwidth_mbps or 0.0)
        if master not in home.hosts:
            home.hosts = sorted(home.hosts + [master])
    # Grafted subtrees hanging below the old leaf stay below the refreshed one.
    replacements[0].children = leaf.children
    if replacements[0].gateway is None:
        replacements[0].gateway = leaf.gateway
    if parent is None:
        if len(replacements) == 1:
            view.root = replacements[0]
        else:
            wrapper = ENVNetwork(label=leaf.label, kind=KIND_STRUCTURAL,
                                 gateway=leaf.gateway)
            wrapper.children = replacements
            view.root = wrapper
    else:
        index = parent.children.index(leaf)
        parent.children[index:index + 1] = replacements
    return [net.label for net in replacements]


def incremental_remap(platform: Platform, view: ENVView, report: DriftReport,
                      thresholds: ENVThresholds = DEFAULT_THRESHOLDS,
                      full_fraction: float = 0.5,
                      memo: Optional[ProbeMemo] = None) -> RemapResult:
    """Update ``view`` in response to a drift report (warm start).

    Parameters
    ----------
    full_fraction:
        When the suspect networks cover more than this fraction of the mapped
        hosts, patching would re-probe almost everything anyway — fall back
        to one clean full remap instead.
    memo:
        A :class:`~repro.env.probes.ProbeMemo` persisted by the caller across
        remap epochs.  Suspect pairs whose links did not actually change are
        then answered from the memo instead of being re-measured (the churn
        events themselves invalidate exactly the affected entries), which is
        what makes a false-positive drift flag nearly free.
    """
    if report.structure_changed:
        return full_remap(platform, view.master, thresholds=thresholds,
                          reason="; ".join(report.reasons)
                          or "structure changed", memo=memo)
    if not report.suspect_labels:
        return RemapResult(view=view, mode="none", reason="no drift detected")

    leaves = {net.label: net for net in view.classified_networks()}
    suspect_hosts = set()
    for label in report.suspect_labels:
        if label in leaves:
            suspect_hosts.update(leaves[label].hosts)
    total = max(len(view.machines), 1)
    if len(suspect_hosts) / total > full_fraction:
        return full_remap(platform, view.master, thresholds=thresholds,
                          reason=f"drift touches {len(suspect_hosts)}/{total} "
                                 "hosts", memo=memo)

    start = time.perf_counter()
    patched = _copy_view(view)
    driver = make_driver(platform, memo=memo)
    refiner = ClusterRefiner(driver, patched.master, thresholds)
    refreshed: List[str] = []
    for label in report.suspect_labels:
        found = _find_with_parent(patched.root, label)
        if found is None:
            continue
        parent, leaf = found
        refreshed.extend(_refresh_leaf(patched, parent, leaf, refiner))
    patched.stats = patched.stats.merge(driver.stats)
    return RemapResult(view=patched, mode="incremental", stats=driver.stats,
                       seconds=time.perf_counter() - start,
                       refreshed_labels=refreshed,
                       reason=f"re-probed {len(refreshed)} network(s)")
