"""GridML XML serialisation.

Produces documents shaped like the listings of paper §4.2.1 / §4.2.2, e.g.::

    <?xml version="1.0"?>
    <GRID>
      <SITE domain="ens-lyon.fr">
        <LABEL name="ENS-LYON-FR" />
        <MACHINE>
          <LABEL ip="140.77.13.229" name="canaria.ens-lyon.fr">
            <ALIAS name="canaria" />
          </LABEL>
          <PROPERTY name="CPU_model" value="Pentium Pro" />
        </MACHINE>
      </SITE>
      <NETWORK type="ENV_Switched"> ... </NETWORK>
    </GRID>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from ..ioutils import write_atomic
from .model import GridDocument, GridProperty, MachineEntry, NetworkEntry, SiteEntry

__all__ = ["to_element", "to_xml", "write_gridml"]


def _property_element(parent: ET.Element, prop: GridProperty) -> ET.Element:
    attrs = {"name": prop.name, "value": prop.value}
    if prop.units is not None:
        attrs["units"] = prop.units
    return ET.SubElement(parent, "PROPERTY", attrs)


def _machine_element(parent: ET.Element, machine: MachineEntry) -> ET.Element:
    elem = ET.SubElement(parent, "MACHINE")
    label_attrs = {"name": machine.name}
    if machine.ip is not None:
        label_attrs["ip"] = machine.ip
    label = ET.SubElement(elem, "LABEL", label_attrs)
    for alias in machine.aliases:
        ET.SubElement(label, "ALIAS", {"name": alias})
    for prop in machine.properties:
        _property_element(elem, prop)
    return elem


def _network_element(parent: ET.Element, network: NetworkEntry) -> ET.Element:
    elem = ET.SubElement(parent, "NETWORK", {"type": network.network_type})
    label_attrs = {"name": network.label}
    if network.label_ip is not None:
        label_attrs["ip"] = network.label_ip
    ET.SubElement(elem, "LABEL", label_attrs)
    for prop in network.properties:
        _property_element(elem, prop)
    for machine_name in network.machines:
        ET.SubElement(elem, "MACHINE", {"name": machine_name})
    for sub in network.subnetworks:
        _network_element(elem, sub)
    return elem


def to_element(doc: GridDocument) -> ET.Element:
    """Convert a :class:`GridDocument` to an ``xml.etree`` element tree."""
    root = ET.Element("GRID")
    if doc.label:
        ET.SubElement(root, "LABEL", {"name": doc.label})
    for site in doc.sites:
        site_elem = ET.SubElement(root, "SITE", {"domain": site.domain})
        if site.label:
            ET.SubElement(site_elem, "LABEL", {"name": site.label})
        for machine in site.machines:
            _machine_element(site_elem, machine)
    for network in doc.networks:
        _network_element(root, network)
    return root


def to_xml(doc: GridDocument, pretty: bool = True) -> str:
    """Serialise a :class:`GridDocument` to an XML string."""
    root = to_element(doc)
    raw = ET.tostring(root, encoding="unicode")
    if not pretty:
        return '<?xml version="1.0"?>\n' + raw
    parsed = minidom.parseString(raw)
    pretty_text = parsed.toprettyxml(indent="  ")
    # minidom puts its own declaration; normalise it.
    lines = [line for line in pretty_text.splitlines() if line.strip()]
    if lines and lines[0].startswith("<?xml"):
        lines[0] = '<?xml version="1.0"?>'
    return "\n".join(lines) + "\n"


def write_gridml(doc: GridDocument, path: str, pretty: bool = True) -> None:
    """Write a :class:`GridDocument` to ``path`` (atomically: an exported
    topology must never be half a file, and the fault-injection hook in
    :func:`~repro.ioutils.write_atomic` sees the site)."""
    write_atomic(path, to_xml(doc, pretty=pretty), suffix=".xml")
