"""Per-scenario circuit breakers for the serving layer.

A scenario that keeps crashing its worker (poisoned input, pathological
topology, injected chaos) must not be allowed to grind the whole job queue:
every doomed dispatch burns a pool slot for a full timeout, starving
healthy traffic.  :class:`BreakerBoard` keeps one classic three-state
breaker per scenario:

* **closed** — requests flow; ``threshold`` *consecutive* failures open it;
* **open** — submissions are rejected immediately with
  :class:`CircuitOpen` (the API maps it to 503) until ``cooldown_s`` has
  passed;
* **half-open** — after the cooldown exactly one probe job is admitted;
  its success closes the breaker, its failure re-opens (and re-arms the
  cooldown), its cancellation releases the probe slot without a verdict.

State transitions tick ``repro_breaker_transitions_total{to=...}`` and log
structured events; ``/healthz`` reports any non-closed breakers so a probe
sees degradation without the server ever going unhealthy over one bad
scenario.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..obs.flightrec import FLIGHT
from ..obs.logs import get_logger, kv
from ..obs.metrics import REGISTRY

__all__ = ["CircuitOpen", "BreakerBoard", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_LOG = get_logger("serve.breaker")

_TRANSITIONS = REGISTRY.counter(
    "repro_breaker_transitions_total",
    "circuit breaker state transitions, by target state",
    labels=("to",))


class CircuitOpen(RuntimeError):
    """Submission refused: the scenario's circuit breaker is open."""


class _Breaker:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0            # consecutive, while closed
        self.opened_at = 0.0
        self.probing = False         # a half-open probe is in flight


class BreakerBoard:
    """All per-scenario breakers of one serve process."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 30.0) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("breaker cooldown must be >= 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._breakers: Dict[str, _Breaker] = {}

    def _transition(self, scenario: str, breaker: _Breaker, to: str) -> None:
        _TRANSITIONS.labels(to=to).inc()
        _LOG.warning("event=breaker_transition %s",
                     kv(scenario=scenario, from_=breaker.state, to=to,
                        failures=breaker.failures))
        breaker.state = to
        if to == OPEN:
            # A breaker opening is exactly the moment forensics matter:
            # snapshot spans/metrics/health while the failure is fresh.
            # Non-blocking (daemon-thread dump) and a no-op when the
            # flight recorder is disabled.
            FLIGHT.maybe_dump("breaker-open")

    def allow(self, scenario: str) -> None:
        """Admit a submission for ``scenario`` or raise :class:`CircuitOpen`.

        An open breaker past its cooldown moves to half-open and admits the
        caller as the single probe; further submissions are rejected until
        the probe reports back through :meth:`record` / :meth:`abandon`.
        """
        with self._lock:
            breaker = self._breakers.get(scenario)
            if breaker is None or breaker.state == CLOSED:
                return
            if breaker.state == OPEN:
                remaining = breaker.opened_at + self.cooldown_s - \
                    time.monotonic()
                if remaining > 0:
                    raise CircuitOpen(
                        f"scenario {scenario!r} circuit is open "
                        f"({breaker.failures} consecutive failures; "
                        f"retry in {max(0.0, remaining):.1f}s)")
                self._transition(scenario, breaker, HALF_OPEN)
                breaker.probing = False
            # half-open: one probe at a time.
            if breaker.probing:
                raise CircuitOpen(
                    f"scenario {scenario!r} circuit is half-open and its "
                    f"probe is still in flight")
            breaker.probing = True

    def record(self, scenario: str, ok: bool) -> None:
        """Feed a finished job's outcome back into its breaker."""
        with self._lock:
            breaker = self._breakers.get(scenario)
            if ok:
                if breaker is None:
                    return
                if breaker.state != CLOSED:
                    self._transition(scenario, breaker, CLOSED)
                breaker.failures = 0
                breaker.probing = False
                return
            if breaker is None:
                breaker = self._breakers.setdefault(scenario, _Breaker())
            if breaker.state == HALF_OPEN:
                # The probe failed: back to fully open, cooldown re-armed.
                breaker.failures += 1
                breaker.probing = False
                breaker.opened_at = time.monotonic()
                self._transition(scenario, breaker, OPEN)
                return
            breaker.failures += 1
            if breaker.state == CLOSED and \
                    breaker.failures >= self.threshold:
                breaker.opened_at = time.monotonic()
                self._transition(scenario, breaker, OPEN)

    def abandon(self, scenario: str) -> None:
        """A job ended without a verdict (cancelled): release any probe."""
        with self._lock:
            breaker = self._breakers.get(scenario)
            if breaker is not None:
                breaker.probing = False

    def state(self, scenario: str) -> str:
        with self._lock:
            breaker = self._breakers.get(scenario)
            return CLOSED if breaker is None else breaker.state

    def states(self) -> Dict[str, Dict[str, object]]:
        """Every non-closed breaker, for ``/healthz``."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for scenario, breaker in sorted(self._breakers.items()):
                if breaker.state == CLOSED:
                    continue
                out[scenario] = {"state": breaker.state,
                                 "failures": breaker.failures}
            return out

    def open_count(self) -> int:
        """Breakers currently not closed (gauge callback)."""
        with self._lock:
            return sum(1 for b in self._breakers.values()
                       if b.state != CLOSED)
