"""End-to-end integration tests: map → plan → deploy → monitor → query."""

import pytest

from repro.analysis import score_view
from repro.core import (
    check_constraints,
    evaluate_plan,
    plan_from_view,
    render_config,
    parse_config,
)
from repro.env import map_and_merge, map_platform
from repro.netsim import (
    SyntheticSpec,
    generate_constellation,
    generate_single_site,
    ground_truth_groups,
)
from repro.nws import NWSClient, NWSConfig, NWSSystem


class TestSyntheticEndToEnd:
    @pytest.fixture(scope="class")
    def platform(self):
        return generate_constellation(SyntheticSpec(sites=2, seed=3,
                                                    hosts_per_cluster=(3, 4)))

    @pytest.fixture(scope="class")
    def view(self, platform):
        master = platform.host_names()[0]
        return map_platform(platform, master)

    @pytest.fixture(scope="class")
    def plan(self, view):
        return plan_from_view(view, period_s=15.0)

    def test_mapping_recovers_segment_kinds(self, platform, view):
        # From a single master, clusters reached across the WAN bottleneck can
        # be grouped correctly but not always told shared-vs-switched (the
        # paper's own ENS-Lyon public view has the same limitation, resolved
        # there by mapping the far side from a local master and merging).
        score = score_view(view, ground_truth_groups(platform),
                           ignore_hosts={view.master})
        assert score.mean_jaccard >= 0.8
        assert score.kind_accuracy >= 0.8

    def test_per_cluster_local_mapping_is_exact(self, platform):
        """Mapped from a master inside each cluster, classification is exact.

        This is the paper's own recipe for large platforms (§4.3): map each
        part separately from a local master, then merge.
        """
        truth = ground_truth_groups(platform)
        for name, spec in truth.items():
            cluster_hosts = sorted(spec["hosts"])
            if len(cluster_hosts) < 3:
                continue
            master = cluster_hosts[0]
            local_view = map_platform(platform, master, hosts=cluster_hosts)
            score = score_view(local_view, {name: spec}, ignore_hosts={master})
            assert score.kind_accuracy == 1.0, (name, spec["kind"])

    def test_plan_is_complete_and_consistent(self, platform, plan):
        report = check_constraints(plan, platform)
        assert report.complete or set(report.uncovered_hosts) <= {plan.nameserver_host}
        assert plan.validate_structure() == []

    def test_plan_quality_reasonable(self, platform, plan):
        quality = evaluate_plan(plan, platform)
        assert quality.completeness == pytest.approx(1.0)
        assert quality.intrusiveness < 1.0

    def test_config_roundtrip_preserves_plan(self, plan):
        parsed = parse_config(render_config(plan))
        assert {frozenset(c.hosts) for c in parsed.cliques} == \
            {frozenset(c.hosts) for c in plan.cliques}

    def test_nws_run_answers_queries(self, platform, plan):
        system = NWSSystem(platform, plan, config=NWSConfig(token_hold_gap_s=1.0))
        system.run(120.0)
        client = NWSClient(system)
        hosts = sorted(plan.hosts)[:6]
        availability = client.availability(hosts)
        assert availability == pytest.approx(1.0)


class TestFirewalledSyntheticPlatform:
    def test_two_side_mapping_covers_all_hosts(self):
        platform = generate_constellation(SyntheticSpec(
            sites=2, seed=9, firewall_probability=1.0, hosts_per_cluster=(3, 3)))
        truth = ground_truth_groups(platform)
        hosts = platform.host_names()
        # public side: one gateway per cluster (recorded in the ground truth),
        # private sides: each isolated cluster mapped from inside.
        gateways = [spec["gateway"] or sorted(spec["hosts"])[0]
                    for spec in truth.values()]
        sides = [(gateways[0], gateways)]
        for spec in truth.values():
            cluster_hosts = sorted(spec["hosts"])
            master = spec["gateway"] or cluster_hosts[0]
            sides.append((master, cluster_hosts))
        merged = map_and_merge(platform, sides)
        assert set(merged.machines) == set(hosts)

    def test_growth_of_probe_cost_with_platform_size(self):
        costs = []
        for sites in (1, 2, 3):
            platform = generate_constellation(SyntheticSpec(
                sites=sites, seed=5, hosts_per_cluster=(3, 3),
                clusters_per_site=(2, 2)))
            master = platform.host_names()[0]
            view = map_platform(platform, master)
            costs.append(view.stats.measurements)
        assert costs[0] < costs[1] < costs[2]


class TestSingleClusterDegenerateCases:
    def test_single_switch_cluster(self):
        platform = generate_single_site(n_hub_clusters=0, n_switch_clusters=1,
                                        hosts_per_cluster=3)
        master = platform.host_names()[0]
        plan = plan_from_view(map_platform(platform, master))
        assert len(plan.cliques) >= 1
        report = check_constraints(plan, platform)
        assert report.collision_free

    def test_two_host_platform(self):
        platform = generate_single_site(n_hub_clusters=1, n_switch_clusters=0,
                                        hosts_per_cluster=2)
        master = platform.host_names()[0]
        view = map_platform(platform, master)
        plan = plan_from_view(view)
        # with only two hosts (one being the master) the planner may produce a
        # single pair clique or only representative coverage; either way the
        # plan must be structurally valid.
        assert plan.validate_structure() == []
