"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (background load, measurement
noise, clique jitter, synthetic topology generation) draws from its own named
stream derived from a single experiment seed.  Re-running an experiment with
the same seed therefore reproduces the exact same event sequence regardless
of how many streams are created or in which order they are first used.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream ``name``.

    The derivation is a SHA-256 hash of the pair, so streams are statistically
    independent and stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of the parent's."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def reset(self) -> None:
        """Drop all created streams so they restart from their derived seeds."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RandomStreams seed={self.master_seed} streams={len(self._streams)}>"
