"""Merging GridML documents produced on each side of a firewall.

Paper §4.3 ("Firewalls"): when part of the platform is firewalled, ENV is run
once on each side and the results are merged.  *"The following merge is quite
simple: a new GridML structure containing both sites is created, and the
aliases of hosts belonging to both sites are provided."*  The user supplies
the alias table of the dual-homed gateway machines, e.g.::

    popc.ens-lyon.fr  popc0.popc.private
    myri.ens-lyon.fr  myri0.popc.private
    sci.ens-lyon.fr   sci0.popc.private
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .model import GridDocument, MachineEntry, SiteEntry

__all__ = ["merge_documents", "build_alias_table"]


def build_alias_table(pairs: Iterable[Sequence[str]]) -> Dict[str, str]:
    """Build a symmetric alias lookup from (name-on-side-A, name-on-side-B) pairs."""
    table: Dict[str, str] = {}
    for pair in pairs:
        names = list(pair)
        if len(names) < 2:
            raise ValueError("alias entries need at least two names")
        for name in names:
            for other in names:
                if other != name:
                    table[name] = other
    return table


def _merge_machines(target: MachineEntry, source: MachineEntry) -> None:
    """Fold aliases and properties of ``source`` into ``target``."""
    for alias in [source.name] + source.aliases:
        if alias != target.name and alias not in target.aliases:
            target.aliases.append(alias)
    known = {(p.name, p.value) for p in target.properties}
    for prop in source.properties:
        if (prop.name, prop.value) not in known:
            target.properties.append(prop)


def merge_documents(doc_a: GridDocument, doc_b: GridDocument,
                    gateway_aliases: Mapping[str, str],
                    label: str = "Grid1") -> GridDocument:
    """Merge two per-side GridML documents into one.

    ``gateway_aliases`` maps a machine name in either document to its name in
    the other one; machines related by an alias are kept once, carrying both
    names (as in the paper's example where ``myri.ens-lyon.fr`` and
    ``myri0.popc.private`` are the same physical machine).
    Sites of both documents are preserved; the networks of both documents are
    concatenated (the topological reconciliation is done at the ENV-view
    level, not in GridML).
    """
    merged = GridDocument(label=label)

    def canonical(name: str) -> str:
        return gateway_aliases.get(name, name)

    seen: Dict[str, MachineEntry] = {}
    for doc in (doc_a, doc_b):
        for site in doc.sites:
            merged_site = merged.site(site.domain)
            if merged_site is None:
                merged_site = SiteEntry(domain=site.domain, label=site.label)
                merged.sites.append(merged_site)
            for machine in site.machines:
                key = canonical(machine.name)
                existing = seen.get(key) or seen.get(machine.name)
                if existing is None:
                    clone = MachineEntry(name=machine.name, ip=machine.ip,
                                         aliases=list(machine.aliases),
                                         properties=list(machine.properties))
                    alias = gateway_aliases.get(machine.name)
                    if alias and alias not in clone.aliases:
                        clone.aliases.append(alias)
                    merged_site.machines.append(clone)
                    seen[machine.name] = clone
                    seen[key] = clone
                else:
                    _merge_machines(existing, machine)
                    # Make sure the machine also appears in this site's listing
                    # (a dual-homed gateway belongs to both sites).
                    if merged_site.machine(existing.name) is None:
                        merged_site.machines.append(existing)
    for doc in (doc_a, doc_b):
        merged.networks.extend(doc.networks)
    return merged
