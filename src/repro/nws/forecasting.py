"""NWS statistical forecasters (paper §2.1, step 4).

The real NWS maintains a battery of simple predictors (last value, running
mean, sliding-window means and medians, exponential smoothing, ...) and, for
every query, answers with the predictor that has accumulated the lowest
error on the series so far ("mixture-of-experts" selection).  This module
reproduces that design: each :class:`Forecaster` is a small online predictor,
and :class:`ForecasterBank` tracks the mean absolute error (MAE) of every
predictor on each series and answers with the current best.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Forecaster",
    "LastValueForecaster",
    "RunningMeanForecaster",
    "SlidingWindowMeanForecaster",
    "SlidingWindowMedianForecaster",
    "ExponentialSmoothingForecaster",
    "Forecast",
    "ForecasterBank",
    "default_forecasters",
]


class Forecaster(ABC):
    """An online one-step-ahead predictor."""

    name: str = "forecaster"

    @abstractmethod
    def update(self, value: float) -> None:
        """Feed one observed value."""

    @abstractmethod
    def predict(self) -> Optional[float]:
        """Predict the next value (``None`` until enough data is available)."""

    def reset(self) -> None:
        """Forget all state (default: rebuild via __init__ arguments)."""
        raise NotImplementedError


class LastValueForecaster(Forecaster):
    """Predicts that the next value equals the last observed one."""

    name = "last_value"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last

    def reset(self) -> None:
        self._last = None


class RunningMeanForecaster(Forecaster):
    """Predicts the mean of all observed values."""

    name = "running_mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._count += 1

    def predict(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count

    def reset(self) -> None:
        self._sum = 0.0
        self._count = 0


class SlidingWindowMeanForecaster(Forecaster):
    """Predicts the mean of the last ``window`` values."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"window_mean_{window}"
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(value)

    def predict(self) -> Optional[float]:
        if not self._values:
            return None
        return float(np.mean(self._values))

    def reset(self) -> None:
        self._values.clear()


class SlidingWindowMedianForecaster(Forecaster):
    """Predicts the median of the last ``window`` values (robust to spikes)."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"window_median_{window}"
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(value)

    def predict(self) -> Optional[float]:
        if not self._values:
            return None
        return float(np.median(self._values))

    def reset(self) -> None:
        self._values.clear()


class ExponentialSmoothingForecaster(Forecaster):
    """Exponentially-weighted moving average predictor."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.name = f"exp_smooth_{alpha:g}"
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self) -> Optional[float]:
        return self._state

    def reset(self) -> None:
        self._state = None


def default_forecasters(window: int = 10, alpha: float = 0.3) -> List[Forecaster]:
    """The standard NWS-like predictor battery."""
    return [
        LastValueForecaster(),
        RunningMeanForecaster(),
        SlidingWindowMeanForecaster(window),
        SlidingWindowMedianForecaster(window),
        ExponentialSmoothingForecaster(alpha),
    ]


@dataclass(frozen=True)
class Forecast:
    """A prediction together with its provenance."""

    value: float
    method: str
    mae: float
    sample_count: int


class ForecasterBank:
    """Mixture-of-experts forecaster for one measurement series."""

    def __init__(self, forecasters: Optional[Sequence[Forecaster]] = None,
                 window: int = 10, alpha: float = 0.3):
        self.forecasters = list(forecasters) if forecasters is not None else (
            default_forecasters(window=window, alpha=alpha))
        self._abs_error: Dict[str, float] = {f.name: 0.0 for f in self.forecasters}
        self._error_count: Dict[str, int] = {f.name: 0 for f in self.forecasters}
        self.sample_count = 0

    def update(self, value: float) -> None:
        """Feed one observation: score each predictor, then let it learn."""
        for forecaster in self.forecasters:
            prediction = forecaster.predict()
            if prediction is not None:
                self._abs_error[forecaster.name] += abs(prediction - value)
                self._error_count[forecaster.name] += 1
            forecaster.update(value)
        self.sample_count += 1

    def update_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.update(value)

    def mae(self, name: str) -> float:
        count = self._error_count.get(name, 0)
        if count == 0:
            return float("inf")
        return self._abs_error[name] / count

    def best_method(self) -> Optional[str]:
        """The predictor with the lowest MAE so far (ties: first declared)."""
        best_name: Optional[str] = None
        best_mae = float("inf")
        for forecaster in self.forecasters:
            mae = self.mae(forecaster.name)
            if mae < best_mae:
                best_mae = mae
                best_name = forecaster.name
        if best_name is None and self.sample_count > 0:
            best_name = self.forecasters[0].name
        return best_name

    def forecast(self) -> Optional[Forecast]:
        """Predict the next value using the best predictor so far."""
        if self.sample_count == 0:
            return None
        name = self.best_method()
        if name is None:
            return None
        forecaster = next(f for f in self.forecasters if f.name == name)
        prediction = forecaster.predict()
        if prediction is None:
            return None
        mae = self.mae(name)
        return Forecast(value=prediction, method=name,
                        mae=0.0 if mae == float("inf") else mae,
                        sample_count=self.sample_count)
