"""Span tracing: context propagation, sampling, ring buffer, span log.

One process-wide :data:`TRACER` records *spans* — named, timed segments of
work with a trace id shared along a causal chain.  The design goals, in
order:

1. **Near-free when disabled.**  With a zero sample rate (the default)
   :meth:`Tracer.start_trace` returns the no-op :data:`NULL_SPAN` and every
   nested :meth:`Tracer.span` call reduces to one ``ContextVar`` read — no
   allocation, no locking, no clock reads.  The fast-path overhead
   benchmark gates this.
2. **Context propagation without plumbing.**  The active span lives in a
   :mod:`contextvars` variable, so nested layers (pipeline stages, mapper
   phases, replay epochs) pick their parent up ambiently — including
   across ``await`` boundaries, where each asyncio task carries its own
   context.  Crossing a *process* boundary is explicit: the caller ships
   :meth:`Tracer.current_context` with the task, the worker wraps its work
   in :meth:`Tracer.adopt`, and the finished spans ride the existing
   result channel home to be :meth:`Tracer.ingest`-ed.
3. **Queryable afterwards.**  Finished spans land in a bounded in-process
   ring buffer (served by ``GET /trace/{trace_id}``) and, when configured,
   are appended to a JSONL span log — one unbuffered ``O_APPEND`` write
   per span, so concurrent writers interleave only at line boundaries
   (the same discipline as the sweep result store).

Spans carry the :mod:`repro.perf` counter deltas of the work they cover
(only the non-zero ones, under an ``attrs["perf"]`` dict), and the tracer
warns through the structured logger about spans slower than a configurable
threshold.
"""

from __future__ import annotations

import random
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from .. import perf
from ..ioutils import append_line
from .logs import get_logger, kv, to_json_line

__all__ = ["Span", "Tracer", "TRACER", "NULL_SPAN"]

#: Trace/span ids minted here are 16 hex chars; accepted client-supplied
#: trace ids are a superset (UUIDs, W3C-style ids) but stay shell- and
#: log-safe.
_ID_PATTERN = re.compile(r"[A-Za-z0-9_-]{1,64}")

_CURRENT_SPAN: "ContextVar[Optional[Span]]" = ContextVar(
    "repro_obs_current_span", default=None)

_LOG = get_logger("obs.trace")


def _new_id() -> str:
    return f"{random.getrandbits(64):016x}"


class _NullSpan:
    """The shared do-nothing span unsampled code paths run under."""

    __slots__ = ()
    sampled = False
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attrs(self, **attrs) -> None:
        return None

    def context(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One sampled, timed segment of work (a context manager).

    Entering sets the span as the ambient parent for nested spans and
    snapshots the perf counters; exiting computes the duration, attaches
    the non-zero counter deltas under ``attrs["perf"]`` and hands the
    finished span to the tracer.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "start_ts", "duration_s", "_t0", "_token",
                 "_perf_before")
    sampled = True

    def __init__(self, tracer: "Tracer", trace_id: str,
                 parent_id: Optional[str], name: str,
                 attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ts = 0.0
        self.duration_s = 0.0
        self._t0 = 0.0
        self._token = None
        self._perf_before: Dict[str, int] = {}

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def context(self) -> Dict[str, str]:
        """The wire-format trace context nested/remote work parents under."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        self.start_ts = time.time()
        self._perf_before = perf.counters_snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._t0
        after = perf.counters_snapshot()
        deltas = {key: after[key] - self._perf_before[key]
                  for key in after if after[key] != self._perf_before[key]}
        if deltas:
            self.attrs["perf"] = deltas
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _CURRENT_SPAN.reset(self._token)
        self.tracer._record(self.to_dict())

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": self.start_ts,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class _Capture:
    """Collects the finished spans of one in-thread work unit."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[Dict[str, object]] = []


class Tracer:
    """The process-wide span recorder (see the module docstring)."""

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._local = threading.local()
        self._random = random.Random()
        self.sample_rate = 0.0
        self.log_path: Optional[str] = None
        #: Size cap for the span log; once reached the log rotates to a
        #: ``.1`` sibling (see :func:`repro.ioutils.rotate_if_needed`).
        #: ``0`` = unbounded.
        self.log_max_bytes = 0
        self.slow_span_s: Optional[float] = None
        self.log_errors = 0
        self._recorded = 0

    # -- configuration -------------------------------------------------------

    def configure(self, sample_rate: Optional[float] = None,
                  log_path: Optional[str] = None,
                  slow_span_s: Optional[float] = None,
                  capacity: Optional[int] = None,
                  log_max_bytes: Optional[int] = None) -> None:
        """Set any subset of the tracer's knobs (``None`` = leave as is)."""
        with self._lock:
            if sample_rate is not None:
                if not 0.0 <= sample_rate <= 1.0:
                    raise ValueError("sample_rate must be within [0, 1]")
                self.sample_rate = sample_rate
            if log_path is not None:
                self.log_path = log_path or None
            if slow_span_s is not None:
                self.slow_span_s = slow_span_s if slow_span_s > 0 else None
            if capacity is not None:
                self._ring = deque(self._ring, maxlen=max(1, capacity))
            if log_max_bytes is not None:
                self.log_max_bytes = max(0, log_max_bytes)

    def reset(self) -> None:
        """Back to defaults (disabled, empty ring) — test isolation hook."""
        with self._lock:
            self._ring = deque(maxlen=self.DEFAULT_CAPACITY)
            self.sample_rate = 0.0
            self.log_path = None
            self.log_max_bytes = 0
            self.slow_span_s = None
            self.log_errors = 0

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    # -- span creation -------------------------------------------------------

    def start_trace(self, name: str, trace_id: Optional[str] = None,
                    **attrs) -> "Span | _NullSpan":
        """Open a root span, minting (or accepting) the trace id.

        A caller-supplied ``trace_id`` (e.g. an ``X-Repro-Trace-Id``
        request header) forces sampling — the client asked for this trace;
        malformed ids fall back to the sampling decision with a minted id.
        """
        if trace_id is not None and _ID_PATTERN.fullmatch(trace_id):
            return Span(self, trace_id, None, name, attrs)
        if self.sample_rate <= 0.0 or (self.sample_rate < 1.0 and
                                       self._random.random()
                                       >= self.sample_rate):
            return NULL_SPAN
        return Span(self, _new_id(), None, name, attrs)

    def span(self, name: str, **attrs) -> "Span | _NullSpan":
        """A child of the ambient span — a no-op outside any sampled trace."""
        parent = _CURRENT_SPAN.get()
        if parent is None:
            return NULL_SPAN
        return Span(self, parent.trace_id, parent.span_id, name, attrs)

    def adopt(self, context: Optional[Dict[str, str]], name: str,
              **attrs) -> "Span | _NullSpan":
        """A span parented under a *shipped* context (cross-process/task)."""
        if not context or "trace_id" not in context:
            return NULL_SPAN
        return Span(self, str(context["trace_id"]),
                    context.get("span_id"), name, attrs)

    def current_context(self) -> Optional[Dict[str, str]]:
        """The ambient span's wire context, or ``None`` outside a trace."""
        span = _CURRENT_SPAN.get()
        return span.context() if span is not None else None

    def record_external(self, name: str, context: Optional[Dict[str, str]],
                        start_ts: float, duration_s: float, **attrs) -> None:
        """Record a span whose interval was measured out of band.

        Used for intervals no single frame encloses — e.g. a job's
        queue-wait, measured from its submission timestamp when a
        dispatcher finally picks it up.
        """
        if not context or "trace_id" not in context:
            return
        self._record({
            "trace_id": str(context["trace_id"]),
            "span_id": _new_id(),
            "parent_id": context.get("span_id"),
            "name": name,
            "start_ts": start_ts,
            "duration_s": duration_s,
            "attrs": attrs,
        })

    # -- recording / querying ------------------------------------------------

    def _record(self, span: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(span)
            self._recorded += 1
            captures = getattr(self._local, "captures", None)
            if captures:
                for capture in captures:
                    capture.spans.append(span)
            log_path = self.log_path
            log_max = self.log_max_bytes
            slow_s = self.slow_span_s
        if log_path is not None:
            try:
                append_line(log_path, to_json_line(span),
                            rotate_at=log_max)
            except OSError:
                self.log_errors += 1
        if slow_s is not None and span["duration_s"] >= slow_s:
            _LOG.warning("event=slow_span %s", kv(
                name=span["name"], trace=span["trace_id"],
                ms=round(span["duration_s"] * 1e3, 1)))

    def ingest(self, spans: List[Dict[str, object]]) -> None:
        """Fold spans recorded elsewhere (a pool worker) into this process."""
        for span in spans or []:
            if isinstance(span, dict) and "trace_id" in span:
                self._record(span)

    @contextmanager
    def capture(self) -> Iterator[_Capture]:
        """Additionally collect spans finished in this thread while active.

        How a pool worker gathers the spans of one task to ship back over
        its result channel; nesting is supported (each capture sees the
        spans finished inside it).
        """
        capture = _Capture()
        if not hasattr(self._local, "captures"):
            self._local.captures = []
        with self._lock:
            self._local.captures.append(capture)
        try:
            yield capture
        finally:
            with self._lock:
                self._local.captures.remove(capture)

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every buffered span of one trace, ordered by start time."""
        with self._lock:
            spans = [span for span in self._ring
                     if span.get("trace_id") == trace_id]
        return sorted(spans, key=lambda s: (s.get("start_ts", 0.0),
                                            s.get("duration_s", 0.0)))

    def spans(self) -> List[Dict[str, object]]:
        """A snapshot of the whole ring buffer (oldest first)."""
        with self._lock:
            return list(self._ring)

    def state_token(self) -> str:
        """Changes whenever a span lands — the ``/analyze`` ETag seed.

        Monotonic (unlike ``len()``, which plateaus once the ring wraps).
        """
        with self._lock:
            return str(self._recorded)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: The process-wide tracer every layer records into.  Disabled (sample
#: rate 0) until the CLI / serving layer configures it.
TRACER = Tracer()
