"""GridML XML parsing (inverse of :mod:`repro.gridml.writer`)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from .model import GridDocument, GridProperty, MachineEntry, NetworkEntry, SiteEntry

__all__ = ["from_element", "from_xml", "read_gridml", "GridMLParseError"]


class GridMLParseError(ValueError):
    """Raised when a document does not look like GridML."""


def _parse_property(elem: ET.Element) -> GridProperty:
    name = elem.get("name")
    value = elem.get("value")
    if name is None or value is None:
        raise GridMLParseError("PROPERTY element requires name and value attributes")
    return GridProperty(name=name, value=value, units=elem.get("units"))


def _machine_name(elem: ET.Element) -> str:
    """Canonical name of a ``MACHINE`` element (LABEL name, else attribute).

    The LABEL is authoritative when present (full machine declarations);
    bare references carry only a name attribute.  Raises
    :class:`GridMLParseError` when neither yields a non-empty name, so
    unnamed machine references fail loudly instead of being dropped.
    """
    label = elem.find("LABEL")
    name = label.get("name") if label is not None else None
    if name is None:
        name = elem.get("name")
    if not name:
        raise GridMLParseError("MACHINE element without a usable name "
                               "(no LABEL name and no name attribute)")
    return name


def _parse_machine(elem: ET.Element) -> MachineEntry:
    label = elem.find("LABEL")
    if label is None:
        # Machine reference inside a NETWORK: only a name attribute.
        return MachineEntry(name=_machine_name(elem))
    machine = MachineEntry(name=_machine_name(elem), ip=label.get("ip"))
    for alias in label.findall("ALIAS"):
        alias_name = alias.get("name")
        if alias_name:
            machine.aliases.append(alias_name)
    for prop in elem.findall("PROPERTY"):
        machine.properties.append(_parse_property(prop))
    return machine


def _parse_network(elem: ET.Element) -> NetworkEntry:
    label_elem = elem.find("LABEL")
    label = label_elem.get("name") if label_elem is not None else ""
    label_ip = label_elem.get("ip") if label_elem is not None else None
    network = NetworkEntry(label=label or "", label_ip=label_ip,
                           network_type=elem.get("type", "Structural"))
    for child in elem:
        if child.tag == "PROPERTY":
            network.properties.append(_parse_property(child))
        elif child.tag == "MACHINE":
            network.machines.append(_machine_name(child))
        elif child.tag == "NETWORK":
            network.subnetworks.append(_parse_network(child))
    return network


def from_element(root: ET.Element) -> GridDocument:
    """Build a :class:`GridDocument` from an element tree rooted at ``GRID``."""
    if root.tag != "GRID":
        raise GridMLParseError(f"expected GRID root element, found {root.tag!r}")
    doc = GridDocument(label="")
    label_elem = root.find("LABEL")
    if label_elem is not None:
        doc.label = label_elem.get("name", "")
    for site_elem in root.findall("SITE"):
        site = SiteEntry(domain=site_elem.get("domain", ""))
        site_label = site_elem.find("LABEL")
        if site_label is not None:
            site.label = site_label.get("name", "")
        for machine_elem in site_elem.findall("MACHINE"):
            site.machines.append(_parse_machine(machine_elem))
        doc.sites.append(site)
    for network_elem in root.findall("NETWORK"):
        doc.networks.append(_parse_network(network_elem))
    return doc


def from_xml(text: str) -> GridDocument:
    """Parse a GridML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GridMLParseError(f"not well-formed XML: {exc}") from exc
    return from_element(root)


def read_gridml(path: str) -> GridDocument:
    """Read and parse a GridML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_xml(handle.read())
