"""The ``imported`` scenario family: external topologies as first-class
registered scenarios.

:func:`register_imported` turns one source file into a family of registered
scenarios — one per requested host count for graph formats, one for a GridML
file — that list, sweep, cache and replay exactly like the built-in catalog.
The parameters of an imported scenario (and therefore its content hash, and
therefore its sweep-cache key) cover the **source file's SHA-256 digest**
plus every sampling knob, so:

* the same file imported twice (even in different processes) hashes
  identically and is served from the sweep cache;
* editing the source file changes the digest, invalidating exactly the
  scenarios derived from it;
* builders re-verify the digest at build time, so a stale registration never
  silently runs against a changed file.

:func:`register_imported_dynamic` layers the standard churn machinery on top
(:class:`~repro.dynamics.scenarios.DynamicScenario` wrappers with a mild
drift schedule), so imported platforms participate in the maintenance-loop
evaluation too.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..dynamics.scenarios import DynamicScenario, register_dynamic_scenario
from ..gridml import from_xml
from ..netsim.topology import Platform
from ..scenarios.registry import (
    Scenario,
    get_scenario,
    list_scenarios,
    register,
    unregister,
)
from .bridge import platform_from_gridml
from .build import import_platform
from .formats import (
    detect_format,
    file_digest,
    load_topology,
    read_text,
    sanitise_name,
    source_stem,
)
from .sample import SampleSpec

__all__ = ["IMPORTED_FAMILY", "DEFAULT_SIZES", "register_imported",
           "register_imported_dynamic", "imported_name", "same_source"]

IMPORTED_FAMILY = "imported"

#: Host counts registered per graph import unless the caller chooses.
DEFAULT_SIZES: Tuple[int, ...] = (32, 64, 128)


def _check_digest(path: str, digest: str) -> None:
    actual = file_digest(path)
    if actual != digest:
        raise ValueError(
            f"{path}: source file changed since import "
            f"(digest {actual[:12]} != registered {digest[:12]}); re-import "
            "to refresh the scenario family")


# Builders live at module level so imported scenarios stay picklable by
# reference (the sweep pool ships Scenario objects to workers).

#: One-entry parse memo: building a whole size family re-reads the same
#: source otherwise (once per registered host count).
_GRAPH_MEMO: Dict[Tuple[str, str], object] = {}


def _load_graph(path: str, fmt: str, digest: str):
    # fmt is part of the key: the same bytes parse to different graphs under
    # different formats.
    key = (os.path.abspath(path), digest, fmt)
    graph = _GRAPH_MEMO.get(key)
    if graph is None:
        # The caller just verified ``digest``; don't hash the file again.
        graph, _, _ = load_topology(path, fmt, digest=digest)
        _GRAPH_MEMO.clear()
        _GRAPH_MEMO[key] = graph
    return graph


def _build_imported(path: str, format: str, digest: str, hosts: int,
                    seed: int, strategy: str) -> Platform:
    _check_digest(path, digest)
    spec = SampleSpec(hosts=hosts, seed=seed, strategy=strategy)
    return import_platform(_load_graph(path, format, digest), spec)


def _build_imported_gridml(path: str, digest: str) -> Platform:
    _check_digest(path, digest)
    # read_text (not read_gridml) so gzipped documents work like the graph
    # formats.
    return platform_from_gridml(from_xml(read_text(path)))


def imported_name(path: str, hosts: Optional[int] = None,
                  stem: Optional[str] = None) -> str:
    """The registry name of one imported scenario (``imported-<stem>[-hN]``).

    The stem derives from the file's basename unless overridden — two
    *different* files sharing a basename need distinct stems (``--name``).
    """
    if stem is None:
        stem = source_stem(path)
    # Full sanitisation: scenario names feed cache-file paths, so separators
    # and other specials must not survive a user-supplied stem.
    stem = sanitise_name(stem, fallback="topology")
    return f"imported-{stem}" if hosts is None else f"imported-{stem}-h{hosts}"


def _register(scenario: Scenario) -> Scenario:
    """Register one imported scenario, resolving benign name conflicts.

    The registry refuses a second, different definition under an existing
    name.  Two conflicts are benign for imports:

    * the *same source path* re-imported with new knobs (or new content) —
      a deliberate refresh, so the stale registration is replaced;
    * a mismatch that is *only* the path string of a byte-identical file
      (``traces/x.txt`` vs an absolute spelling) — the first registration
      is kept; its digest and every sampling knob match, so it builds the
      same platform and its cached sweep results stay reachable.

    A genuinely different definition (typically two different source files
    sharing a basename) points the user at the stem override.
    """
    try:
        return register(scenario)
    except ValueError as exc:
        existing = get_scenario(scenario.name)
        if (existing.family == IMPORTED_FAMILY
                and existing.builder is scenario.builder):
            if ({k: v for k, v in existing.params if k != "path"}
                    == {k: v for k, v in scenario.params if k != "path"}
                    and existing.tags == scenario.tags
                    and existing.description == scenario.description):
                return existing
            if same_source(existing.param_dict.get("path"),
                           scenario.param_dict.get("path")):
                unregister(scenario.name)
                _drop_stale_wrapper(scenario.name)
                return register(scenario)
        raise ValueError(
            f"{exc}; another import already uses this name — pass a "
            "distinct stem (CLI: --name) or re-import the original "
            "source") from None


def same_source(a: object, b: object) -> bool:
    """Whether two path spellings name the same file (canonical compare)."""
    return os.path.abspath(str(a)) == os.path.abspath(str(b))


def _drop_stale_wrapper(base_name: str) -> None:
    """Unregister the ``dyn-`` wrapper of a replaced base registration.

    The wrapper's identity covers the old base hash, so it must follow a
    replaced base out — or a sweep would silently replay the old platform
    and keep serving its old cache entry.
    """
    try:
        wrapper = get_scenario(f"dyn-{base_name}")
    except KeyError:
        return
    if isinstance(wrapper, DynamicScenario) and wrapper.base == base_name:
        unregister(wrapper.name)


def _drop_stale_registrations(path: str, digest: str,
                              seed: Optional[int] = None,
                              strategy: Optional[str] = None,
                              fmt: Optional[str] = None) -> None:
    """Unregister every scenario of ``path`` that the re-import obsoletes.

    A re-import must refresh the *whole* same-source family, not just the
    sizes it re-requests: a sibling left behind with the old digest fails
    its build-time check on the next sweep, and one left with old knobs
    (seed/strategy/format) silently sweeps a mixed-knob family.  Sizes
    previously imported with *identical* knobs stay registered, so imports
    accumulate sizes.  Dynamic wrappers follow their bases out.
    """
    new_is_gridml = fmt is None
    for scenario in list_scenarios(family=IMPORTED_FAMILY):
        params = scenario.param_dict
        if not same_source(params.get("path"), path):
            continue
        # GridML registrations carry no sampling params; a category switch
        # (graph <-> gridml) obsoletes the other category's family outright.
        existing_is_gridml = "format" not in params
        stale = (params.get("digest") != digest
                 or existing_is_gridml != new_is_gridml
                 or (not new_is_gridml
                     and (params.get("seed") != seed
                          or params.get("strategy") != strategy
                          or params.get("format") != fmt)))
        if not stale:
            continue
        unregister(scenario.name)
        _drop_stale_wrapper(scenario.name)


def register_imported(path: str, format: Optional[str] = None,
                      sizes: Sequence[int] = DEFAULT_SIZES,
                      seed: int = 0, strategy: str = "bfs",
                      tags: Sequence[str] = (),
                      name: Optional[str] = None,
                      digest: Optional[str] = None) -> List[Scenario]:
    """Register the scenario family derived from one topology file.

    Graph formats yield one scenario per entry of ``sizes`` (target host
    counts); GridML files carry their own structure and yield exactly one.
    ``name`` overrides the basename-derived scenario stem (needed when two
    different files share a basename); ``digest`` lets a caller that already
    hashed the file (the manifest loader) skip a redundant read.
    Registration is idempotent for an unchanged file; re-importing the same
    source with changed content or knobs *replaces* its registration (new
    digest → new hashes → new cache keys), while a *different* file under
    the same stem raises.
    """
    path = os.path.normpath(path)
    if not os.path.exists(path):
        raise FileNotFoundError(f"topology file not found: {path}")
    resolved = format or detect_format(path)
    digest = digest or file_digest(path)
    if resolved == "gridml":
        _drop_stale_registrations(path, digest)
    else:
        _drop_stale_registrations(path, digest, seed=int(seed),
                                  strategy=strategy, fmt=resolved)
    tags = tuple(tags)
    if IMPORTED_FAMILY not in tags:
        tags = (IMPORTED_FAMILY,) + tags

    scenarios: List[Scenario] = []
    if resolved == "gridml":
        scenarios.append(_register(Scenario(
            name=imported_name(path, stem=name),
            family=IMPORTED_FAMILY,
            description=f"GridML platform imported from {path}",
            tags=tags,
            params=tuple(sorted({"path": path, "digest": digest}.items())),
            builder=_build_imported_gridml)))
        return scenarios

    sizes = tuple(dict.fromkeys(int(hosts) for hosts in sizes))
    if not sizes:
        raise ValueError("graph imports need at least one target host count")
    # Validate the sampling knobs once, eagerly — not per build in a worker.
    for hosts in sizes:
        SampleSpec(hosts=hosts, seed=seed, strategy=strategy)
    for hosts in sizes:
        params = {"path": path, "format": resolved, "digest": digest,
                  "hosts": int(hosts), "seed": int(seed),
                  "strategy": strategy}
        scenarios.append(_register(Scenario(
            name=imported_name(path, hosts, stem=name),
            family=IMPORTED_FAMILY,
            description=(f"{resolved} topology {os.path.basename(path)}, "
                         f"sampled to {hosts} hosts (seed {seed})"),
            tags=tags,
            params=tuple(sorted(params.items())),
            builder=_build_imported)))
    return scenarios


def register_imported_dynamic(scenarios: Sequence[Scenario],
                              epochs: int = 6,
                              drift_rate: float = 1.0,
                              ) -> List[DynamicScenario]:
    """Churn wrappers (``dyn-imported-...``) for imported scenarios.

    A mild drift-only schedule: real measured topologies are most interesting
    under changing conditions, and drift keeps replays cheap enough for the
    smoke path.  The wrapper's hash covers the base scenario's hash — which
    covers the source digest — so churn replays invalidate with the file.
    """
    dynamic: List[DynamicScenario] = []
    for scenario in scenarios:
        # A re-import replaced the base registration; the stale wrapper
        # (whose hash covers the old base hash) must follow it out.
        _drop_stale_wrapper(scenario.name)
        dynamic.append(register_dynamic_scenario(
            f"dyn-{scenario.name}", base=scenario.name,
            tags=(IMPORTED_FAMILY,),
            description=f"{scenario.name} under link-condition drift",
            epochs=epochs, seed=scenario.param_dict.get("seed", 0),
            drift_rate=drift_rate, drift_factor_range=(0.4, 2.0)))
    return dynamic
