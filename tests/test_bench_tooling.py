"""Tests for the perf-trajectory tooling (BENCH_results.json + CI gate)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "benchmarks", "check_bench_regression.py")


@pytest.fixture()
def regression():
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def _results(tmp_path, wall_s, allocations, events=1000):
    path = tmp_path / "BENCH_results.json"
    _write(path, {
        "schema": 1,
        "code_version": "abc",
        "results": [
            {"benchmark": "benchmarks/test_x.py::test_other",
             "wall_s": 9.9, "counters": {"events": 5, "allocations": 5}},
            {"benchmark": "benchmarks/test_x.py::test_tracked",
             "wall_s": wall_s,
             "counters": {"events": events, "allocations": allocations}},
        ],
    })
    return str(path)


def _baseline(tmp_path, wall_s=1.0, allocations=1000, events=1000):
    path = tmp_path / "BENCH_baseline.json"
    _write(path, {
        "benchmark": "benchmarks/test_x.py::test_tracked",
        "wall_s": wall_s,
        "counters": {"events": events, "allocations": allocations},
    })
    return str(path)


TRACKED = ["--benchmark", "benchmarks/test_x.py::test_tracked"]


class TestRegressionGate:
    def test_passes_within_tolerance(self, regression, tmp_path, capsys):
        code = regression.main(
            ["--results", _results(tmp_path, wall_s=1.2, allocations=1100),
             "--baseline", _baseline(tmp_path)] + TRACKED)
        assert code == 0
        assert "no perf regression" in capsys.readouterr().out

    def test_fails_on_counter_regression(self, regression, tmp_path, capsys):
        code = regression.main(
            ["--results", _results(tmp_path, wall_s=1.0, allocations=2000),
             "--baseline", _baseline(tmp_path)] + TRACKED)
        assert code == 1
        assert "allocations" in capsys.readouterr().err

    def test_fails_on_wall_regression(self, regression, tmp_path):
        code = regression.main(
            ["--results", _results(tmp_path, wall_s=2.0, allocations=1000),
             "--baseline", _baseline(tmp_path)] + TRACKED)
        assert code == 1

    def test_no_wall_skips_machine_dependent_check(self, regression, tmp_path):
        code = regression.main(
            ["--results", _results(tmp_path, wall_s=2.0, allocations=1000),
             "--baseline", _baseline(tmp_path), "--no-wall"] + TRACKED)
        assert code == 0

    def test_update_writes_baseline(self, regression, tmp_path):
        results = _results(tmp_path, wall_s=1.5, allocations=1234)
        baseline = str(tmp_path / "new_baseline.json")
        assert regression.main(["--results", results, "--baseline", baseline,
                                "--update"] + TRACKED) == 0
        with open(baseline, encoding="utf-8") as handle:
            written = json.load(handle)
        assert written["counters"] == {"events": 1000, "allocations": 1234}
        assert written["wall_s"] == 1.5
        # And a gate against the freshly written baseline passes.
        assert regression.main(["--results", results, "--baseline", baseline]
                               + TRACKED) == 0

    def test_missing_tracked_benchmark_exits(self, regression, tmp_path):
        with pytest.raises(SystemExit):
            regression.main(
                ["--results", _results(tmp_path, 1.0, 1000),
                 "--baseline", _baseline(tmp_path),
                 "--benchmark", "benchmarks/test_x.py::test_absent"])


def _run_cheap_benchmark(tmp_path, out_path):
    """Run one cheap benchmark file under the bench conftest."""
    import subprocess
    import sys

    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO_ROOT, "src"),
               BENCH_RESULTS_PATH=str(out_path),
               BENCH_PROFILES_DIR=str(tmp_path / "BENCH_profiles"))
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         os.path.join(REPO_ROOT, "benchmarks",
                      "test_bench_gridml_listings.py")],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_bench_conftest_writes_results_file(tmp_path):
    """One cheap benchmark run produces a well-formed BENCH_results.json."""
    out_path = tmp_path / "BENCH_results.json"
    _run_cheap_benchmark(tmp_path, out_path)
    payload = json.loads(out_path.read_text())
    assert payload["schema"] == 2
    assert payload["code_version"]
    assert payload["results"], "no per-benchmark records written"
    record = payload["results"][0]
    assert record["benchmark"].startswith("benchmarks/")
    assert record["wall_s"] >= 0
    assert record["code_version"] == payload["code_version"]
    assert set(record["counters"]) == {"events", "allocations",
                                       "probe_memo_hits", "route_cache_hits",
                                       "route_cache_misses"}


def test_bench_conftest_merges_previous_results(tmp_path):
    """A partial run refreshes only its benchmarks and keeps the rest.

    Stale entries survive the merge with the ``code_version`` they were
    measured at (inherited from the old file's top level for pre-merge
    schema-1 files), while re-run benchmarks are replaced in place.
    """
    out_path = tmp_path / "BENCH_results.json"
    _write(out_path, {
        "schema": 1,
        "code_version": "oldversion",
        "results": [
            {"benchmark": "benchmarks/test_stale.py::test_kept",
             "wall_s": 42.0, "counters": {"events": 7}},
            {"benchmark": "benchmarks/test_bench_gridml_listings.py"
                          "::test_bench_gridml_documents",
             "wall_s": 41.0, "counters": {"events": 6}},
        ],
    })
    _run_cheap_benchmark(tmp_path, out_path)
    payload = json.loads(out_path.read_text())
    assert payload["schema"] == 2
    by_id = {r["benchmark"]: r for r in payload["results"]}
    kept = by_id["benchmarks/test_stale.py::test_kept"]
    assert kept["wall_s"] == 42.0
    assert kept["code_version"] == "oldversion"
    fresh = [r for r in payload["results"]
             if r["benchmark"].startswith(
                 "benchmarks/test_bench_gridml_listings.py")]
    assert fresh, "re-run benchmarks missing from the merged file"
    assert all(r["code_version"] == payload["code_version"] and
               r["wall_s"] != 41.0 for r in fresh)
