"""NWS memory servers: persistent storage of measurement series (paper §2.1).

Measurements taken by the sensors are shipped to a memory server and stored
as bounded time series, one per (source, destination, metric).  The
forecaster later fetches the history of a series to predict its next value.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["Measurement", "Series", "MemoryServer"]


@dataclass(frozen=True)
class Measurement:
    """One measurement sample."""

    time: float
    value: float
    src: str
    dst: str
    metric: str        # "bandwidth_mbps" | "latency_s" | "connect_s"
    clique: str = ""


class Series:
    """A bounded time series of measurements for one (src, dst, metric)."""

    def __init__(self, src: str, dst: str, metric: str, capacity: int = 512):
        self.src = src
        self.dst = dst
        self.metric = metric
        self.capacity = capacity
        self._samples: Deque[Measurement] = deque(maxlen=capacity)

    def append(self, measurement: Measurement) -> None:
        self._samples.append(measurement)

    def values(self) -> List[float]:
        return [m.value for m in self._samples]

    def timestamps(self) -> List[float]:
        return [m.time for m in self._samples]

    def last(self) -> Optional[Measurement]:
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)


class MemoryServer:
    """Stores the series of the cliques assigned to it."""

    def __init__(self, name: str, host: str, capacity: int = 512):
        self.name = name
        self.host = host
        self.capacity = capacity
        self._series: Dict[Tuple[str, str, str], Series] = {}
        self.stored_count = 0
        self.fetch_count = 0

    def store(self, measurement: Measurement) -> None:
        """Append a measurement to the right series (creating it if needed)."""
        key = (measurement.src, measurement.dst, measurement.metric)
        series = self._series.get(key)
        if series is None:
            series = Series(*key, capacity=self.capacity)
            self._series[key] = series
        series.append(measurement)
        self.stored_count += 1

    def fetch(self, src: str, dst: str, metric: str) -> Optional[Series]:
        """The full series for (src, dst, metric), or ``None``."""
        self.fetch_count += 1
        return self._series.get((src, dst, metric))

    def series_keys(self) -> List[Tuple[str, str, str]]:
        return sorted(self._series.keys())

    def __len__(self) -> int:
        return len(self._series)
