"""GridML document model.

GridML is the XML dialect ENV uses to describe "the physical and observable
characteristics of resources and networks constituting a Grid" (paper §4).
The object model below mirrors the elements appearing in the paper's
listings:

* ``GRID`` — the document root, containing sites;
* ``SITE`` — one administrative domain, containing machines;
* ``MACHINE`` — a host, with a ``LABEL`` (ip + canonical name), ``ALIAS``
  entries and ``PROPERTY`` entries;
* ``NETWORK`` — a (possibly nested) network, either *structural* (from the
  traceroute phase) or an ENV-classified network (``ENV_Shared`` /
  ``ENV_Switched``), containing machine references, properties and
  sub-networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["GridProperty", "MachineEntry", "NetworkEntry", "SiteEntry", "GridDocument"]


@dataclass
class GridProperty:
    """A ``PROPERTY`` element: a named value with optional units."""

    name: str
    value: str
    units: Optional[str] = None


@dataclass
class MachineEntry:
    """A ``MACHINE`` element: identity, aliases and measured properties."""

    name: str
    ip: Optional[str] = None
    aliases: List[str] = field(default_factory=list)
    properties: List[GridProperty] = field(default_factory=list)

    def property_value(self, name: str) -> Optional[str]:
        """Value of the first property called ``name``, or ``None``."""
        for prop in self.properties:
            if prop.name == name:
                return prop.value
        return None

    def add_property(self, name: str, value: object, units: Optional[str] = None) -> None:
        self.properties.append(GridProperty(name=name, value=str(value), units=units))


@dataclass
class NetworkEntry:
    """A ``NETWORK`` element: type, label, member machines and sub-networks."""

    label: str
    network_type: str = "Structural"
    label_ip: Optional[str] = None
    machines: List[str] = field(default_factory=list)
    properties: List[GridProperty] = field(default_factory=list)
    subnetworks: List["NetworkEntry"] = field(default_factory=list)

    def add_property(self, name: str, value: object, units: Optional[str] = None) -> None:
        self.properties.append(GridProperty(name=name, value=str(value), units=units))

    def property_value(self, name: str) -> Optional[str]:
        for prop in self.properties:
            if prop.name == name:
                return prop.value
        return None

    def walk(self):
        """Yield this network and all nested sub-networks (pre-order)."""
        yield self
        for sub in self.subnetworks:
            yield from sub.walk()

    def all_machines(self) -> List[str]:
        """Machine names of this network and every sub-network."""
        names: List[str] = []
        for net in self.walk():
            names.extend(net.machines)
        return names


@dataclass
class SiteEntry:
    """A ``SITE`` element: a DNS domain with its machines."""

    domain: str
    label: str = ""
    machines: List[MachineEntry] = field(default_factory=list)

    def machine(self, name: str) -> Optional[MachineEntry]:
        """Find a machine by canonical name or alias."""
        for entry in self.machines:
            if entry.name == name or name in entry.aliases:
                return entry
        return None


@dataclass
class GridDocument:
    """A complete GridML document."""

    label: str = "Grid1"
    sites: List[SiteEntry] = field(default_factory=list)
    networks: List[NetworkEntry] = field(default_factory=list)

    def site(self, domain: str) -> Optional[SiteEntry]:
        for entry in self.sites:
            if entry.domain == domain:
                return entry
        return None

    def machine(self, name: str) -> Optional[MachineEntry]:
        """Find a machine in any site by canonical name or alias."""
        for site_entry in self.sites:
            found = site_entry.machine(name)
            if found is not None:
                return found
        return None

    def all_machine_names(self) -> List[str]:
        return [m.name for s in self.sites for m in s.machines]

    def all_networks(self) -> List[NetworkEntry]:
        """All networks in the document, including nested ones (pre-order)."""
        out: List[NetworkEntry] = []
        for net in self.networks:
            out.extend(net.walk())
        return out

    def networks_of_type(self, network_type: str) -> List[NetworkEntry]:
        return [n for n in self.all_networks() if n.network_type == network_type]
