"""The repo-specific rules enforced by ``repro check``.

Each rule is a small :mod:`ast` visitor scoped (via ``applies``) to the
part of the tree where its invariant matters.  Importing this module
populates :data:`repro.check.engine.ALL_RULES`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import CheckedFile, Finding, Rule, register

__all__ = [
    "DeterminismRule",
    "VersionBumpRule",
    "AtomicWriteRule",
    "AsyncBlockingRule",
    "SilentExceptRule",
    "PoolBoundaryRule",
]


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` call targets as a dotted string, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------- RC001

#: Path prefixes (or exact files) whose output feeds scenario content
#: hashes / the sweep cache key — any nondeterminism here silently serves
#: stale cached results.
_HASH_CRITICAL = ("scenarios/", "ingest/", "sweep/", "dynamics/churn.py")

#: Prefix -> categories of nondeterminism that are *legitimate* there.
#: serve/ shows wall-clock timestamps to humans; obs/ additionally mints
#: trace ids from process entropy.
_RC001_ALLOW: Dict[str, Set[str]] = {
    "serve/": {"wallclock"},
    "obs/": {"wallclock", "entropy"},
    "faults.py": {"wallclock"},
    "perf.py": {"wallclock"},
    "cli.py": {"wallclock"},
}

_WALLCLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
}

_ENTROPY_CALLS = {
    "os.urandom": "os.urandom()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
}

#: Seeded-RNG constructors: fine *with* arguments, flagged bare.
_RNG_CTORS = {"random.Random", "numpy.random.default_rng",
              "np.random.default_rng"}


@register
class DeterminismRule(Rule):
    """RC001: hash-critical modules must be bit-deterministic.

    Scenario definitions are content-hashed and the sweep cache is keyed
    by that hash — a wall-clock read, an unseeded RNG draw, or iteration
    over a ``set`` (whose order varies with ``PYTHONHASHSEED``) anywhere
    in ``scenarios/``, ``ingest/``, ``sweep/`` or ``dynamics/churn.py``
    makes the cache serve results for inputs that never existed.
    Wall-clock and entropy use elsewhere is also flagged unless the
    module prefix is allowlisted for that category (``serve/`` shows
    wall-clock timestamps to humans, ``obs/`` mints trace ids).
    """

    id = "RC001"
    title = "determinism"

    def _allowed(self, cf: CheckedFile, category: str) -> bool:
        return any(cf.rel.startswith(prefix) and category in categories
                   for prefix, categories in _RC001_ALLOW.items())

    def _hash_critical(self, cf: CheckedFile) -> bool:
        return any(cf.rel == p or cf.rel.startswith(p)
                   for p in _HASH_CRITICAL)

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        hash_critical = self._hash_critical(cf)
        allow_wall = self._allowed(cf, "wallclock") and not hash_critical
        allow_entropy = self._allowed(cf, "entropy") and not hash_critical
        for node in ast.walk(cf.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in _WALLCLOCK_CALLS and not allow_wall:
                    findings.append(self.finding(
                        cf, node,
                        f"{_WALLCLOCK_CALLS[dotted]} is wall-clock; use "
                        f"time.monotonic()/perf_counter() for durations, "
                        f"noqa display-only timestamps"))
                elif dotted in _ENTROPY_CALLS and not allow_entropy:
                    findings.append(self.finding(
                        cf, node,
                        f"{_ENTROPY_CALLS[dotted]} draws process entropy; "
                        f"derive values from the scenario seed"))
                elif dotted in _RNG_CTORS and not node.args \
                        and not node.keywords and not allow_entropy:
                    findings.append(self.finding(
                        cf, node,
                        f"{dotted}() without a seed is nondeterministic; "
                        f"pass an explicit seed"))
                elif dotted is not None and dotted.startswith("random.") \
                        and dotted not in _RNG_CTORS \
                        and not dotted.startswith("random.SystemRandom") \
                        and not allow_entropy:
                    findings.append(self.finding(
                        cf, node,
                        f"{dotted}() uses the shared unseeded global RNG; "
                        f"use a seeded random.Random(seed) instance"))
            if hash_critical:
                findings.extend(self._set_iteration(cf, node))
        return findings

    def _set_iteration(self, cf: CheckedFile,
                       node: ast.AST) -> Iterable[Finding]:
        iters: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            is_set = isinstance(it, (ast.Set, ast.SetComp))
            if isinstance(it, ast.Call):
                is_set = _dotted(it.func) in {"set", "frozenset"}
            if is_set:
                yield self.finding(
                    cf, it,
                    "iteration over a set depends on hash order; sort it "
                    "(sorted(...)) before iterating")


# --------------------------------------------------------------------- RC002

#: Attribute names that *are* version counters — writing one counts as a
#: bump, not as unversioned state.
_VERSION_ATTR_RE = re.compile(r"(version|epoch)", re.IGNORECASE)
#: Caches derived from versioned state: writes are invalidation, not
#: mutation, and don't require a bump.
_CACHE_ATTR_RE = re.compile(r"(cache|memo|_by_)", re.IGNORECASE)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "add_node", "add_edge",
    "remove", "remove_node", "remove_edge", "discard", "pop", "popitem",
    "clear", "update", "setdefault", "register", "popleft", "appendleft",
}


@register
class VersionBumpRule(Rule):
    """RC002: every ``Platform`` method writing topology state bumps a
    version counter.

    ``ProbeMemo`` and the route cache key their entries on the platform's
    ``_version`` / element-version counters; a mutator that forgets the
    bump makes them serve measurements of a topology that no longer
    exists (the PR-4 ``set_hub_bandwidth`` staleness hole).  Methods are
    discovered by attribute-write analysis — including writes through
    local aliases like ``node = self.nodes[n]; node.bw = v`` — never a
    hardcoded list; a method is clean if it (transitively, via ``self``
    calls) writes any version/epoch attribute.
    """

    id = "RC002"
    title = "version-bump"

    def applies(self, cf: CheckedFile) -> bool:
        return "class Platform" in cf.source

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cf.tree):
            if isinstance(node, ast.ClassDef) and node.name == "Platform":
                findings.extend(self._check_class(cf, node))
        return findings

    def _check_class(self, cf: CheckedFile,
                     cls: ast.ClassDef) -> Iterable[Finding]:
        methods = {n.name: n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
        info = {name: self._analyze(fn) for name, fn in methods.items()}
        # Propagate bumps through self.method() calls to a fixpoint: a
        # mutator delegating to self._bump() (or to another bumping
        # mutator) is clean.
        bumping = {n for n, (_, b, _, _) in info.items() if b}
        changed = True
        while changed:
            changed = False
            for name, (_, _, calls, _) in info.items():
                if name not in bumping and calls & bumping:
                    bumping.add(name)
                    changed = True
        for name in sorted(methods):
            if name.startswith("__") or name in bumping:
                continue
            writes_state, _, _, first = info[name]
            if writes_state:
                node: ast.AST = first if first is not None else methods[name]
                yield self.finding(
                    cf, node,
                    f"Platform.{name} writes topology state without "
                    f"bumping a version counter (_version/epoch); stale "
                    f"ProbeMemo/route-cache entries will survive")

    def _analyze(self, fn: ast.AST
                 ) -> Tuple[bool, bool, Set[str], Optional[ast.AST]]:
        """(writes non-cache state, writes a version attr, self-calls,
        first offending node)."""
        aliases: Dict[str, str] = {}
        # Pass 1: local aliases of self attributes (x = self.nodes[...]).
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                attr = self._self_attr_of(node.value)
                if attr is not None:
                    aliases[node.targets[0].id] = attr
        writes_state = False
        bumps = False
        first: Optional[ast.AST] = None
        calls: Set[str] = set()
        for node in ast.walk(fn):
            attrs: List[Tuple[str, ast.AST]] = []
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = self._write_target_attr(target, aliases)
                    if attr is not None:
                        attrs.append((attr, target))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = self._write_target_attr(target, aliases)
                    if attr is not None:
                        attrs.append((attr, target))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    attr = self._self_attr_of(node.func.value,
                                              aliases=aliases)
                    if attr is not None:
                        attrs.append((attr, node))
                dotted = _dotted(node.func)
                if dotted is not None and dotted.startswith("self."):
                    calls.add(dotted.split(".")[1])
            for attr, site in attrs:
                if _VERSION_ATTR_RE.search(attr):
                    bumps = True
                elif not _CACHE_ATTR_RE.search(attr):
                    writes_state = True
                    if first is None:
                        first = site
        return writes_state, bumps, calls, first

    def _self_attr_of(self, node: ast.AST,
                      aliases: Optional[Dict[str, str]] = None
                      ) -> Optional[str]:
        """The attribute adjacent to ``self`` in an access chain.

        ``self.links[n].bandwidth`` -> ``links``; with ``aliases``,
        ``node.bandwidth`` where ``node = self.nodes[n]`` -> ``nodes``.
        """
        last_attr: Optional[str] = None
        while True:
            if isinstance(node, ast.Attribute):
                last_attr = node.attr
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                break
        if isinstance(node, ast.Name):
            if node.id == "self":
                return last_attr
            if aliases is not None and node.id in aliases:
                return aliases[node.id]
        return None

    def _write_target_attr(self, target: ast.AST,
                           aliases: Dict[str, str]) -> Optional[str]:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return self._self_attr_of(target, aliases=aliases)
        return None


# --------------------------------------------------------------------- RC003

_WRITE_MODE_RE = re.compile(r"[wax+]")


@register
class AtomicWriteRule(Rule):
    """RC003: persistence flows through ``ioutils``, never raw writes.

    ``write_atomic`` and ``append_line`` carry the crash-safety contract
    (tempfile + ``os.replace``, torn-tail healing) *and* the fault-
    injection hook — a raw ``open(path, "w")`` elsewhere is a write site
    the chaos suite cannot see and a partial file waiting to happen.
    """

    id = "RC003"
    title = "atomic-write"

    def applies(self, cf: CheckedFile) -> bool:
        return cf.rel != "ioutils.py"

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cf.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in {"open", "io.open", "os.fdopen"}:
                mode = self._mode_arg(node, dotted)
                if mode is not None and _WRITE_MODE_RE.search(mode):
                    findings.append(self.finding(
                        cf, node,
                        f"raw {dotted}(..., {mode!r}); route writes "
                        f"through ioutils.write_atomic/append_line"))
            elif dotted in {"os.replace", "os.rename"}:
                findings.append(self.finding(
                    cf, node,
                    f"{dotted}() outside ioutils bypasses the atomic-write "
                    f"and fault-injection layer"))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in {"write_text", "write_bytes"}:
                findings.append(self.finding(
                    cf, node,
                    f"Path.{node.func.attr}() is a raw write; route "
                    f"through ioutils.write_atomic"))
        return findings

    def _mode_arg(self, call: ast.Call, dotted: str) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == "mode":
                if isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, str):
                    return kw.value.value
                return None          # dynamic mode: benefit of the doubt
        if len(call.args) > 1:
            arg = call.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return None
        return None if dotted == "os.fdopen" else "r"


# --------------------------------------------------------------------- RC004

_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the event loop; use asyncio.sleep()",
    "socket.socket": "raw socket use blocks the event loop; use asyncio "
                     "streams",
    "socket.create_connection": "blocking connect; use "
                                "asyncio.open_connection()",
    "urllib.request.urlopen": "blocking HTTP; use asyncio streams or a "
                              "thread executor",
    "os.system": "os.system() blocks the event loop",
    "os.wait": "os.wait() blocks the event loop",
    "os.waitpid": "os.waitpid() blocks the event loop",
    "os.popen": "os.popen() blocks the event loop",
}


@register
class AsyncBlockingRule(Rule):
    """RC004: no blocking calls inside ``async def`` under ``serve/``.

    One blocked coroutine stalls every in-flight request on the server's
    single event loop.  Pool ``AsyncResult.get()`` is only safe after a
    ``.ready()`` poll — sites doing that dance carry an explicit noqa.
    """

    id = "RC004"
    title = "async-blocking"

    def applies(self, cf: CheckedFile) -> bool:
        return cf.rel.startswith("serve/")

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cf.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_async_body(cf, node))
        return findings

    def _check_async_body(self, cf: CheckedFile,
                          fn: ast.AsyncFunctionDef) -> Iterable[Finding]:
        findings: List[Finding] = []
        awaited: Set[int] = set()

        def visit(node: ast.AST) -> None:
            # Don't descend into nested defs: a sync helper defined inside
            # an async fn runs wherever it is *called* (often an executor).
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                return
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
            if isinstance(node, ast.Call):
                check_call(node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        def check_call(call: ast.Call) -> None:
            dotted = _dotted(call.func)
            if dotted in _BLOCKING_CALLS:
                findings.append(self.finding(cf, call,
                                             _BLOCKING_CALLS[dotted]))
            elif dotted is not None and dotted.startswith("subprocess."):
                findings.append(self.finding(
                    cf, call, f"{dotted}() blocks the event loop; use "
                    f"asyncio.create_subprocess_exec()"))
            elif dotted == "open":
                findings.append(self.finding(
                    cf, call, "sync file I/O inside async def blocks the "
                    "event loop; do it in an executor"))
            elif isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "get" \
                    and not call.args and not call.keywords \
                    and id(call) not in awaited:
                base = call.func.value
                name = base.id if isinstance(base, ast.Name) else \
                    (base.attr if isinstance(base, ast.Attribute) else "")
                if name.lower().endswith("result"):
                    findings.append(self.finding(
                        cf, call,
                        f"{name}.get() on a pool result blocks the event "
                        f"loop; poll .ready() first or run in an executor"))

        visit(fn)
        return findings


# --------------------------------------------------------------------- RC005

@register
class SilentExceptRule(Rule):
    """RC005: no exception handler whose body only passes.

    A swallowed exception is an invisible failure mode: the fault-
    tolerance work (PR 8) counts every degradation with a labelled obs
    counter precisely so chaos runs can assert on them.  Handlers must
    log (``repro.obs.logs``) or bump a counter — or carry an explicit
    noqa stating why silence is correct.
    """

    id = "RC005"
    title = "silent-except"

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(cf.tree):
            if isinstance(node, ast.ExceptHandler) \
                    and self._is_silent(node.body):
                exc = "BaseException"
                if isinstance(node.type, ast.Tuple):
                    names = [_dotted(e) or "?" for e in node.type.elts]
                    exc = "(" + ", ".join(names) + ")"
                elif node.type is not None:
                    exc = _dotted(node.type) or "?"
                findings.append(self.finding(
                    cf, node,
                    f"except {exc}: pass swallows the failure silently; "
                    f"log it or bump a labelled obs counter"))
        return findings

    def _is_silent(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Constant):
                continue             # docstring / Ellipsis
            return False
        return True


# --------------------------------------------------------------------- RC006

_DISPATCH_METHODS = {"apply_async", "map_async", "imap", "imap_unordered"}
_DISPATCH_FUNCS = {"submit_scenario"}


@register
class PoolBoundaryRule(Rule):
    """RC006: pool dispatch takes module-level callables only.

    ``multiprocessing`` pickles the dispatched callable by qualified
    name; lambdas and closures either fail outright or smuggle whole
    enclosing scopes across the process boundary.  ROADMAP item 5's
    zero-pickle shared-memory dispatch hardens this into a protocol —
    the boundary must already be clean.
    """

    id = "RC006"
    title = "pool-boundary"

    def check(self, cf: CheckedFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        module_names = self._module_bindings(cf.tree)
        for fn in ast.walk(cf.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local = self._local_bindings(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_dispatch(
                        cf, node, local, module_names))
        return findings

    def _module_bindings(self, tree: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
        return names

    def _local_bindings(self, fn: ast.AST) -> Set[str]:
        names: Set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])):
                names.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                names.add(node.name)
        return names

    def _check_dispatch(self, cf: CheckedFile, call: ast.Call,
                        local: Set[str],
                        module_names: Set[str]) -> Iterable[Finding]:
        # apply_async-family dispatch takes the callable as its first arg;
        # submit_scenario takes a (slotted, picklable) scenario, so only
        # the lambda/closure sweep of its arguments applies.
        first_arg_is_callable = False
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _DISPATCH_METHODS:
            first_arg_is_callable = True
        elif not (isinstance(call.func, ast.Name)
                  and call.func.id in _DISPATCH_FUNCS):
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for leaf in ast.walk(arg):
                if isinstance(leaf, ast.Lambda):
                    yield self.finding(
                        cf, leaf,
                        "lambda crosses the pool boundary; dispatch a "
                        "module-level callable")
                    break
        if not first_arg_is_callable or not call.args:
            return
        target = call.args[0]
        if isinstance(target, ast.Lambda):
            return                   # already reported above
        if isinstance(target, ast.Attribute):
            dotted = _dotted(target) or f"<expr>.{target.attr}"
            yield self.finding(
                cf, target,
                f"{dotted} is a bound/attribute callable; dispatch a "
                f"module-level function")
        elif isinstance(target, ast.Name):
            if target.id in local and target.id not in module_names:
                yield self.finding(
                    cf, target,
                    f"{target.id} is bound in the enclosing function "
                    f"(closure); dispatch a module-level callable")
