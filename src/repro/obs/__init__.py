"""``repro.obs`` — tracing, metrics and structured logging (stdlib-only).

Three pillars, one import surface:

* :data:`TRACER` (:mod:`repro.obs.trace`) — span tracing with ambient
  context propagation, sampling, a bounded ring buffer and an optional
  JSONL span log; near-free when disabled.
* :data:`REGISTRY` (:mod:`repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms, rendered as JSON or Prometheus text exposition.
* :func:`setup_logging` / :func:`get_logger` (:mod:`repro.obs.logs`) —
  ``key=value`` structured logs on the stdlib :mod:`logging` package.

See README.md, "Observability".
"""

from __future__ import annotations

from .logs import get_logger, kv, setup_logging, to_json_line
from .metrics import (
    DEFAULT_BUCKETS,
    Metric,
    MetricsRegistry,
    REGISTRY,
    register_perf_counters,
)
from .timeline import group_traces, load_span_log, render_timeline
from .trace import NULL_SPAN, Span, TRACER, Tracer

__all__ = [
    "TRACER", "Tracer", "Span", "NULL_SPAN",
    "REGISTRY", "MetricsRegistry", "Metric", "DEFAULT_BUCKETS",
    "register_perf_counters",
    "setup_logging", "get_logger", "kv", "to_json_line",
    "render_timeline", "load_span_log", "group_traces",
]
