"""SWEEP — throughput of the scenario sweep engine and parallel speedup.

The sweep engine turns the single-run pipeline into a batch experimentation
system; this benchmark quantifies what that buys: per-scenario pipeline
throughput, the wall-clock effect of sharding scenarios across worker
processes, and the near-free cost of a cache-served re-run.
"""

import os
import time

from repro.analysis import render_table
from repro.scenarios import scenario_names
from repro.sweep import run_sweep


def test_bench_sweep_per_scenario_throughput(benchmark, tmp_path):
    names = scenario_names()
    assert len(names) >= 10

    result = benchmark.pedantic(
        lambda: run_sweep(names=names, jobs=1, cache_dir=str(tmp_path),
                          rerun=True),
        rounds=1, iterations=1)

    assert result.errors == []
    # Static records carry per-stage timings; dynamic (replay) records carry
    # epoch counts instead — report both shapes in one table.
    rows = []
    for record in sorted(result.records, key=lambda r: -r.elapsed_s):
        timings = record.summary.get("timings", {})
        rows.append({
            "scenario": record.scenario,
            "hosts": record.summary["hosts"],
            "epochs": record.summary.get("epochs", "-"),
            "measurements": record.summary["measurements"],
            "map_s": (round(timings["map"], 3) if "map" in timings else "-"),
            "plan_s": (round(timings["plan"], 3)
                       if "plan" in timings else "-"),
            "quality_s": (round(timings["quality"], 3)
                          if "quality" in timings else "-"),
            "total_s": round(record.elapsed_s, 3),
        })
    print(f"\n[SWEEP] per-scenario pipeline cost over {len(names)} scenarios "
          f"({len(names) / result.elapsed_s:.1f} scenarios/s serial)")
    print(render_table(rows))
    # Every scenario stays comfortably below a second of pipeline work.
    assert all(row["total_s"] < 5.0 for row in rows)


def test_bench_sweep_parallel_speedup_and_cache(tmp_path):
    names = scenario_names()
    jobs = min(4, os.cpu_count() or 1)

    start = time.perf_counter()
    serial = run_sweep(names=names, jobs=1,
                       cache_dir=str(tmp_path / "serial"), rerun=True)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(names=names, jobs=jobs,
                         cache_dir=str(tmp_path / "parallel"), rerun=True)
    parallel_s = time.perf_counter() - start

    start = time.perf_counter()
    cached = run_sweep(names=names, jobs=1,
                       cache_dir=str(tmp_path / "parallel"))
    cached_s = time.perf_counter() - start

    print(f"\n[SWEEP] {len(names)} scenarios; host has "
          f"{os.cpu_count()} CPU(s)")
    print(render_table([
        {"mode": "serial (jobs=1)", "wall_s": round(serial_s, 2),
         "speedup": 1.0, "cache_hits": serial.cache_hits},
        {"mode": f"parallel (jobs={jobs})", "wall_s": round(parallel_s, 2),
         "speedup": round(serial_s / parallel_s, 2),
         "cache_hits": parallel.cache_hits},
        {"mode": "cached re-run", "wall_s": round(cached_s, 2),
         "speedup": round(serial_s / cached_s, 2),
         "cache_hits": cached.cache_hits},
    ]))

    assert serial.errors == [] and parallel.errors == []
    # Sharding overhead must stay bounded even on a single-core or heavily
    # loaded host; the actual speedup is reported in the table above.
    assert parallel_s < serial_s * 2.0 + 1.0
    # The cache-served re-run does no pipeline work at all.
    assert cached.cache_hits == len(names)
    assert cached_s < max(0.5, serial_s / 4)
