"""Shared fixtures and the perf-trajectory hook for the benchmark suite.

Each benchmark regenerates one artifact of the paper's evaluation (see
DESIGN.md, "Experiment index") and prints the reproduced rows/series so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.

Every benchmark run additionally records a machine-readable perf trajectory:
per-benchmark wall time plus the hot-path work counters of
:mod:`repro.perf` (simulation events dispatched, max-min allocations solved,
probe-memo hits).  On session exit the records are **merged** into
``BENCH_results.json`` (path override: ``BENCH_RESULTS_PATH``), keyed by
benchmark id — a partial run (``pytest benchmarks/test_bench_fastpath.py``)
refreshes only the benchmarks it ran and keeps everyone else's last
recorded trajectory, each entry carrying the ``code_version`` it was
measured at.  ``make bench`` is the entry point, and
``benchmarks/check_bench_regression.py`` gates CI on the tracked
end-to-end benchmark.

Benchmarks also run under the sampling profiler
(:mod:`repro.obs.profile`, 100 Hz): the collapsed stacks of the two
slowest benchmarks are written to ``BENCH_profiles/`` (override:
``BENCH_PROFILES_DIR``) so a CI wall-time regression comes with the
flamegraph that explains it.  The ``*overhead*`` benchmarks are exempt —
they measure the observability layer's own cost, which an armed profiler
would perturb.
"""

from __future__ import annotations

import json
import os
import re
import time

import pytest

from repro import perf
from repro.core import plan_from_view
from repro.env import map_ens_lyon
from repro.netsim import build_ens_lyon
from repro.obs.profile import PROFILER
from repro.sweep import code_version

_RESULTS = []
_PROFILES = {}  # nodeid -> (wall_s, collapsed stacks text)

#: Benchmarks whose nodeid matches are never profiled: they measure the
#: tracing/profiling overhead itself.
_NO_PROFILE = re.compile(r"overhead")

_PROFILE_HZ = 100
#: How many of the slowest benchmarks get their stacks persisted.
_PROFILE_KEEP = 2


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record wall time, work counters and a sample profile per benchmark."""
    profile_it = not _NO_PROFILE.search(item.nodeid)
    before = perf.counters_snapshot()
    start = time.perf_counter()
    with PROFILER.maybe(profile_it, hz=_PROFILE_HZ) as capture:
        yield
    wall_s = time.perf_counter() - start
    after = perf.counters_snapshot()
    _RESULTS.append({
        "benchmark": item.nodeid,
        "wall_s": round(wall_s, 6),
        "counters": {key: after[key] - before[key] for key in after},
        "code_version": code_version(),
    })
    if profile_it and capture.samples:
        _PROFILES[item.nodeid] = (wall_s, capture.collapsed())


def _merge_results(path: str, fresh: list) -> list:
    """This run's records merged over the previous file's, keyed by id."""
    merged = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        previous = {}
    old_version = previous.get("code_version", "")
    for record in previous.get("results", []):
        if isinstance(record, dict) and "benchmark" in record:
            record.setdefault("code_version", old_version)
            merged[record["benchmark"]] = record
    for record in fresh:
        merged[record["benchmark"]] = record
    return sorted(merged.values(), key=lambda r: r["benchmark"])


def _write_profiles(directory: str) -> None:
    """Collapsed stacks of the slowest profiled benchmarks, one file each."""
    slowest = sorted(_PROFILES.items(), key=lambda kv: -kv[1][0])
    os.makedirs(directory, exist_ok=True)
    for nodeid, (wall_s, collapsed) in slowest[:_PROFILE_KEEP]:
        name = re.sub(r"[^A-Za-z0-9_.-]+", "_",
                      nodeid.split("::")[-1]) or "benchmark"
        path = os.path.join(directory, f"{name}.collapsed")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"# {nodeid} wall_s={wall_s:.6f} "
                         f"hz={_PROFILE_HZ}\n")
            handle.write(collapsed)


def pytest_sessionfinish(session, exitstatus):
    """Merge the perf trajectory and drop the slowest benchmarks' stacks."""
    if not _RESULTS:
        return
    path = os.environ.get("BENCH_RESULTS_PATH", "BENCH_results.json")
    payload = {
        "schema": 2,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "code_version": code_version(),
        "results": _merge_results(path, _RESULTS),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    if _PROFILES:
        _write_profiles(os.environ.get("BENCH_PROFILES_DIR",
                                       "BENCH_profiles"))


@pytest.fixture(scope="session")
def ens_lyon():
    """The ENS-Lyon platform of Figure 1(a)."""
    return build_ens_lyon()


@pytest.fixture(scope="session")
def merged_view(ens_lyon):
    """The merged effective view of Figure 1(b)."""
    return map_ens_lyon(ens_lyon)


@pytest.fixture(scope="session")
def ens_plan(merged_view):
    """The deployment plan of Figure 3."""
    return plan_from_view(merged_view, period_s=20.0)
