"""Tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self):
        args = build_parser().parse_args(["map"])
        assert args.platform == "ens-lyon"
        assert args.master is None

    def test_monitor_pairs_argument(self):
        args = build_parser().parse_args(
            ["monitor", "--pairs", "a:b", "c:d", "--duration", "60"])
        assert args.pairs == ["a:b", "c:d"]
        assert args.duration == 60.0


class TestCommands:
    def test_map_ens_lyon(self, capsys, tmp_path):
        gridml = tmp_path / "view.xml"
        assert main(["map", "--gridml", str(gridml)]) == 0
        out = capsys.readouterr().out
        assert "[shared]" in out and "[switched]" in out
        assert gridml.exists()

    def test_plan_writes_config(self, capsys, tmp_path):
        config = tmp_path / "nws.conf"
        assert main(["plan", "--period", "30", "--config-out", str(config)]) == 0
        out = capsys.readouterr().out
        assert "clique" in out
        assert "nameserver the-doors" in config.read_text()

    def test_quality_table(self, capsys):
        assert main(["quality"]) == 0
        out = capsys.readouterr().out
        assert "env" in out and "global-clique" in out and "completeness" in out

    def test_monitor_with_pairs(self, capsys):
        assert main(["monitor", "--duration", "90",
                     "--pairs", "sci1:sci2", "the-doors:sci3"]) == 0
        out = capsys.readouterr().out
        assert "sci1" in out and "answered by" in out

    def test_monitor_rejects_malformed_pair(self, capsys):
        assert main(["monitor", "--duration", "30", "--pairs", "nocolon"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_synthetic_platform_plan(self, capsys):
        assert main(["plan", "--platform", "synthetic", "--sites", "1",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "Deployment plan" in out

    def test_profile_static_scenario(self, capsys):
        assert main(["profile", "star-hub-8", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profiled one pipeline run of star-hub-8" in out
        assert "cumulative" in out
        assert "run_pipeline" in out

    def test_profile_dynamic_scenario(self, capsys):
        assert main(["profile", "dyn-hub-flash", "--top", "3",
                     "--sort", "tottime"]) == 0
        out = capsys.readouterr().out
        assert "profiled one dynamic replay of dyn-hub-flash" in out

    def test_profile_unknown_scenario_fails(self, capsys):
        assert main(["profile", "no-such-scenario"]) == 2
        assert "error" in capsys.readouterr().err
