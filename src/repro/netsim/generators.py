"""Synthetic platform generators.

The paper's quantitative arguments (naive-mapping cost, clique frequency,
plan quality) deserve evaluation beyond the single ENS-Lyon case study, so
the benchmark suite sweeps over synthetic platforms shaped like the ones the
paper targets: "a WAN constellation of LAN resources" (§5) — several sites
joined by a backbone, each site holding a mix of hub segments and switched
clusters behind routers, optionally with firewalled private sub-domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .builders import SiteBuilder
from .firewall import Firewall, attach_firewall
from .topology import Platform

__all__ = ["SyntheticSpec", "generate_constellation", "generate_single_site",
           "ground_truth_groups"]


@dataclass
class SyntheticSpec:
    """Parameters of a synthetic Grid constellation."""

    sites: int = 2
    clusters_per_site: Tuple[int, int] = (1, 3)        # inclusive range
    hosts_per_cluster: Tuple[int, int] = (2, 6)        # inclusive range
    hub_probability: float = 0.5                       # else switched
    lan_bandwidth_mbps: Tuple[float, ...] = (100.0, 1000.0)
    wan_bandwidth_mbps: float = 10.0
    lan_latency_s: float = 1e-4
    wan_latency_s: float = 5e-3
    firewall_probability: float = 0.0
    seed: int = 0


def _site_subnet(site_idx: int, cluster_idx: int) -> str:
    return f"10.{site_idx + 1}.{cluster_idx + 1}"


def generate_constellation(spec: SyntheticSpec) -> Platform:
    """Generate a multi-site platform according to ``spec``.

    The ground-truth grouping (which hosts share a segment and of which kind)
    is recorded on the platform as ``platform.ground_truth`` for scoring.
    """
    rng = np.random.default_rng(spec.seed)
    b = SiteBuilder(name=f"synthetic-{spec.seed}")
    platform = b.platform
    platform.add_external("internet")

    ground_truth: Dict[str, Dict[str, object]] = {}
    backbone_name = "backbone"
    b.add_router(backbone_name, ip="192.168.254.1")
    b.connect(backbone_name, "internet", spec.wan_bandwidth_mbps * 10,
              latency_s=spec.wan_latency_s)

    firewall = Firewall()
    any_firewalled = False

    for s in range(spec.sites):
        site_router = f"site{s}-router"
        b.add_router(site_router, ip=f"10.{s + 1}.0.1")
        b.connect(site_router, backbone_name, spec.wan_bandwidth_mbps,
                  latency_s=spec.wan_latency_s)
        domain = f"site{s}.example.org"
        n_clusters = int(rng.integers(spec.clusters_per_site[0],
                                      spec.clusters_per_site[1] + 1))
        for c in range(n_clusters):
            n_hosts = int(rng.integers(spec.hosts_per_cluster[0],
                                       spec.hosts_per_cluster[1] + 1))
            kind = "hub" if rng.random() < spec.hub_probability else "switch"
            bw = float(rng.choice(spec.lan_bandwidth_mbps))
            host_names = [f"s{s}c{c}h{h}" for h in range(n_hosts)]
            subnet = _site_subnet(s, c)
            for name in host_names:
                b.add_host(name, subnet=subnet, domain=domain)
            segment = f"s{s}c{c}-{kind}"
            if kind == "hub":
                b.add_hub_segment(segment, host_names, bw,
                                  latency_s=spec.lan_latency_s)
            else:
                b.add_switch_segment(segment, host_names, bw,
                                     latency_s=spec.lan_latency_s)
            # Up-link: the cluster's first host is dual-homed gateway half the
            # time, otherwise the segment connects straight to the site router.
            # The site router reports a per-subnet interface address (as real
            # routers do), so traceroutes separate the clusters structurally.
            if n_hosts >= 2 and rng.random() < 0.5:
                # The dual-homed gateway itself shows up as a traceroute hop,
                # which is enough structural separation.
                gateway = host_names[0]
                b.connect(gateway, site_router, bw, latency_s=spec.lan_latency_s)
            else:
                gateway = None
                b.connect(segment, site_router, bw, latency_s=spec.lan_latency_s)
                from .address import IPv4Address
                platform.nodes[site_router].interface_ips[segment] = \
                    IPv4Address.parse(f"{subnet}.254")
            ground_truth[segment] = {
                "hosts": set(host_names),
                "kind": "shared" if kind == "hub" else "switched",
                "site": s,
                "gateway": gateway,
                "bandwidth_mbps": bw,
            }
            if spec.firewall_probability > 0 and rng.random() < spec.firewall_probability:
                private_domain = f"private-s{s}c{c}"
                for name in host_names:
                    platform.nodes[name].domain = private_domain
                gateways = [gateway] if gateway else [host_names[0]]
                firewall.isolate_domain(private_domain, gateways=gateways)
                any_firewalled = True

    if any_firewalled:
        attach_firewall(platform, firewall)

    platform.ground_truth = ground_truth  # type: ignore[attr-defined]
    problems = platform.validate()
    if problems:
        raise AssertionError("synthetic platform failed validation: "
                             + "; ".join(problems))
    return platform


def generate_single_site(n_hub_clusters: int = 1, n_switch_clusters: int = 1,
                         hosts_per_cluster: int = 4,
                         bandwidth_mbps: float = 100.0,
                         seed: int = 0) -> Platform:
    """A deterministic single-site platform (useful for unit tests)."""
    spec = SyntheticSpec(sites=1,
                         clusters_per_site=(n_hub_clusters + n_switch_clusters,
                                            n_hub_clusters + n_switch_clusters),
                         hosts_per_cluster=(hosts_per_cluster, hosts_per_cluster),
                         hub_probability=1.0,
                         lan_bandwidth_mbps=(bandwidth_mbps,),
                         seed=seed)
    # Build manually so the hub/switch split is exact rather than probabilistic.
    b = SiteBuilder(name=f"single-site-{seed}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("site-router", ip="10.1.0.1")
    b.connect("site-router", "internet", 100.0, latency_s=5e-3)
    ground_truth: Dict[str, Dict[str, object]] = {}
    cluster_idx = 0
    for kind, count in (("hub", n_hub_clusters), ("switch", n_switch_clusters)):
        for _ in range(count):
            host_names = [f"c{cluster_idx}h{h}" for h in range(hosts_per_cluster)]
            subnet = _site_subnet(0, cluster_idx)
            for name in host_names:
                b.add_host(name, subnet=subnet, domain="site0.example.org")
            segment = f"c{cluster_idx}-{kind}"
            if kind == "hub":
                b.add_hub_segment(segment, host_names, bandwidth_mbps)
            else:
                b.add_switch_segment(segment, host_names, bandwidth_mbps)
            b.connect(segment, "site-router", bandwidth_mbps)
            # Per-subnet router interface address: traceroutes from different
            # clusters report different first hops (structural separation).
            from .address import IPv4Address
            platform.nodes["site-router"].interface_ips[segment] = \
                IPv4Address.parse(f"{subnet}.254")
            ground_truth[segment] = {
                "hosts": set(host_names),
                "kind": "shared" if kind == "hub" else "switched",
                "site": 0,
                "gateway": None,
                "bandwidth_mbps": bandwidth_mbps,
            }
            cluster_idx += 1
    platform.ground_truth = ground_truth  # type: ignore[attr-defined]
    return platform


def ground_truth_groups(platform: Platform) -> Dict[str, Dict[str, object]]:
    """The recorded ground-truth grouping of a generated platform."""
    truth = getattr(platform, "ground_truth", None)
    if truth is None:
        raise ValueError("platform has no recorded ground truth")
    return truth
