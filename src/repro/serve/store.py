"""The indexed result store behind the serving layer.

The JSONL result store (:mod:`repro.sweep.results`) is append-only and
schema-light — perfect for sweeps, terrible for queries: answering
"the latest record of scenario X" used to mean parsing *every* line of the
file (:func:`~repro.sweep.results.load_jsonl` is O(store) per call).

:class:`ResultStore` keeps a sidecar index next to the store
(``results.jsonl`` → ``results.idx.json``) mapping each record's
``(scenario, family, scenario_hash, code_version, status)`` to its byte
offset and length, so filtered queries **seek** straight to the matching
records and parse only those.  The index is:

* **incremental** — it remembers how many store bytes it covers; new
  appends are indexed by scanning only the tail.  In-process appends are
  picked up immediately through the :func:`~repro.sweep.results.add_append_hook`
  mechanism, cross-process appends on the next refresh.
* **self-healing** — a missing, corrupt, stale or wrong-schema sidecar is
  rebuilt transparently from the store; a store that shrank or was replaced
  triggers a full rebuild.  The sidecar is advisory: deleting it costs one
  rebuild, never correctness.
* **crash-safe** — written via :func:`repro.ioutils.write_atomic`, so a
  killed process can leave a *stale* index but never a torn one.  Concurrent
  writers race benignly: last writer wins, and a lost update is repaired by
  the next tail scan.

Work accounting lives in :attr:`ResultStore.stats` (records parsed, bytes
read, tail scans, full rebuilds, queries served) so benchmarks can assert
that indexed queries really avoid full-file parses.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ioutils import write_atomic
from ..obs.logs import get_logger, kv
from ..obs.metrics import REGISTRY
from ..sweep.results import (
    SweepRecord,
    add_append_hook,
    append_jsonl,
    remove_append_hook,
)

__all__ = ["ResultStore", "IndexEntry", "index_path", "INDEX_SCHEMA"]

_LOG = get_logger("serve.store")

_FALLBACK_RECORDS = REGISTRY.counter(
    "repro_store_fallback_records_total",
    "result records held in memory because the disk refused them")
_SIDECAR_ERRORS = REGISTRY.counter(
    "repro_store_sidecar_write_errors_total",
    "sidecar index writes the disk refused (index kept in memory)")

INDEX_SCHEMA = 1

#: Tail-indexed records accumulated before the sidecar is re-persisted.
#: The sidecar write serialises *every* entry, so persisting per append
#: would cost O(store²) over a store's lifetime; the index is advisory
#: (anything unpersisted is re-derived by one tail scan), so batching
#: loses nothing but a little warm-start work.
PERSIST_EVERY = 64

#: Metadata columns carried per index entry, in on-disk order (after the
#: ``[offset, length]`` prefix).  Everything a filtered query needs without
#: touching the store file.
_FIELDS = ("scenario", "family", "scenario_hash", "code_version", "status")


def index_path(store_path: str) -> str:
    """The sidecar index path of a JSONL store (``results.jsonl`` →
    ``results.idx.json``)."""
    base = store_path[:-len(".jsonl")] if store_path.endswith(".jsonl") \
        else store_path
    return base + ".idx.json"


class IndexEntry:
    """One indexed record: byte span in the store plus its filter columns."""

    __slots__ = ("offset", "length") + _FIELDS

    def __init__(self, offset: int, length: int, scenario: str, family: str,
                 scenario_hash: str, code_version: str, status: str) -> None:
        self.offset = offset
        self.length = length
        self.scenario = scenario
        self.family = family
        self.scenario_hash = scenario_hash
        self.code_version = code_version
        self.status = status

    def to_row(self) -> List[object]:
        return [self.offset, self.length] + [getattr(self, f)
                                             for f in _FIELDS]

    @classmethod
    def from_row(cls, row: Sequence[object]) -> "IndexEntry":
        if (not isinstance(row, (list, tuple)) or len(row) != 2 + len(_FIELDS)
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           for v in row[:2])
                or not all(isinstance(v, str) for v in row[2:])):
            raise ValueError(f"malformed index row: {row!r}")
        return cls(*row)  # type: ignore[arg-type]

    def matches(self, filters: Dict[str, str]) -> bool:
        return all(getattr(self, key) == value
                   for key, value in filters.items())


def _matches(obj: Union[IndexEntry, SweepRecord],
             filters: Dict[str, str]) -> bool:
    """Filter check shared by index entries and in-memory fallback records
    (both carry the same attribute names)."""
    return all(getattr(obj, key) == value for key, value in filters.items())


class ResultStore:
    """Indexed, query-friendly view of one JSONL result store.

    Thread-safe: the serving layer refreshes/queries from the event loop
    while job threads append through the store hook.
    """

    def __init__(self, path: str, persist_index: bool = True) -> None:
        self.path = path
        self.index_file = index_path(path)
        self.persist_index = persist_index
        self._entries: List[IndexEntry] = []
        self._indexed_size = 0          # store bytes the index covers
        self._loaded_sidecar = False
        self._dirty = 0                 # entries indexed since last persist
        #: Records the disk refused (ENOSPC, torn appends): queries merge
        #: them in as the *newest* records so clients never lose a result
        #: to a full disk; :meth:`flush` retries landing them.
        self._fallback: List[SweepRecord] = []
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {
            "queries": 0,
            "records_parsed": 0,        # store lines json-parsed (any reason)
            "records_served": 0,        # records returned to callers
            "bytes_read": 0,            # store bytes read (scan + fetch)
            "tail_scans": 0,
            "full_rebuilds": 0,
            "index_writes": 0,
        }
        # Keep the index hot across in-process appends (serve jobs, sweeps
        # running inside the server process).
        self._hook = self._on_append
        add_append_hook(self._hook)

    def close(self) -> None:
        """Flush any unpersisted index state and detach the append-hook."""
        remove_append_hook(self._hook)
        self.flush()

    def flush(self) -> None:
        """Persist pending state: retry in-memory fallback records onto
        disk, then the sidecar if batched updates are pending."""
        with self._lock:
            fallback = list(self._fallback)
        if fallback:
            # Append outside the lock — append_jsonl fires _on_append,
            # which refreshes (and the disk may be slow to refuse again).
            try:
                append_jsonl(self.path, fallback)
            except OSError as exc:
                _LOG.warning("event=fallback_flush_failed %s",
                             kv(path=self.path, records=len(fallback),
                                error=str(exc)))
            else:
                with self._lock:
                    del self._fallback[:len(fallback)]
                _LOG.warning("event=fallback_flushed %s",
                             kv(path=self.path, records=len(fallback)))
        with self._lock:
            if self.persist_index and self._dirty:
                self._write_sidecar()

    # -- degraded mode -------------------------------------------------------

    def remember(self, records: Sequence[SweepRecord]) -> None:
        """Hold ``records`` in memory because the disk refused them.

        They are served from every query path as the newest records; a
        later :meth:`flush` (periodic, or the shutdown drain) retries
        appending them to the store file.  Degradation, never a 500.
        """
        if not records:
            return
        with self._lock:
            self._fallback.extend(records)
        _FALLBACK_RECORDS.inc(len(records))
        _LOG.warning("event=store_degraded %s",
                     kv(records=len(records),
                        held=self.fallback_count(),
                        scenarios=",".join(sorted({r.scenario
                                                   for r in records}))))

    def fallback_count(self) -> int:
        """Records currently held only in memory (gauge callback)."""
        with self._lock:
            return len(self._fallback)

    # -- index maintenance --------------------------------------------------

    def _on_append(self, path: str, records: Sequence[SweepRecord]) -> None:
        if os.path.abspath(path) != os.path.abspath(self.path):
            return
        # Offsets of the appended batch are unknown here (another process
        # may have interleaved its own batch); a tail scan from the indexed
        # watermark is cheap and always right.
        self.refresh()

    def _store_size(self) -> int:
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0

    def _load_sidecar(self) -> None:
        """Adopt the persisted index if it is valid for the current store."""
        self._loaded_sidecar = True
        try:
            with open(self.index_file, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if (not isinstance(data, dict)
                    or data.get("schema") != INDEX_SCHEMA
                    or not isinstance(data.get("store_size"), int)
                    or not isinstance(data.get("entries"), list)):
                raise ValueError("not a result-store index")
            entries = [IndexEntry.from_row(row) for row in data["entries"]]
            size = data["store_size"]
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            return                       # absent/corrupt: rebuild from store
        if size > self._store_size():
            return                       # store shrank/replaced: rebuild
        # Entries must lie inside the covered span, or the sidecar lies.
        if any(e.offset + e.length > size for e in entries):
            return
        self._entries = entries
        self._indexed_size = size

    def _scan(self, start: int) -> None:
        """Index every complete record line in ``path[start:]``.

        Corrupt/invalid lines are skipped (they stay invisible to queries,
        exactly as :func:`load_jsonl` skips them).  A partial trailing line
        (a torn concurrent append) is left un-indexed *and* uncovered, so
        the next refresh re-examines it once the writer finished.
        """
        size = self._store_size()
        if size <= start:
            if size < start:             # store shrank/replaced: start over
                self._entries = []
                self._indexed_size = 0
                if size:
                    self._scan(0)
                else:
                    self.stats["full_rebuilds"] += 1
            return
        self.stats["tail_scans" if start else "full_rebuilds"] += 1
        covered = start
        new_entries: List[IndexEntry] = []
        with open(self.path, "rb") as handle:
            handle.seek(start)
            blob = handle.read(size - start)
        self.stats["bytes_read"] += len(blob)
        offset = start
        for raw in blob.split(b"\n"):
            line_end = offset + len(raw) + 1
            if line_end > size + 1 or (line_end == size + 1
                                       and not blob.endswith(b"\n")):
                break                    # partial trailing line: not covered
            stripped = raw.strip()
            if stripped:
                entry = self._index_line(stripped, offset, len(raw) + 1)
                if entry is not None:
                    new_entries.append(entry)
            covered = min(line_end, size)
            offset = line_end
        self._entries.extend(new_entries)
        self._indexed_size = covered
        self._dirty += len(new_entries)
        # Full (re)builds persist immediately — they are rare and the whole
        # point of the sidecar; steady-state tail updates batch up.
        if self.persist_index and (start == 0 or
                                   self._dirty >= PERSIST_EVERY):
            self._write_sidecar()

    def _index_line(self, line: bytes, offset: int,
                    length: int) -> Optional[IndexEntry]:
        try:
            record = SweepRecord.from_json(line.decode("utf-8"))
        except (ValueError, TypeError, UnicodeDecodeError):
            return None
        finally:
            self.stats["records_parsed"] += 1
        return IndexEntry(offset, length, record.scenario, record.family,
                          record.scenario_hash, record.code_version,
                          record.status)

    def _write_sidecar(self) -> None:
        payload = json.dumps(
            {"schema": INDEX_SCHEMA, "store_size": self._indexed_size,
             "entries": [e.to_row() for e in self._entries]},
            separators=(",", ":")) + "\n"
        try:
            write_atomic(self.index_file, payload, suffix=".json")
        except OSError as exc:
            # The sidecar is advisory: keep serving from the in-memory
            # index, stay dirty so a later flush retries the write.
            _SIDECAR_ERRORS.inc()
            _LOG.warning("event=sidecar_write_error %s",
                         kv(path=self.index_file, error=str(exc)))
            return
        self._dirty = 0
        self.stats["index_writes"] += 1

    def refresh(self) -> None:
        """Bring the index up to date with the store file (cheap when it
        already is)."""
        with self._lock:
            if not self._loaded_sidecar:
                self._load_sidecar()
            size = self._store_size()
            if size != self._indexed_size:
                self._scan(self._indexed_size)

    def _rebuild(self) -> None:
        """Drop the index and reindex the whole store from scratch."""
        with self._lock:
            self._entries = []
            self._indexed_size = 0
            self._scan(0)

    def _recovering(self, fn):
        """Run a query, rebuilding once if its entries point at garbage.

        Size checks catch a *shrunken* replaced store; an out-of-band
        replacement with same-or-larger size can leave entries whose byte
        spans no longer frame whole records, which surfaces as a parse
        error in :meth:`_fetch`.  One full rebuild restores the invariant.
        """
        try:
            return fn()
        except (ValueError, UnicodeDecodeError):
            self._rebuild()
            return fn()

    # -- queries ------------------------------------------------------------

    @property
    def indexed_size(self) -> int:
        return self._indexed_size

    def state_token(self) -> str:
        """A token that changes whenever query results may change (cache
        key component for response caches)."""
        with self._lock:
            token = f"{self._indexed_size}-{len(self._entries)}"
            if self._fallback:
                token += f"-m{len(self._fallback)}"
            return token

    def count(self) -> int:
        self.refresh()
        with self._lock:
            return len(self._entries) + len(self._fallback)

    def _fetch(self, entries: Sequence[IndexEntry]) -> List[SweepRecord]:
        """Seek-and-parse exactly the given records."""
        records: List[SweepRecord] = []
        if not entries:
            return records
        with open(self.path, "rb") as handle:
            for entry in entries:
                handle.seek(entry.offset)
                blob = handle.read(entry.length)
                self.stats["bytes_read"] += len(blob)
                self.stats["records_parsed"] += 1
                records.append(SweepRecord.from_json(blob.decode("utf-8")))
        self.stats["records_served"] += len(records)
        return records

    @staticmethod
    def _filters(scenario: Optional[str] = None, family: Optional[str] = None,
                 scenario_hash: Optional[str] = None,
                 code_version: Optional[str] = None,
                 status: Optional[str] = None) -> Dict[str, str]:
        raw = {"scenario": scenario, "family": family,
               "scenario_hash": scenario_hash, "code_version": code_version,
               "status": status}
        return {key: value for key, value in raw.items() if value is not None}

    def query(self, scenario: Optional[str] = None,
              family: Optional[str] = None,
              scenario_hash: Optional[str] = None,
              code_version: Optional[str] = None,
              status: Optional[str] = None,
              offset: int = 0,
              limit: Optional[int] = None,
              newest_first: bool = False,
              ) -> Tuple[List[SweepRecord], int]:
        """Filtered, paginated records in append order (``newest_first``
        flips it, so page 0 holds the most recent appends — the shape a
        poller wants).

        Returns ``(records, total)`` where ``total`` counts every match
        before pagination.  Only the returned page is read from disk.
        """
        if offset < 0 or (limit is not None and limit < 0):
            raise ValueError("offset/limit must be non-negative")
        filters = self._filters(scenario, family, scenario_hash,
                                code_version, status)

        def run() -> Tuple[List[SweepRecord], int]:
            self.refresh()
            with self._lock:
                self.stats["queries"] += 1
                matches: List[Union[IndexEntry, SweepRecord]] = \
                    [e for e in self._entries if e.matches(filters)]
                # In-memory fallback records (disk refused them) are the
                # newest appends, so they go after the indexed entries.
                matches.extend(r for r in self._fallback
                               if _matches(r, filters))
                if newest_first:
                    matches.reverse()
                total = len(matches)
                page = matches[offset:
                               None if limit is None else offset + limit]
                fetched = iter(self._fetch(
                    [x for x in page if isinstance(x, IndexEntry)]))
                return [next(fetched) if isinstance(x, IndexEntry) else x
                        for x in page], total

        return self._recovering(run)

    def latest_entry(self, scenario: str,
                     status: Optional[str] = None) -> Optional[IndexEntry]:
        """Index metadata of the newest record of ``scenario`` — existence,
        hash and code version without reading the store body (conditional
        requests answer from this alone)."""
        self.refresh()
        with self._lock:
            self.stats["queries"] += 1
            for record in reversed(self._fallback):
                if record.scenario == scenario and \
                        (status is None or record.status == status):
                    # Synthetic entry (offset -1: not on disk) so ETag
                    # computation keeps working in degraded mode.
                    return IndexEntry(-1, 0, record.scenario, record.family,
                                      record.scenario_hash,
                                      record.code_version, record.status)
            for entry in reversed(self._entries):
                if entry.scenario == scenario and \
                        (status is None or entry.status == status):
                    return entry
        return None

    def latest(self, scenario: str,
               status: Optional[str] = None) -> Optional[SweepRecord]:
        """The most recently appended record of ``scenario`` (or ``None``)."""
        def run() -> Optional[SweepRecord]:
            self.refresh()
            with self._lock:
                self.stats["queries"] += 1
                for record in reversed(self._fallback):
                    if record.scenario == scenario and \
                            (status is None or record.status == status):
                        return record
                for entry in reversed(self._entries):
                    if entry.scenario == scenario and \
                            (status is None or entry.status == status):
                        return self._fetch([entry])[0]
            return None

        return self._recovering(run)

    def latest_per_scenario(self,
                            family: Optional[str] = None,
                            status: Optional[str] = None,
                            ) -> List[SweepRecord]:
        """The newest record of every scenario (optionally filtered),
        sorted by scenario name."""
        filters = self._filters(family=family, status=status)

        def run() -> List[SweepRecord]:
            self.refresh()
            with self._lock:
                self.stats["queries"] += 1
                newest: Dict[str, Union[IndexEntry, SweepRecord]] = {}
                for entry in self._entries:
                    if entry.matches(filters):
                        newest[entry.scenario] = entry
                for record in self._fallback:     # newest: they override
                    if _matches(record, filters):
                        newest[record.scenario] = record
                ordered = [newest[name] for name in sorted(newest)]
                fetched = iter(self._fetch(
                    [x for x in ordered if isinstance(x, IndexEntry)]))
                return [next(fetched) if isinstance(x, IndexEntry) else x
                        for x in ordered]

        return self._recovering(run)

    def scenarios_seen(self) -> List[str]:
        """Every scenario name with at least one stored record, sorted."""
        self.refresh()
        with self._lock:
            return sorted({e.scenario for e in self._entries}
                          | {r.scenario for r in self._fallback})
