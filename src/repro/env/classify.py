"""Shared / switched classification from the jammed-bandwidth ratios.

Paper §4.2.2.4: the jam experiment is repeated five times and the average of
the jammed/base bandwidth ratio decides the nature of the cluster's segment:
below 0.7 the hosts sit on a *shared* medium (hub/bus — concurrent transfers
steal bandwidth from each other), above 0.9 the segment is *switched*
(dedicated ports — no interference), and in between ENV stops investigating
because the measurements are not significant enough.
"""

from __future__ import annotations

from statistics import fmean
from typing import Sequence

from .envtree import KIND_SHARED, KIND_SWITCHED, KIND_UNKNOWN
from .thresholds import ENVThresholds

__all__ = ["classify_from_ratios", "classify_ratio"]


def classify_ratio(avg_ratio: float, thresholds: ENVThresholds) -> str:
    """Classification of a cluster from its average jammed/base ratio."""
    if avg_ratio < thresholds.shared_threshold:
        return KIND_SHARED
    if avg_ratio > thresholds.switched_threshold:
        return KIND_SWITCHED
    return KIND_UNKNOWN


def classify_from_ratios(ratios: Sequence[float], thresholds: ENVThresholds) -> str:
    """Classification from the individual repetition ratios (empty ⇒ unknown)."""
    cleaned = [r for r in ratios if r == r]  # drop NaNs defensively
    if not cleaned:
        return KIND_UNKNOWN
    return classify_ratio(fmean(cleaned), thresholds)
