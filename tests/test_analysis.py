"""Tests of the analysis helpers: cost model, scoring, reports, frequency."""

import pytest

from repro.analysis import (
    compare_costs,
    env_mapping_seconds,
    frequency_vs_clique_size,
    measurement_intervals,
    naive_mapping_experiments,
    naive_mapping_seconds,
    render_env_tree,
    render_plan,
    render_structural_tree,
    render_table,
    score_view,
)
from repro.core import plan_from_view
from repro.env import AnalyticProbeDriver, ProbeStats, build_structural_tree
from repro.netsim import PUBLIC_HOSTS, expected_effective_groups
from repro.nws import NWSConfig, NWSSystem


class TestCostModel:
    def test_paper_headline_number(self):
        """§4.3: exhaustive mapping of 20 hosts ≈ 50 days at 30 s per test."""
        days = naive_mapping_seconds(20) / 86_400.0
        assert days == pytest.approx(50.0, rel=0.01)

    def test_experiment_count_formula(self):
        # 20 hosts -> 380 links -> 380 + 380*379 experiments
        assert naive_mapping_experiments(20) == 380 + 380 * 379
        assert naive_mapping_experiments(1) == 0

    def test_env_cost_far_below_naive(self, merged_view):
        comparison = compare_costs(14, merged_view.stats)
        assert comparison.env_days < comparison.naive_days / 100
        assert comparison.speedup > 100
        row = comparison.as_row()
        assert row["hosts"] == 14

    def test_env_mapping_seconds_scales_with_measurements(self):
        stats = ProbeStats(measurements=10)
        assert env_mapping_seconds(stats, seconds_per_experiment=30) == 300


class TestScoring:
    def test_perfect_view_scores_one(self, merged_view):
        score = score_view(merged_view, expected_effective_groups(),
                           ignore_hosts={"the-doors"})
        assert score.mean_jaccard == pytest.approx(1.0)
        assert score.kind_accuracy == pytest.approx(1.0)
        assert score.perfect

    def test_missing_group_scores_zero(self, merged_view):
        truth = dict(expected_effective_groups())
        truth["ghost"] = {"hosts": {"nonexistent1", "nonexistent2"},
                          "kind": "shared"}
        score = score_view(merged_view, truth, ignore_hosts={"the-doors"})
        assert not score.perfect
        ghost = next(g for g in score.groups if g.name == "ghost")
        assert ghost.jaccard == 0.0

    def test_as_row_shape(self, merged_view):
        row = score_view(merged_view, expected_effective_groups()).as_row()
        assert set(row) == {"groups", "mean_jaccard", "kind_accuracy", "perfect"}


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_empty(self):
        assert render_table([]) == "(no data)"

    def test_render_env_tree_contains_hosts(self, merged_view):
        text = render_env_tree(merged_view.root)
        assert "sci1" in text and "[shared]" in text and "[switched]" in text

    def test_render_structural_tree(self, ens_lyon):
        driver = AnalyticProbeDriver(ens_lyon)
        tree = build_structural_tree(driver, PUBLIC_HOSTS, master="the-doors")
        text = render_structural_tree(tree)
        assert "192.168.254.1" in text and "- canaria" in text

    def test_render_plan(self, ens_plan):
        text = render_plan(ens_plan)
        assert "cliques" in text and "canaria" in text


class TestFrequencyAnalysis:
    @pytest.fixture(scope="class")
    def short_run(self, ens_lyon, merged_view):
        plan = plan_from_view(merged_view, period_s=10.0)
        system = NWSSystem(ens_lyon, plan, config=NWSConfig(token_hold_gap_s=1.0))
        system.run(150.0)
        return system

    def test_intervals_collected_per_pair(self, short_run):
        intervals = measurement_intervals(short_run)
        assert intervals
        assert all(p.samples >= 1 for p in intervals)

    def test_larger_cliques_measure_less_often(self, short_run):
        rows = frequency_vs_clique_size(short_run)
        by_size = {row["size"]: row for row in rows}
        small = min(by_size)
        large = max(by_size)
        assert large > small
        assert float(by_size[large]["mean_interval_s"]) > \
            float(by_size[small]["mean_interval_s"])
