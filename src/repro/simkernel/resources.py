"""Shared resources for simulation processes.

Two primitives are provided:

* :class:`Resource` — a counted resource with a FIFO wait queue (used e.g. to
  serialise access to a host's measurement socket).
* :class:`Store` — an unbounded FIFO message store supporting blocking ``get``
  (used as the mailbox of simulated NWS daemons and for token passing).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

__all__ = ["Resource", "Request", "Store"]


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    Fires once the resource slot is granted.  Must be released with
    :meth:`Resource.release` (or used via the ``with``-like yield pattern in
    process code).
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """A resource with ``capacity`` slots and FIFO granting."""

    def __init__(self, engine: "Engine", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently granted."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Give back a previously granted slot and wake the next waiter."""
        if request not in self.users:
            # Releasing a never-granted or already-released request is benign:
            # drop it from the wait queue if it is still there.
            if request in self.queue:
                self.queue.remove(request)
            return
        self.users.remove(request)
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt)


class Store:
    """An unbounded FIFO store of Python objects with blocking ``get``."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest pending getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        ev = Event(self.engine)
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: return an item or ``None`` if the store is empty."""
        if self.items:
            return self.items.popleft()
        return None
