"""Metrics: counters, gauges and fixed-bucket histograms, Prometheus-ready.

:class:`MetricsRegistry` generalises the flat :mod:`repro.perf` counters
into the three metric kinds a scrape-based monitoring stack expects:

* **counters** — monotonically increasing totals, either stored
  (:meth:`Metric.inc`) or *callback-backed* (a zero-argument function read
  at scrape time — how the existing perf counters are exported without
  double bookkeeping);
* **gauges** — point-in-time values (job queue depth, store bytes),
  stored or callback-backed;
* **histograms** — fixed cumulative buckets plus sum/count, for latency
  and duration distributions (HTTP request latency per route, pipeline
  stage durations, job queue wait).

Metrics may declare label names; :meth:`Metric.labels` resolves one
labelled series (created on first use).  The registry renders both a
JSON snapshot (the ``/metrics`` document) and the Prometheus text
exposition format (``/metrics?format=prometheus``).

Registration is get-or-create: re-registering a name returns the existing
metric (re-binding the callback if a new one is given), so modules and
short-lived app instances can declare their metrics idempotently against
the process-wide :data:`REGISTRY`.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import perf

__all__ = ["Metric", "MetricsRegistry", "REGISTRY", "DEFAULT_BUCKETS",
           "register_perf_counters"]

#: Default histogram buckets (seconds) — Prometheus' classic latency
#: ladder, covering sub-millisecond cache hits to multi-second pipelines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0)

KINDS = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _Series:
    """One labelled series of a metric (the unlabelled one included)."""

    __slots__ = ("labels", "value", "fn", "bucket_counts", "sum", "count")

    def __init__(self, labels: Tuple[str, ...], n_buckets: int) -> None:
        self.labels = labels
        self.value = 0.0
        self.fn: Optional[Callable[[], float]] = None
        self.bucket_counts = [0] * (n_buckets + 1)   # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Metric:
    """One named metric; series-level operations live here."""

    def __init__(self, registry: "MetricsRegistry", name: str, kind: str,
                 help: str, label_names: Tuple[str, ...],
                 buckets: Tuple[float, ...]) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.buckets = buckets
        self._series: Dict[Tuple[str, ...], _Series] = {}
        self._labelled = bool(label_names)

    # -- series resolution ---------------------------------------------------

    def labels(self, **labels: str) -> "_BoundSeries":
        """The series for one label-value combination (created on demand)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(f"metric {self.name!r} takes labels "
                             f"{self.label_names}, got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        return _BoundSeries(self, self._resolve(key))

    def _resolve(self, key: Tuple[str, ...]) -> _Series:
        with self.registry._lock:
            series = self._series.get(key)
            if series is None:
                series = _Series(key, len(self.buckets))
                self._series[key] = series
            return series

    def _default_series(self) -> _Series:
        if self._labelled:
            raise ValueError(f"metric {self.name!r} is labelled; "
                             f"use .labels(...)")
        return self._resolve(())

    # -- unlabelled conveniences ---------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        _BoundSeries(self, self._default_series()).inc(amount)

    def set(self, value: float) -> None:
        _BoundSeries(self, self._default_series()).set(value)

    def observe(self, value: float) -> None:
        _BoundSeries(self, self._default_series()).observe(value)

    def set_callback(self, fn: Callable[[], float]) -> None:
        _BoundSeries(self, self._default_series()).set_callback(fn)


class _BoundSeries:
    """A metric bound to one series — the object call sites hold on to."""

    __slots__ = ("metric", "series")

    def __init__(self, metric: Metric, series: _Series) -> None:
        self.metric = metric
        self.series = series

    def inc(self, amount: float = 1.0) -> None:
        if self.metric.kind not in ("counter", "gauge"):
            raise ValueError(f"cannot inc() a {self.metric.kind}")
        if self.metric.kind == "counter" and amount < 0:
            raise ValueError("counters only go up")
        with self.metric.registry._lock:
            self.series.value += amount

    def set(self, value: float) -> None:
        if self.metric.kind != "gauge":
            raise ValueError(f"cannot set() a {self.metric.kind}")
        with self.metric.registry._lock:
            self.series.value = float(value)

    def set_callback(self, fn: Callable[[], float]) -> None:
        if self.metric.kind == "histogram":
            raise ValueError("histograms cannot be callback-backed")
        with self.metric.registry._lock:
            self.series.fn = fn

    def observe(self, value: float) -> None:
        if self.metric.kind != "histogram":
            raise ValueError(f"cannot observe() a {self.metric.kind}")
        buckets = self.metric.buckets
        index = len(buckets)
        for i, bound in enumerate(buckets):
            if value <= bound:
                index = i
                break
        with self.metric.registry._lock:
            self.series.bucket_counts[index] += 1
            self.series.sum += value
            self.series.count += 1


class MetricsRegistry:
    """A process-wide collection of metrics with two render targets."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- registration (get-or-create) ----------------------------------------

    def _register(self, name: str, kind: str, help: str,
                  labels: Sequence[str],
                  buckets: Sequence[float],
                  fn: Optional[Callable[[], float]]) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {kind}")
            else:
                metric = Metric(self, name, kind, help, tuple(labels),
                                tuple(buckets))
                self._metrics[name] = metric
        if fn is not None:
            metric.set_callback(fn)
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = (),
                fn: Optional[Callable[[], float]] = None) -> Metric:
        return self._register(name, "counter", help, labels, (), fn)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = (),
              fn: Optional[Callable[[], float]] = None) -> Metric:
        return self._register(name, "gauge", help, labels, (), fn)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Metric:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        return self._register(name, "histogram", help, labels, bounds, None)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def reset(self) -> None:
        """Drop every metric (re-exporting the perf counters) — test hook."""
        with self._lock:
            self._metrics.clear()
        register_perf_counters(self)

    def zero(self) -> None:
        """Zero every series in place, keeping registrations and callbacks.

        Unlike :meth:`reset`, handles held by call sites (module-level
        counters, bound series) stay live — test hook for isolating
        accumulated values without re-registering instruments.
        """
        with self._lock:
            for metric in self._metrics.values():
                for series in metric._series.values():
                    series.value = 0.0
                    series.bucket_counts = [0] * len(series.bucket_counts)
                    series.sum = 0.0
                    series.count = 0

    def value(self, name: str, **labels: str) -> Optional[float]:
        """The current value of one counter/gauge series, or ``None``.

        Resolves *existing* series only — asking for a series that was
        never touched returns ``None`` instead of materialising it (tests
        and health endpoints probe freely without polluting ``/metrics``).
        Callback-backed series are evaluated.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None or metric.kind == "histogram":
                return None
            key = tuple(str(labels.get(n, "")) for n in metric.label_names)
            series = metric._series.get(key)
            if series is None:
                return None
            fn, stored = series.fn, series.value
        if fn is not None:
            try:
                return float(fn())
            except Exception:   # noqa: BLE001 — mirror _collect's tolerance
                return None
        return stored

    # -- scraping ------------------------------------------------------------

    def _collect(self) -> List[Tuple[Metric, List[Tuple[Tuple[str, ...],
                                                        Dict[str, object]]]]]:
        """A consistent snapshot: (metric, [(label values, data)...])."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            shells = [(m, list(m._series.items())) for m in metrics]
        collected = []
        for metric, series_items in shells:
            rows = []
            for key, series in series_items:
                if metric.kind == "histogram":
                    with self._lock:
                        data: Dict[str, object] = {
                            "buckets": list(series.bucket_counts),
                            "sum": series.sum,
                            "count": series.count,
                        }
                else:
                    # Callbacks run outside the lock: they may consult other
                    # locked subsystems (store index, job queue).
                    fn = series.fn
                    if fn is not None:
                        try:
                            value = float(fn())
                        except Exception:   # noqa: BLE001 — one broken
                            # callback must not take the whole scrape down.
                            value = float("nan")
                    else:
                        with self._lock:
                            value = series.value
                    data = {"value": value}
                rows.append((key, data))
            collected.append((metric, rows))
        return collected

    def snapshot(self) -> Dict[str, object]:
        """The registry as a JSON-serialisable document."""
        out: Dict[str, object] = {}
        for metric, rows in self._collect():
            series_docs = []
            for key, data in rows:
                doc: Dict[str, object] = {
                    "labels": dict(zip(metric.label_names, key)),
                }
                if metric.kind == "histogram":
                    counts = data["buckets"]
                    cumulative: Dict[str, int] = {}
                    running = 0
                    for bound, count in zip(metric.buckets, counts):
                        running += count
                        cumulative[_format_value(bound)] = running
                    cumulative["+Inf"] = running + counts[-1]
                    doc.update(count=data["count"], sum=data["sum"],
                               buckets=cumulative)
                else:
                    value = data["value"]
                    doc["value"] = None if value != value else value
                series_docs.append(doc)
            out[metric.name] = {"type": metric.kind, "help": metric.help,
                                "series": series_docs}
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric, rows in self._collect():
            if metric.help:
                lines.append(f"# HELP {metric.name} "
                             f"{_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, data in rows:
                base_labels = [f'{name}="{_escape_label(value)}"'
                               for name, value in
                               zip(metric.label_names, key)]
                if metric.kind == "histogram":
                    running = 0
                    counts = data["buckets"]
                    for bound, count in zip(
                            tuple(metric.buckets) + (math.inf,), counts):
                        running += count
                        labels = base_labels + \
                            [f'le="{_format_value(bound)}"']
                        lines.append(f"{metric.name}_bucket"
                                     f"{{{','.join(labels)}}} {running}")
                    suffix = f"{{{','.join(base_labels)}}}" \
                        if base_labels else ""
                    lines.append(f"{metric.name}_sum{suffix} "
                                 f"{_format_value(data['sum'])}")
                    lines.append(f"{metric.name}_count{suffix} {running}")
                else:
                    suffix = f"{{{','.join(base_labels)}}}" \
                        if base_labels else ""
                    value = data["value"]
                    rendered = "NaN" if value != value \
                        else _format_value(value)
                    lines.append(f"{metric.name}{suffix} {rendered}")
        return "\n".join(lines) + "\n"


def register_perf_counters(registry: MetricsRegistry) -> None:
    """Export the :mod:`repro.perf` hot-path counters as callback counters."""
    for name in perf.PerfCounters.__slots__:
        registry.counter(
            f"repro_perf_{name}_total",
            f"repro.perf hot-path counter: {name}",
            fn=(lambda n=name: getattr(perf.COUNTERS, n)))


#: The process-wide registry every layer records into.  The perf counters
#: are exported from the start; other subsystems register their metrics at
#: import / construction time.
REGISTRY = MetricsRegistry()
register_perf_counters(REGISTRY)
