"""ABL-THRESH — sensitivity of the mapping to ENV's empirical thresholds (§4.2.2/§4.3).

The paper warns that the thresholds (split ratio 3, pairwise 1.25, jam
classification 0.7/0.9) were chosen empirically and "may be problematic"
on other platforms.  The ablation sweeps each threshold on the ENS-Lyon
mapping and reports when the recovered grouping degrades.
"""

from repro.analysis import render_table, score_view
from repro.env import DEFAULT_THRESHOLDS, map_ens_lyon
from repro.netsim import expected_effective_groups


def _score(ens_lyon, thresholds):
    view = map_ens_lyon(ens_lyon, thresholds=thresholds)
    return score_view(view, expected_effective_groups(),
                      ignore_hosts={"the-doors"})


def test_bench_threshold_ablation(benchmark, ens_lyon):
    sweeps = []
    for split_ratio in (1.5, 3.0, 8.0, 15.0):
        sweeps.append(("split_ratio", split_ratio,
                       DEFAULT_THRESHOLDS.with_overrides(split_ratio=split_ratio)))
    for pairwise in (1.05, 1.25, 1.6, 2.5):
        sweeps.append(("pairwise_ratio", pairwise,
                       DEFAULT_THRESHOLDS.with_overrides(
                           pairwise_independence_ratio=pairwise)))
    for shared, switched in ((0.55, 0.95), (0.7, 0.9), (0.85, 0.88), (0.3, 0.4)):
        sweeps.append(("jam_bands", f"{shared}/{switched}",
                       DEFAULT_THRESHOLDS.with_overrides(
                           shared_threshold=shared, switched_threshold=switched)))

    def run_sweep():
        return [(name, value, _score(ens_lyon, thresholds))
                for name, value, thresholds in sweeps]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [{
        "threshold": name,
        "value": value,
        "mean_jaccard": round(score.mean_jaccard, 3),
        "kind_accuracy": round(score.kind_accuracy, 3),
        "perfect": score.perfect,
    } for name, value, score in results]
    print("\n[ABL-THRESH] mapping quality while sweeping the ENV thresholds")
    print(render_table(rows))

    by_key = {(name, value): score for name, value, score in results}
    # the published values recover the figure exactly
    assert by_key[("split_ratio", 3.0)].perfect
    assert by_key[("pairwise_ratio", 1.25)].perfect
    assert by_key[("jam_bands", "0.7/0.9")].perfect
    # the grouping itself (which hosts go together) is robust to the jam
    # bands — only the shared/switched labelling degrades when the band is
    # pushed below the 0.5 contention signature
    degraded = by_key[("jam_bands", "0.3/0.4")]
    assert degraded.mean_jaccard >= 0.99
    assert degraded.kind_accuracy < 1.0
