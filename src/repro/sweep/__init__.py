"""Batch sweep engine: run the pipeline over many scenarios, in parallel."""

from .results import (
    SweepRecord,
    append_jsonl,
    load_jsonl,
    records_json,
    summary_rows,
)
from .runner import (
    DEFAULT_BASELINES,
    DEFAULT_CACHE_DIR,
    SweepResult,
    cache_path,
    code_version,
    run_scenario,
    run_sweep,
)

__all__ = [
    "SweepRecord", "append_jsonl", "load_jsonl", "summary_rows",
    "records_json",
    "SweepResult", "run_sweep", "run_scenario",
    "cache_path", "code_version",
    "DEFAULT_CACHE_DIR", "DEFAULT_BASELINES",
]
