"""Tests of the sampling profiler: backends, nesting, shipping, teardown.

The edge cases a sampling profiler lives or dies by: arming off the main
thread (SIGPROF refused → thread fallback, never a crash), nested
``profiled()`` scopes (the inner disarm must not stop the outer scope's
sampling), and pool-worker teardown (a worker that exits mid-profile must
not hang or kill the process).
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.obs.profile import (
    DEFAULT_HZ,
    MAX_HZ,
    MIN_HZ,
    PROFILER,
    Profiler,
    collapse,
)


@pytest.fixture(autouse=True)
def _profiler_isolation():
    """Every test starts and ends with the global profiler clean."""
    PROFILER.reset()
    yield
    while PROFILER.armed:
        PROFILER.disarm()
    PROFILER.reset()


def _busy(seconds: float) -> int:
    """Burn CPU (not wall) time — ITIMER_PROF only ticks on CPU."""
    deadline = time.process_time() + seconds
    acc = 0
    while time.process_time() < deadline:
        acc += sum(range(500))
    return acc


# ---------------------------------------------------------------------------
# collapse format


class TestCollapse:
    def test_collapsed_lines_heaviest_first(self):
        text = collapse({"a;b;c": 3, "a;b": 10, "a;z": 3})
        assert text.splitlines() == ["a;b 10", "a;b;c 3", "a;z 3"]

    def test_empty_profile_collapses_to_nothing(self):
        assert collapse({}) == ""


# ---------------------------------------------------------------------------
# signal backend (main thread)


class TestSignalBackend:
    def test_profiled_busy_loop_catches_the_hot_frame(self):
        profiler = Profiler()
        with profiler.profiled(hz=1000) as capture:
            _busy(0.2)
        assert capture.samples > 10
        assert any("_busy" in frame
                   for stack in capture.stacks for frame in stack)
        assert not profiler.armed
        # The scope's samples also reached the process-wide aggregate.
        assert profiler.samples() == capture.samples

    def test_hz_is_clamped_into_the_sane_band(self):
        profiler = Profiler()
        profiler.configure(hz=10 ** 9)
        assert profiler.hz == MAX_HZ
        profiler.configure(hz=0)
        assert profiler.hz == DEFAULT_HZ      # 0 = "default", not "min"
        profiler.configure(hz=-5)
        assert profiler.hz == MIN_HZ

    def test_disarm_restores_the_previous_sigprof_handler(self):
        import signal as signal_module

        before = signal_module.getsignal(signal_module.SIGPROF)
        profiler = Profiler()
        with profiler.profiled(hz=100):
            assert signal_module.getsignal(
                signal_module.SIGPROF) == profiler._on_sigprof
        assert signal_module.getsignal(signal_module.SIGPROF) == before


# ---------------------------------------------------------------------------
# thread backend + off-main-thread arming


class TestThreadBackend:
    def test_forced_thread_mode_samples_wall_time(self):
        profiler = Profiler()
        with profiler.profiled(hz=200, mode="thread") as capture:
            assert profiler.mode == "thread"
            _busy(0.15)
        assert capture.samples > 5
        assert any("_busy" in frame
                   for stack in capture.stacks for frame in stack)

    def test_arming_off_the_main_thread_falls_back_not_crashes(self):
        """POSIX refuses setitimer off the main thread; the profiler must
        take the thread backend instead of raising."""
        profiler = Profiler()
        result = {}

        def work():
            with profiler.profiled(hz=500) as capture:
                result["mode"] = profiler.mode
                _busy(0.15)
            result["samples"] = capture.samples

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result["mode"] == "thread"
        assert result["samples"] > 0
        assert not profiler.armed

    def test_sampler_survives_its_target_thread_exiting(self):
        """The sampled thread vanishing (worker teardown) is not an error:
        the sampler keeps polling until disarmed."""
        profiler = Profiler()

        def arm_and_exit():
            # Arm without disarming — the thread dies mid-profile.
            profiler.arm(hz=500, mode="thread")
            _busy(0.05)

        thread = threading.Thread(target=arm_and_exit)
        thread.start()
        thread.join(timeout=30)
        assert profiler.armed
        time.sleep(0.05)                     # sampler polls a dead thread id
        assert profiler.sample_errors == 0
        profiler.disarm()                    # cleans up without hanging
        assert not profiler.armed
        assert profiler._sampler is None


# ---------------------------------------------------------------------------
# nesting


class TestNesting:
    def test_inner_scope_exit_keeps_outer_sampling(self):
        profiler = Profiler()
        with profiler.profiled(hz=1000) as outer:
            with profiler.profiled(hz=1) as inner:   # hz ignored: nested
                _busy(0.1)
            assert profiler.armed, "inner exit disarmed the outer scope"
            _busy(0.1)
        assert not profiler.armed
        # The outer capture saw both halves, the inner only its own.
        assert outer.samples > inner.samples > 0

    def test_nested_arm_ignores_mode_and_hz_preferences(self):
        profiler = Profiler()
        assert profiler.arm(hz=500) == "signal"
        try:
            assert profiler.arm(hz=1, mode="thread") == "signal"
            assert profiler.hz == 500
        finally:
            profiler.disarm()
            assert profiler.armed             # one arm still outstanding
            profiler.disarm()
        assert not profiler.armed


# ---------------------------------------------------------------------------
# maybe() and payload shipping


class TestMaybeAndShipping:
    def test_maybe_disabled_returns_the_shared_null_scope(self):
        one = PROFILER.maybe(False)
        two = PROFILER.maybe(False)
        assert one is two                     # no per-call allocation
        with one as capture:
            pass
        assert capture.samples == 0
        assert capture.as_payload() is None
        assert capture.collapsed() == ""
        assert not PROFILER.armed

    def test_payload_roundtrip_through_ingest(self):
        profiler = Profiler()
        with profiler.profiled(hz=1000) as capture:
            _busy(0.1)
        payload = capture.as_payload()
        assert payload["samples"] == capture.samples > 0

        home = Profiler()
        assert home.ingest(payload) == capture.samples
        assert home.samples() == capture.samples
        assert home.stacks() == {";".join(s): n
                                 for s, n in capture.stacks.items()}

    def test_ingest_rejects_malformed_payloads(self):
        profiler = Profiler()
        assert profiler.ingest(None) == 0
        assert profiler.ingest({}) == 0
        assert profiler.ingest({"stacks": "nope"}) == 0
        assert profiler.ingest({"stacks": {"a;b": -3, 7: 1,
                                           "c": "many"}}) == 0
        assert profiler.samples() == 0

    def test_state_token_tracks_samples_and_ingests(self):
        profiler = Profiler()
        token = profiler.state_token()
        assert profiler.ingest({"stacks": {"a;b": 2}, "samples": 2}) == 2
        assert profiler.state_token() != token
        token = profiler.state_token()
        profiler.reset()
        assert profiler.state_token() != token
        assert profiler.samples() == 0


# ---------------------------------------------------------------------------
# pool-worker teardown


def _pool_task_arms_without_disarm(seconds):
    """A worker that starts profiling and never cleans up."""
    from repro.obs.profile import PROFILER as worker_profiler

    worker_profiler.arm(hz=500)
    _busy(seconds)
    return worker_profiler.samples()


class TestPoolTeardown:
    def test_worker_torn_down_mid_profile_does_not_hang(self):
        """A pool worker dying with its profiler still armed must not hang
        the pool's teardown or poison the parent."""
        with multiprocessing.Pool(processes=1) as pool:
            samples = pool.apply(_pool_task_arms_without_disarm, (0.1,))
            assert samples > 0
            pool.terminate()
        # The parent's profiler was never involved.
        assert not PROFILER.armed
        assert PROFILER.samples() == 0
