"""The built-in scenario catalog.

Importing this module populates the registry with the evaluation platforms
the sweep runs over: the paper's ENS-Lyon LAN, the seeded synthetic
constellations, and the scenario-suite families (WAN grids, firewalled
campuses, fat-tree/star/ring LANs, degraded links).

Registration is **idempotent**: :func:`load_catalog` may be called any number
of times (e.g. after a test used ``clear_registry()``) and always results in
the same registrations, independent of call order.

Scenarios tagged ``smoke`` form a small fast subset exercised by
``make verify``; keep them cheap (≲ a dozen hosts each).

To add a scenario: pick (or write) a generator in
:mod:`repro.netsim.generators`, then register an instance inside
:func:`load_catalog` with
:func:`~repro.scenarios.registry.register_scenario` — the keyword arguments
of the decorator are the scenario's parameters, hashed into its identity and
passed verbatim to the builder.
"""

from __future__ import annotations

from ..netsim import (
    CampusSpec,
    DegradedSpec,
    FatTreeSpec,
    RingSpec,
    StarSpec,
    SyntheticSpec,
    WanGridSpec,
    build_ens_lyon,
    generate_campus,
    generate_constellation,
    generate_degraded,
    generate_fat_tree,
    generate_ring,
    generate_star,
    generate_wan_grid,
)
from .registry import register_scenario

__all__ = ["load_catalog"]


# Builders live at module level so scenarios stay picklable by reference
# (the sweep pool ships Scenario objects to spawn/fork workers).

# --- the paper's case study --------------------------------------------------
def _ens_lyon():
    return build_ens_lyon()


# --- seeded synthetic constellations (pre-existing generator) ----------------
def _synthetic(sites, seed):
    return generate_constellation(SyntheticSpec(
        sites=sites, seed=seed, hosts_per_cluster=(3, 4)))


def _synthetic_firewalled(sites, seed, firewall_probability):
    return generate_constellation(SyntheticSpec(
        sites=sites, seed=seed, firewall_probability=firewall_probability,
        hosts_per_cluster=(3, 3)))


# --- multi-site WAN grids ----------------------------------------------------
def _wan_grid(rows, cols, seed):
    return generate_wan_grid(WanGridSpec(rows=rows, cols=cols, seed=seed))


# --- campus topologies -------------------------------------------------------
def _campus(departments, firewalled, seed):
    return generate_campus(CampusSpec(
        departments=departments, firewalled_departments=firewalled, seed=seed))


# --- fat-tree LANs -----------------------------------------------------------
def _fat_tree(pods, edges_per_pod, hosts_per_edge):
    return generate_fat_tree(FatTreeSpec(
        pods=pods, edges_per_pod=edges_per_pod,
        hosts_per_edge=hosts_per_edge))


# --- star LANs ---------------------------------------------------------------
def _star(hosts, kind):
    return generate_star(StarSpec(hosts=hosts, kind=kind))


# --- WAN rings ---------------------------------------------------------------
def _ring(sites, seed):
    return generate_ring(RingSpec(sites=sites, seed=seed))


# --- degraded platforms ------------------------------------------------------
def _degraded(hosts_per_cluster):
    return generate_degraded(DegradedSpec(hosts_per_cluster=hosts_per_cluster))


def load_catalog() -> None:
    """(Re-)register every built-in scenario.  Idempotent."""
    register_scenario(
        "ens-lyon", family="paper",
        description="The ENS-Lyon LAN of Figure 1(a), mapped from the-doors",
    )(_ens_lyon)

    register_scenario(
        "synthetic-2site", family="synthetic",
        description="Two-site constellation, mixed hub/switch clusters",
        sites=2, seed=3)(_synthetic)
    register_scenario(
        "synthetic-3site", family="synthetic",
        description="Three-site constellation, mixed hub/switch clusters",
        sites=3, seed=7)(_synthetic)
    register_scenario(
        "synthetic-firewalled", family="synthetic",
        description="Two-site constellation with every cluster firewalled",
        sites=2, seed=9, firewall_probability=1.0)(_synthetic_firewalled)

    register_scenario(
        "wan-grid-2x2", family="wan-grid",
        description="2×2 site grid, heterogeneous backbone links",
        rows=2, cols=2, seed=11)(_wan_grid)
    register_scenario(
        "wan-grid-3x2", family="wan-grid",
        description="3×2 site grid, heterogeneous backbone links",
        rows=3, cols=2, seed=23)(_wan_grid)

    register_scenario(
        "campus-open", family="campus", tags=("smoke",),
        description="Three open departments behind one core router",
        departments=3, firewalled=0, seed=5)(_campus)
    register_scenario(
        "campus-natted", family="campus",
        description="Four departments, two behind NAT-style firewalls",
        departments=4, firewalled=2, seed=17)(_campus)

    register_scenario(
        "fat-tree-2x2", family="fat-tree", tags=("smoke",),
        description="Two pods of two edge switches, three hosts each",
        pods=2, edges_per_pod=2, hosts_per_edge=3)(_fat_tree)
    register_scenario(
        "fat-tree-3x2", family="fat-tree",
        description="Three pods of two edge switches, three hosts each",
        pods=3, edges_per_pod=2, hosts_per_edge=3)(_fat_tree)

    register_scenario(
        "star-hub-8", family="star", tags=("smoke",),
        description="Eight hosts sharing one hub segment",
        hosts=8, kind="hub")(_star)
    register_scenario(
        "star-switch-12", family="star",
        description="Twelve hosts on one switch",
        hosts=12, kind="switch")(_star)

    register_scenario(
        "ring-4", family="ring",
        description="Four sites on a WAN ring, heterogeneous ring links",
        sites=4, seed=13)(_ring)
    register_scenario(
        "ring-6", family="ring",
        description="Six sites on a WAN ring, heterogeneous ring links",
        sites=6, seed=29)(_ring)

    register_scenario(
        "degraded-asym", family="degraded", tags=("smoke",),
        description="Asymmetric inter-site routes plus a lossy mis-VLANed hub",
        hosts_per_cluster=3)(_degraded)


load_catalog()
