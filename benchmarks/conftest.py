"""Shared fixtures and the perf-trajectory hook for the benchmark suite.

Each benchmark regenerates one artifact of the paper's evaluation (see
DESIGN.md, "Experiment index") and prints the reproduced rows/series so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.

Every benchmark run additionally records a machine-readable perf trajectory:
per-benchmark wall time plus the hot-path work counters of
:mod:`repro.perf` (simulation events dispatched, max-min allocations solved,
probe-memo hits).  On session exit the records are written to
``BENCH_results.json`` (path override: ``BENCH_RESULTS_PATH``); ``make
bench`` is the entry point, and ``benchmarks/check_bench_regression.py``
gates CI on the tracked end-to-end benchmark.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import perf
from repro.core import plan_from_view
from repro.env import map_ens_lyon
from repro.netsim import build_ens_lyon
from repro.sweep import code_version

_RESULTS = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record wall time and work counters around every benchmark test."""
    before = perf.counters_snapshot()
    start = time.perf_counter()
    yield
    wall_s = time.perf_counter() - start
    after = perf.counters_snapshot()
    _RESULTS.append({
        "benchmark": item.nodeid,
        "wall_s": round(wall_s, 6),
        "counters": {key: after[key] - before[key] for key in after},
    })


def pytest_sessionfinish(session, exitstatus):
    """Write the perf trajectory once all benchmarks have run."""
    if not _RESULTS:
        return
    path = os.environ.get("BENCH_RESULTS_PATH", "BENCH_results.json")
    payload = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "code_version": code_version(),
        "results": sorted(_RESULTS, key=lambda r: r["benchmark"]),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def ens_lyon():
    """The ENS-Lyon platform of Figure 1(a)."""
    return build_ens_lyon()


@pytest.fixture(scope="session")
def merged_view(ens_lyon):
    """The merged effective view of Figure 1(b)."""
    return map_ens_lyon(ens_lyon)


@pytest.fixture(scope="session")
def ens_plan(merged_view):
    """The deployment plan of Figure 3."""
    return plan_from_view(merged_view, period_s=20.0)
