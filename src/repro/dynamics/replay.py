"""Epoch replay: churn → monitor → remap → replan, with an optional oracle.

:func:`run_replay` drives one dynamic scenario end to end.  Epoch 0 performs
a full bootstrap mapping; every later epoch applies the scenario's churn
events, takes one monitoring observation round, lets the incremental
remapper decide between *no-op*, *patch* and *full remap*, re-plans from the
(possibly) updated view, and evaluates the plan against the churned ground
truth.  An optional **oracle track** re-maps the platform from scratch every
epoch — the quality ceiling the incremental strategy is compared against,
and the cost baseline its savings are measured from.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core import evaluate_plan, plan_from_view
from ..core.plan import DeploymentPlan
from ..core.quality import QualityReport
from ..env.mapper import map_platform
from ..env.probes import ProbeMemo
from ..env.thresholds import DEFAULT_THRESHOLDS, ENVThresholds
from ..obs.trace import TRACER
from ..perf import fast_path_enabled
from ..scenarios.registry import get_scenario
from .churn import apply_epoch, generate_schedule
from .monitor import DeploymentMonitor
from .remap import RemapResult, full_remap, incremental_remap
from .scenarios import DynamicScenario

__all__ = ["EpochRecord", "ReplayResult", "run_replay", "plan_similarity"]


def plan_similarity(before: DeploymentPlan, after: DeploymentPlan) -> float:
    """Jaccard similarity of the two plans' clique host-sets (1.0 = stable)."""
    a = {frozenset(c.hosts) for c in before.cliques}
    b = {frozenset(c.hosts) for c in after.cliques}
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass
class EpochRecord:
    """Everything one replay epoch produced."""

    epoch: int
    events: List[str] = field(default_factory=list)
    skipped_events: List[str] = field(default_factory=list)
    drifted_pairs: int = 0
    suspect_networks: List[str] = field(default_factory=list)
    structure_changed: bool = False
    monitor_measurements: int = 0
    remap_mode: str = "none"
    remap_measurements: int = 0
    remap_seconds: float = 0.0
    remap_reason: str = ""
    plan_cliques: int = 0
    plan_stability: float = 1.0
    completeness: Optional[float] = None
    bandwidth_error: Optional[float] = None
    harmful_collisions: Optional[int] = None
    oracle_measurements: Optional[int] = None
    oracle_seconds: Optional[float] = None
    oracle_completeness: Optional[float] = None
    oracle_bandwidth_error: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        """Flat dict for JSONL records and ASCII tables."""
        return {
            "epoch": self.epoch,
            "events": ";".join(self.events) or "-",
            "drifted": self.drifted_pairs,
            "suspects": len(self.suspect_networks),
            "structure": self.structure_changed,
            "remap": self.remap_mode,
            "remap_meas": self.remap_measurements,
            "remap_s": round(self.remap_seconds, 4),
            "cliques": self.plan_cliques,
            "stability": round(self.plan_stability, 3),
            "completeness": ("" if self.completeness is None
                             else round(self.completeness, 3)),
            "oracle_meas": ("" if self.oracle_measurements is None
                            else self.oracle_measurements),
        }


@dataclass
class ReplayResult:
    """Aggregate outcome of one dynamic-scenario replay."""

    scenario: str
    base: str
    master: str
    schedule_digest: str
    records: List[EpochRecord] = field(default_factory=list)
    bootstrap_measurements: int = 0
    bootstrap_seconds: float = 0.0
    hosts_initial: int = 0
    hosts_final: int = 0
    elapsed_s: float = 0.0

    # -- aggregates ----------------------------------------------------------
    @property
    def remap_measurements(self) -> int:
        """Total maintenance probing cost (monitor + remaps, all epochs)."""
        return sum(r.monitor_measurements + r.remap_measurements
                   for r in self.records)

    @property
    def oracle_measurements(self) -> Optional[int]:
        costs = [r.oracle_measurements for r in self.records]
        if any(c is None for c in costs):
            return None
        return sum(costs)

    @property
    def remap_counts(self) -> Dict[str, int]:
        counts = {"none": 0, "incremental": 0, "full": 0}
        for record in self.records:
            counts[record.remap_mode] = counts.get(record.remap_mode, 0) + 1
        return counts

    @property
    def mean_stability(self) -> float:
        if not self.records:
            return 1.0
        return sum(r.plan_stability for r in self.records) / len(self.records)

    def quality_gaps(self) -> Dict[str, float]:
        """Mean |incremental − oracle| over epochs where both were evaluated."""
        comp, bw = [], []
        for r in self.records:
            if r.completeness is not None and r.oracle_completeness is not None:
                comp.append(abs(r.completeness - r.oracle_completeness))
            if (r.bandwidth_error is not None
                    and r.oracle_bandwidth_error is not None):
                bw.append(abs(r.bandwidth_error - r.oracle_bandwidth_error))
        return {
            "completeness": sum(comp) / len(comp) if comp else 0.0,
            "bandwidth_error": sum(bw) / len(bw) if bw else 0.0,
        }

    def summary(self) -> Dict[str, object]:
        """A flat, JSON-serialisable digest (one sweep-store record body)."""
        final = self.records[-1] if self.records else None
        counts = self.remap_counts
        out: Dict[str, object] = {
            "kind": "dynamic",
            "scenario": self.scenario,
            "base": self.base,
            "master": self.master,
            "schedule": self.schedule_digest[:12],
            "hosts": self.hosts_initial,
            "hosts_final": self.hosts_final,
            "epochs": len(self.records),
            "events_applied": sum(len(r.events) for r in self.records),
            "events_skipped": sum(len(r.skipped_events) for r in self.records),
            "incremental_remaps": counts.get("incremental", 0),
            "full_remaps": counts.get("full", 0),
            "quiet_epochs": counts.get("none", 0),
            "bootstrap_measurements": self.bootstrap_measurements,
            "measurements": self.remap_measurements,
            "mean_plan_stability": round(self.mean_stability, 4),
            "completeness": (final.completeness
                             if final and final.completeness is not None
                             else None),
            "bandwidth_error": (final.bandwidth_error
                                if final and final.bandwidth_error is not None
                                else None),
            "epoch_records": [r.as_row() for r in self.records],
        }
        if self.oracle_measurements is not None:
            gaps = self.quality_gaps()
            out["oracle_measurements"] = self.oracle_measurements
            out["quality_gap_completeness"] = round(gaps["completeness"], 4)
            out["quality_gap_bandwidth_error"] = round(
                gaps["bandwidth_error"], 4)
        return out


def _quality(plan: DeploymentPlan, platform) -> QualityReport:
    return evaluate_plan(plan, platform)


def run_replay(scenario: Union[str, DynamicScenario],
               epochs: Optional[int] = None,
               period_s: float = 60.0,
               forecast_window: int = 10,
               forecast_alpha: float = 0.3,
               drift_threshold: float = 0.25,
               full_fraction: float = 0.5,
               oracle: bool = False,
               quality_every: int = 1,
               thresholds: ENVThresholds = DEFAULT_THRESHOLDS) -> ReplayResult:
    """Replay a dynamic scenario over its churn schedule.

    Parameters
    ----------
    scenario:
        A :class:`DynamicScenario` or the name of a registered one.
    epochs:
        Override the schedule length (defaults to the scenario's spec).
    oracle:
        Also run the full-remap-every-epoch oracle track (slower; used by
        benchmarks and the CLI's ``--oracle`` flag).
    quality_every:
        Evaluate plan quality every N epochs (and always on the last one);
        0 evaluates only the last epoch.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if not isinstance(scenario, DynamicScenario):
        raise ValueError(f"{scenario.name!r} is not a dynamic scenario")

    start = time.perf_counter()
    platform = scenario.build()
    spec = scenario.churn_spec()
    if epochs is not None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        spec = dataclasses.replace(spec, epochs=epochs)
    schedule = generate_schedule(platform, spec)
    n_epochs = spec.epochs

    master = platform.host_names()[0]
    # One memo shared by the bootstrap mapping and every incremental remap:
    # churn invalidates exactly the affected entries, so suspect-but-unchanged
    # pairs are answered warm.  The oracle track below stays memo-less — it
    # models the naive from-scratch cost.  With the fast path globally off
    # (reference/A-B mode) no memo is created at all, so the baseline really
    # re-measures everything.
    memo = ProbeMemo() if fast_path_enabled() else None
    with TRACER.span("replay.bootstrap", scenario=scenario.name):
        bootstrap = full_remap(platform, master, thresholds=thresholds,
                               reason="bootstrap", memo=memo)
        view = bootstrap.view
        plan = plan_from_view(view, period_s=period_s)
    monitor = DeploymentMonitor(
        platform, view, plan,
        forecast_window=forecast_window, forecast_alpha=forecast_alpha,
        drift_threshold=drift_threshold)

    result = ReplayResult(
        scenario=scenario.name, base=scenario.base, master=master,
        schedule_digest=schedule.digest(),
        # Deployment cost: the mapping run plus the monitor's baseline round.
        bootstrap_measurements=(bootstrap.stats.measurements
                                + monitor.seed_measurements),
        bootstrap_seconds=bootstrap.seconds,
        hosts_initial=len(platform.host_names()),
    )

    for epoch in range(1, n_epochs + 1):
        with TRACER.span("replay.epoch", epoch=epoch) as epoch_span:
            delta = apply_epoch(platform, schedule, epoch)
            report = monitor.observe_epoch(epoch)
            record = EpochRecord(
                epoch=epoch,
                events=[e.describe() for e in delta.applied],
                skipped_events=[f"{e.describe()} ({why})"
                                for e, why in delta.skipped],
                drifted_pairs=len(report.drifted_pairs),
                suspect_networks=list(report.suspect_labels),
                structure_changed=report.structure_changed,
                monitor_measurements=report.measurements,
            )

            with TRACER.span("replay.remap") as remap_span:
                remap: RemapResult = incremental_remap(
                    platform, view, report, thresholds=thresholds,
                    full_fraction=full_fraction, memo=memo)
                remap_span.set_attrs(mode=remap.mode)
            record.remap_mode = remap.mode
            record.remap_reason = remap.reason
            if remap.mode != "none":
                record.remap_measurements = remap.stats.measurements
                record.remap_seconds = remap.seconds
                view = remap.view
                new_plan = plan_from_view(view, period_s=period_s)
                record.plan_stability = plan_similarity(plan, new_plan)
                plan = new_plan
                record.monitor_measurements += monitor.rebind(view, plan)
            record.plan_cliques = len(plan.cliques)
            epoch_span.set_attrs(remap=remap.mode,
                                 events=len(record.events))

            evaluate = (epoch == n_epochs
                        or (quality_every > 0
                            and epoch % quality_every == 0))
            if evaluate:
                quality = _quality(plan, platform)
                record.completeness = quality.completeness
                record.bandwidth_error = quality.bandwidth_error
                record.harmful_collisions = quality.harmful_collisions

            if oracle:
                current_master = (master if master in platform.nodes
                                  else platform.host_names()[0])
                oracle_remap = full_remap(platform, current_master,
                                          thresholds=thresholds,
                                          reason="oracle")
                record.oracle_measurements = oracle_remap.stats.measurements
                record.oracle_seconds = oracle_remap.seconds
                if evaluate:
                    oracle_plan = plan_from_view(oracle_remap.view,
                                                 period_s=period_s)
                    oracle_quality = _quality(oracle_plan, platform)
                    record.oracle_completeness = oracle_quality.completeness
                    record.oracle_bandwidth_error = \
                        oracle_quality.bandwidth_error

        result.records.append(record)

    result.hosts_final = len(platform.host_names())
    result.elapsed_s = time.perf_counter() - start
    return result
