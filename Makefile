# Developer entry points.  `make verify` is the PR gate: the tier-1 test
# suite plus a smoke sweep exercising the parallel scenario-sweep path.

PYTHON  ?= python
PYTEST   = PYTHONPATH=src $(PYTHON) -m pytest
REPRO    = PYTHONPATH=src $(PYTHON) -m repro.cli

.PHONY: verify tier1 check chaos smoke-sweep smoke-sweep-fresh smoke-import \
	smoke-serve sweep bench bench-smoke bench-check clean

verify: check tier1 smoke-sweep smoke-import smoke-serve

tier1:
	$(PYTEST) -x -q

# Static AST invariant checks (repro.check): determinism of hash-critical
# modules, Platform version-bump coverage, ioutils-only writes, async
# safety under serve/, no silent excepts, clean pool boundaries.  Fails on
# any finding that is neither noqa'd inline nor grandfathered in
# check_baseline.json (refresh with `repro check --update-baseline`).
check:
	$(REPRO) check

# The seeded chaos suite (tests/test_chaos.py + the fault-plan unit tests):
# killed/hung pool workers, poisoned scenarios, breaker trips, SIGTERM
# drain, injected ENOSPC/torn-tail write failures.  Every fault is driven
# by a deterministic FaultPlan, so failures reproduce exactly.  Spans land
# in CHAOS_spans.jsonl for post-mortem rendering (repro trace); flight
# recorder bundles (breaker-open forensics) land in CHAOS_flight/.
chaos:
	REPRO_CHAOS_SPAN_LOG=CHAOS_spans.jsonl \
	REPRO_CHAOS_FLIGHT_DIR=CHAOS_flight $(PYTEST) -x -q \
		tests/test_faults.py tests/test_chaos.py

# Four small scenarios (tagged "smoke"), sharded over two workers.  Cached
# results may be served (safe: keys embed a hash of every source file), so
# repeated verifies on unchanged code — and CI's restored .sweep-cache —
# skip the redundant pipeline work.  `make smoke-sweep-fresh` forces re-runs.
smoke-sweep:
	$(REPRO) sweep --jobs 2 --filter smoke --cache-dir .sweep-cache

smoke-sweep-fresh:
	$(REPRO) sweep --jobs 2 --filter smoke --cache-dir .sweep-cache --rerun

# The imported family: ingest the committed fixture topology (CAIDA-style
# AS links) and sweep the derived scenarios through the normal cache path,
# so real-topology import is exercised on every PR.  --no-save keeps the
# working tree clean (no manifest is written).
smoke-import:
	$(REPRO) import tests/data/sample-aslinks.txt --sizes 8 10 12 --seed 7 \
		--dynamic --epochs 3 --no-save --sweep --jobs 2 \
		--cache-dir .sweep-cache

# The serving layer: start `repro serve` on an ephemeral port as a real
# subprocess and drive /healthz, /scenarios (ETag revalidation), one
# POST /runs round-trip, /metrics (JSON and Prometheus exposition) and the
# run's GET /trace/{id} timeline.  Shares .sweep-cache with the smoke
# sweep, so the pipeline run is normally a warm cache hit.
smoke-serve:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

# The full catalog; cached results are reused (use --rerun to force).
sweep:
	$(REPRO) sweep --jobs 4 --cache-dir .sweep-cache

# Full benchmark suite.  Every benchmark run merges a machine-readable perf
# trajectory (per-benchmark wall time + hot-path work counters, keyed by
# benchmark id) into BENCH_results.json, and drops the collapsed-stack
# profiles of the two slowest benchmarks into BENCH_profiles/ — see
# benchmarks/conftest.py.
bench:
	$(PYTEST) benchmarks/ -q -s

# The fast subset CI runs on every push: the end-to-end fast-path benchmark
# (speedup + whole-catalog equivalence) plus the tracing-overhead gate
# (<5% at sample 1.0, near-free disabled; writes a real BENCH_spans.jsonl
# span log CI archives) and the profiling-overhead gate (<10% at 100 Hz,
# near-free disarmed).  Also writes BENCH_results.json + BENCH_profiles/.
bench-smoke:
	$(PYTEST) benchmarks/test_bench_fastpath.py \
		benchmarks/test_bench_obs_overhead.py \
		benchmarks/test_bench_profile_overhead.py \
		benchmarks/test_bench_runtime_overhead.py -q -s

# Gate against the committed perf baseline (>25% regression fails).
bench-check: bench-smoke
	$(PYTHON) benchmarks/check_bench_regression.py

clean:
	rm -rf .sweep-cache .pytest_cache .benchmarks BENCH_results.json \
		BENCH_spans.jsonl BENCH_profiles CHAOS_spans.jsonl \
		CHAOS_spans.jsonl.1 CHAOS_flight .flight
