"""Epoch-wise drift detection over a deployed NWS plan.

The monitor plays the role of the deployed NWS sensors between two mapping
runs: each epoch it takes one bandwidth observation per *measured pair* of
the current deployment plan and feeds it into a per-pair
:class:`~repro.nws.forecasting.ForecasterBank` (the same mixture-of-experts
battery the NWS uses).  These observations model the deployment's *own*
periodic measurement traffic — a running NWS takes them regardless of any
remapping strategy — so cost comparisons against a remap-every-epoch oracle
count them separately from the remap probes.  An observation that deviates
from the bank's forecast by more than ``drift_threshold`` flags the pair —
and therefore the ENV networks its endpoints live in — as *drifted* and in
need of re-probing.

Structure changes (hosts joining/leaving, reachability loss, traceroute
paths moving after a failure or route flap) cannot be repaired by re-probing
a leaf cluster; they are reported separately via ``structure_changed`` so
the remapper can fall back to a full mapping run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.plan import DeploymentPlan
from ..env.envtree import ENVView
from ..env.probes import AnalyticProbeDriver
from ..netsim.topology import Platform
from ..nws.forecasting import ForecasterBank

__all__ = ["DriftReport", "DeploymentMonitor"]


@dataclass
class DriftReport:
    """What one monitoring epoch observed."""

    epoch: int
    #: Measured pairs whose observation deviated from the forecast.
    drifted_pairs: List[Tuple[str, str]] = field(default_factory=list)
    #: Labels of the classified ENV networks that should be re-probed.
    suspect_labels: List[str] = field(default_factory=list)
    structure_changed: bool = False
    reasons: List[str] = field(default_factory=list)
    #: Probing cost of this monitoring epoch.
    measurements: int = 0
    traceroutes: int = 0

    @property
    def quiet(self) -> bool:
        """No drift and no structural change: nothing to remap."""
        return not self.drifted_pairs and not self.structure_changed


class DeploymentMonitor:
    """Drives the deployed sensors over epochs and detects drift."""

    def __init__(self, platform: Platform, view: ENVView,
                 plan: DeploymentPlan,
                 forecast_window: int = 10,
                 forecast_alpha: float = 0.3,
                 drift_threshold: float = 0.25,
                 probe_size_bytes: int = 64 * 1024,
                 check_structure: bool = True):
        self.platform = platform
        self.forecast_window = forecast_window
        self.forecast_alpha = forecast_alpha
        self.drift_threshold = drift_threshold
        self.probe_size_bytes = probe_size_bytes
        self.check_structure = check_structure
        self._banks: Dict[Tuple[str, str], ForecasterBank] = {}
        #: Traceroute baselines: host → external world, plus one per watched
        #: pair (src, dst) so flapped routes between measured pairs are seen.
        self._route_signatures: Dict[Tuple[str, Optional[str]],
                                     Tuple[str, ...]] = {}
        self.view = view
        self.plan = plan
        #: Probing cost of the initial baseline capture (a deployment cost).
        self.seed_measurements = self.rebind(view, plan)

    # -- lifecycle -----------------------------------------------------------
    def rebind(self, view: ENVView, plan: DeploymentPlan) -> int:
        """Adopt a freshly (re)mapped view/plan as the new baseline.

        Forecast history of pairs that are still measured is kept (the warm
        start); pairs no longer measured are dropped; *new* pairs are seeded
        with one baseline observation so the very next epoch can already
        detect drift against as-mapped conditions.  The structural baseline
        (traceroute signatures) is re-captured.  Returns the number of
        measurements this cost.
        """
        self.view = view
        self.plan = plan
        pairs = self.watched_pairs()
        self._banks = {
            pair: self._banks.get(pair) or ForecasterBank(
                window=self.forecast_window, alpha=self.forecast_alpha)
            for pair in pairs
        }
        driver = AnalyticProbeDriver(self.platform)
        for (a, b), bank in sorted(self._banks.items()):
            if (bank.sample_count == 0
                    and a in self.platform.nodes and b in self.platform.nodes
                    and driver.can_communicate(a, b)):
                bank.update(driver.bandwidth(a, b, self.probe_size_bytes))
        self._route_signatures = {}
        if self.check_structure:
            for host in sorted(self.plan.hosts):
                if host in self.platform.nodes:
                    self._route_signatures[(host, None)] = \
                        self._signature(driver, host)
            # Both orientations: a flapped route is directional (asymmetric),
            # so a->b may detour while b->a still takes the shortest path.
            for a, b in pairs:
                if a in self.platform.nodes and b in self.platform.nodes:
                    self._route_signatures[(a, b)] = \
                        self._signature(driver, a, b)
                    self._route_signatures[(b, a)] = \
                        self._signature(driver, b, a)
        return driver.stats.measurements

    def watched_pairs(self) -> List[Tuple[str, str]]:
        """The ordered (sorted) pairs the deployed plan measures directly."""
        return sorted(tuple(sorted(pair)) for pair in self.plan.measured_pairs())

    # -- internals -----------------------------------------------------------
    def _signature(self, driver: AnalyticProbeDriver, src: str,
                   dst: Optional[str] = None) -> Tuple[str, ...]:
        result = driver.run_traceroute(src, dst)
        return tuple(hop.address for hop in result.hops)

    def _suspects_for(self, pair: Tuple[str, str]) -> List[str]:
        labels = []
        for host in pair:
            net = self.view.network_of(host)
            if net is not None and net.label not in labels:
                labels.append(net.label)
        return labels

    # -- the epoch observation ------------------------------------------------
    def observe_epoch(self, epoch: int) -> DriftReport:
        """Take one observation round and report drift/structure findings."""
        report = DriftReport(epoch=epoch)
        # A fresh driver per epoch: the flow model snapshots link capacities,
        # and the platform may have been mutated since the last epoch.
        driver = AnalyticProbeDriver(self.platform)

        current_hosts = set(self.platform.host_names())
        planned = set(self.plan.hosts)
        joined = sorted(current_hosts - planned)
        left = sorted(planned - current_hosts)
        if joined:
            report.structure_changed = True
            report.reasons.append(f"hosts joined: {', '.join(joined)}")
        if left:
            report.structure_changed = True
            report.reasons.append(f"hosts left: {', '.join(left)}")

        for pair in self.watched_pairs():
            a, b = pair
            if a not in current_hosts or b not in current_hosts:
                continue        # already reported as a membership change
            if not driver.can_communicate(a, b):
                report.structure_changed = True
                report.reasons.append(f"pair {a}-{b} unreachable")
                continue
            observed = driver.bandwidth(a, b, self.probe_size_bytes)
            bank = self._banks.setdefault(pair, ForecasterBank(
                window=self.forecast_window, alpha=self.forecast_alpha))
            forecast = bank.forecast()
            if forecast is not None and forecast.value > 0:
                deviation = abs(observed - forecast.value) / forecast.value
                if deviation > self.drift_threshold:
                    report.drifted_pairs.append(pair)
                    for label in self._suspects_for(pair):
                        if label not in report.suspect_labels:
                            report.suspect_labels.append(label)
            bank.update(observed)

        if self.check_structure:
            for (src, dst), baseline in self._route_signatures.items():
                if src not in current_hosts or \
                        (dst is not None and dst not in current_hosts):
                    continue
                signature = self._signature(driver, src, dst)
                if signature != baseline:
                    report.structure_changed = True
                    where = f"{src}->{dst}" if dst else src
                    report.reasons.append(f"route of {where} changed")
                    self._route_signatures[(src, dst)] = signature

        report.measurements = driver.stats.measurements
        report.traceroutes = driver.stats.traceroutes
        return report
