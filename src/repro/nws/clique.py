"""NWS measurement cliques: token-ring mutual exclusion (paper §2.3, [23]).

Hosts of a clique take turns: the member holding the token runs its
experiments towards every other member, then passes the token on.  Only one
pair of the clique is therefore active at any time, which prevents
experiments of the *same* clique from colliding.  The protocol also survives
host failures: when the next member is down (or the token is lost), the ring
skips it after a timeout and regenerates the token — the "leader election /
error handling" mechanisms mentioned in the paper.

Collisions *across* cliques are not prevented by anything: whether they occur
is purely a property of the deployment plan, which is exactly what the
paper's planning algorithm is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..simkernel import Engine, Interrupt, Tracer
from .config import NWSConfig
from .experiments import ExperimentResult, LinkExperiment
from .memory import MemoryServer
from .nameserver import NameServer
from .sensor import Sensor

__all__ = ["CliqueStats", "CliqueRunner"]


@dataclass
class CliqueStats:
    """Protocol statistics of one clique."""

    token_passes: int = 0
    token_regenerations: int = 0
    skipped_members: int = 0
    experiments: int = 0
    cycles: int = 0


class CliqueRunner:
    """Drives the token-ring measurement protocol of one clique."""

    def __init__(self, name: str, members: List[str], engine: Engine,
                 experiment: LinkExperiment, memory: MemoryServer,
                 nameserver: NameServer, sensors: Dict[str, Sensor],
                 config: Optional[NWSConfig] = None,
                 tracer: Optional[Tracer] = None,
                 period_s: float = 0.0):
        if len(members) < 2:
            raise ValueError("a clique needs at least two members")
        self.name = name
        self.members = list(members)
        self.engine = engine
        self.experiment = experiment
        self.memory = memory
        self.nameserver = nameserver
        self.sensors = sensors
        self.config = config if config is not None else NWSConfig()
        self.tracer = tracer
        self.period_s = period_s
        self.stats = CliqueStats()
        self.results: List[ExperimentResult] = []
        self._process = None
        self._stopped = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start the clique protocol process on the engine."""
        if self._process is None:
            self._process = self.engine.process(self._run(), name=f"clique:{self.name}")

    def stop(self) -> None:
        """Interrupt the protocol."""
        self._stopped = True
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("clique stopped")

    # -- protocol ---------------------------------------------------------------
    def _alive(self, host: str) -> bool:
        sensor = self.sensors.get(host)
        return sensor.alive if sensor is not None else True

    def _run(self) -> Generator:
        index = 0
        try:
            while not self._stopped:
                holder = self.members[index % len(self.members)]
                if not self._alive(holder):
                    # Token cannot be delivered: after the dead-man timeout the
                    # ring regenerates the token at the next live member.
                    self.stats.skipped_members += 1
                    self.stats.token_regenerations += 1
                    if self.tracer is not None:
                        self.tracer.emit(self.engine.now, "nws.token_regenerated",
                                         clique=self.name, skipped=holder)
                    yield self.engine.timeout(self.config.token_timeout_s)
                    index += 1
                    continue
                yield from self._holder_turn(holder)
                self.stats.token_passes += 1
                if (index + 1) % len(self.members) == 0:
                    self.stats.cycles += 1
                index += 1
                gap = self.config.token_hold_gap_s
                if self.period_s > 0:
                    # Spread a full cycle over the requested period.
                    gap = max(gap, self.period_s / len(self.members))
                yield self.engine.timeout(gap)
        except Interrupt:
            return

    def _holder_turn(self, holder: str) -> Generator:
        """The token holder measures the links towards every other member."""
        sensor = self.sensors.get(holder)
        for peer in self.members:
            if peer == holder or not self._alive(peer):
                if peer != holder:
                    self.stats.skipped_members += 1
                continue
            if sensor is not None:
                sensor.record_start()
            if self.tracer is not None:
                self.tracer.emit(self.engine.now, "nws.experiment_start",
                                 clique=self.name, src=holder, dst=peer)
            result: ExperimentResult = yield from self.experiment.run(holder, peer)
            self.stats.experiments += 1
            self.results.append(result)
            if sensor is not None:
                sensor.record_completion(self.engine.now)
            for measurement in result.measurements(clique=self.name):
                self.memory.store(measurement)
                self.nameserver.register_series(measurement.src, measurement.dst,
                                                measurement.metric, self.memory.name)
            if self.tracer is not None:
                self.tracer.emit(self.engine.now, "nws.experiment_end",
                                 clique=self.name, src=holder, dst=peer,
                                 bandwidth_mbps=result.bandwidth_mbps,
                                 latency_s=result.latency_s)
