"""Tests of ``repro.check``: the engine, each rule, noqa, baseline, CLI."""

import ast
import json
import os

import pytest

from repro.check import (
    load_baseline,
    render_json,
    render_text,
    run_check,
    write_baseline,
)
from repro.check.engine import CheckedFile, _extract_noqa
from repro.check.rules import VersionBumpRule
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "data", "check")
SRC_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__),
                                         os.pardir, "src", "repro"))


def _findings(result, rule=None, path=None):
    found = result.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    if path is not None:
        found = [f for f in found if f.path == path]
    return found


@pytest.fixture(scope="module")
def fixture_result():
    return run_check(FIXTURES)


class TestRulesFire:
    def test_rc001_wallclock_entropy_rng(self, fixture_result):
        messages = [f.message for f in
                    _findings(fixture_result, "RC001", "rc001.py")]
        assert len(messages) == 4
        assert any("time.time()" in m for m in messages)
        assert any("os.urandom" in m for m in messages)
        assert any("random.random" in m for m in messages)
        assert any("without a seed" in m for m in messages)
        # the seeded constructor is NOT flagged
        assert all("random.Random()" not in m or "without a seed" in m
                   for m in messages)

    def test_rc001_set_iteration_only_in_hash_critical(self, fixture_result):
        sets = _findings(fixture_result, "RC001", "sweep/rc001_sets.py")
        assert len(sets) == 2
        assert all("hash order" in f.message for f in sets)
        # clean.py iterates a set too (inside sorted) but is not
        # hash-critical and not flagged
        assert not _findings(fixture_result, "RC001", "clean.py")

    def test_rc002_fires_on_unbumped_mutators_only(self, fixture_result):
        names = sorted(f.message.split()[0] for f in
                       _findings(fixture_result, "RC002", "rc002.py"))
        assert names == ["Platform.bad_alias_write",
                         "Platform.bad_forgot_bump",
                         "Platform.bad_mutator_call"]

    def test_rc003_raw_writes(self, fixture_result):
        found = _findings(fixture_result, "RC003", "rc003.py")
        assert len(found) == 2
        assert any("open" in f.message for f in found)
        assert any("os.replace" in f.message for f in found)

    def test_rc004_blocking_in_async(self, fixture_result):
        messages = [f.message for f in
                    _findings(fixture_result, "RC004", "serve/rc004.py")]
        assert len(messages) == 4
        assert any("time.sleep" in m for m in messages)
        assert any("subprocess.run" in m for m in messages)
        assert any("file I/O" in m for m in messages)
        assert any("pool_result.get()" in m for m in messages)

    def test_rc005_silent_handlers(self, fixture_result):
        found = _findings(fixture_result, "RC005", "rc005.py")
        assert len(found) == 2

    def test_rc006_pool_boundary(self, fixture_result):
        messages = [f.message for f in
                    _findings(fixture_result, "RC006", "rc006.py")]
        assert len(messages) == 3
        assert any("lambda" in m for m in messages)
        assert any("closure" in m for m in messages)
        assert any("bound/attribute" in m for m in messages)

    def test_clean_file_has_no_findings(self, fixture_result):
        assert not _findings(fixture_result, path="clean.py")


class TestNoqa:
    def test_noqa_suppresses_matching_and_bare(self, fixture_result):
        # stamp() carries noqa[RC001], save() a bare noqa: both silent.
        found = _findings(fixture_result, path="noqa.py")
        assert len(found) == 1           # only the wrong-rule site survives
        assert found[0].rule == "RC003"
        assert fixture_result.suppressed >= 2

    def test_wrong_rule_noqa_does_not_suppress(self, fixture_result):
        surviving = _findings(fixture_result, "RC003", "noqa.py")
        assert len(surviving) == 1
        assert "'a'" in surviving[0].message

    def test_every_rule_is_suppressible(self, fixture_result):
        # noqa.py waives RC001/RC003, noqa_more.py RC002/RC005/RC006,
        # serve/noqa_rc004.py RC004: one suppressed site per rule, and
        # none of them survives into the findings.
        assert not _findings(fixture_result, path="noqa_more.py")
        assert not _findings(fixture_result, path="serve/noqa_rc004.py")
        assert fixture_result.suppressed == 6

    def test_noqa_inside_string_literal_is_inert(self):
        noqa = _extract_noqa('x = "# repro: noqa"\ny = 1  # repro: noqa\n')
        assert list(noqa) == [2]


class TestBaseline:
    def test_round_trip_marks_old_findings_baselined(self, tmp_path):
        first = run_check(FIXTURES)
        assert first.status.new and not first.status.baselined
        path = str(tmp_path / "baseline.json")
        write_baseline(path, first.findings)
        again = run_check(FIXTURES, baseline=load_baseline(path))
        assert not again.status.new
        assert len(again.status.baselined) == len(first.findings)
        assert again.exit_code == 0

    def test_baseline_keys_survive_line_shifts(self, tmp_path):
        first = run_check(FIXTURES)
        path = str(tmp_path / "baseline.json")
        write_baseline(path, first.findings)
        baseline = load_baseline(path)
        for entry in baseline["findings"]:
            entry["line"] = entry["line"] + 100   # unrelated edits moved it
        assert not run_check(FIXTURES, baseline=baseline).status.new

    def test_stale_entries_reported_but_not_fatal(self, tmp_path):
        first = run_check(FIXTURES)
        path = str(tmp_path / "baseline.json")
        write_baseline(path, first.findings)
        baseline = load_baseline(path)
        baseline["findings"].append({"rule": "RC001", "path": "gone.py",
                                     "line": 1, "message": "fixed long ago"})
        result = run_check(FIXTURES, baseline=baseline)
        assert result.exit_code == 0
        assert result.status.stale == ["RC001:gone.py:fixed long ago"]

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": 1}))   # repro: noqa[RC003]
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestReporters:
    def test_json_schema(self, fixture_result):
        payload = json.loads(render_json(fixture_result))
        assert set(payload) == {"version", "files_checked", "new",
                                "baselined", "suppressed", "stale_baseline",
                                "counts"}
        assert payload["counts"]["new"] == len(payload["new"])
        for finding in payload["new"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert finding["rule"].startswith("RC")
            assert finding["line"] >= 1

    def test_text_report_lists_locations_and_summary(self, fixture_result):
        text = render_text(fixture_result)
        assert "rc003.py:" in text
        assert text.splitlines()[-1].startswith(
            f"checked {fixture_result.files_checked} files:")

    def test_syntax_error_becomes_rc000_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def nope(:\n")  # repro: noqa[RC003]
        result = run_check(str(tmp_path))
        assert [f.rule for f in result.findings] == ["RC000"]
        assert result.status.new


class TestRepoIsClean:
    def test_source_tree_passes_all_rules(self):
        result = run_check(SRC_ROOT)
        assert result.status.new == [], render_text(result)

    def test_rc002_catches_reverted_hub_bump(self):
        """Deleting set_hub_bandwidth's version bump must trip RC002."""
        topo = os.path.join(SRC_ROOT, "netsim", "topology.py")
        with open(topo, "r", encoding="utf-8") as handle:
            source = handle.read()
        assert 'self._bump(("hub", name))' in source
        broken = source.replace('self._bump(("hub", name))', "pass")
        cf = CheckedFile(abspath=topo, rel="netsim/topology.py",
                         source=broken, tree=ast.parse(broken))
        findings = list(VersionBumpRule().check(cf))
        assert any("set_hub_bandwidth" in f.message for f in findings)
        # and the committed source is clean
        cf_ok = CheckedFile(abspath=topo, rel="netsim/topology.py",
                            source=source, tree=ast.parse(source))
        assert not list(VersionBumpRule().check(cf_ok))


class TestCLI:
    def test_check_command_exit_codes_and_update(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        args = ["check", "--root", FIXTURES, "--baseline", baseline]
        assert main(args) == 1                     # findings, no baseline
        assert main(args + ["--update-baseline"]) == 0
        assert os.path.exists(baseline)
        assert main(args) == 0                     # everything grandfathered
        capsys.readouterr()
        assert main(args + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 0
        assert payload["counts"]["baselined"] > 0

    def test_repo_default_invocation_is_clean(self, capsys):
        assert main(["check"]) == 0
