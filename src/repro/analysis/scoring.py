"""Scoring an effective view against the ground-truth grouping.

The simulated platforms record which hosts really share a segment and of
which kind (hub or switch); this module compares an ENV view's grouping to
that ground truth, producing the accuracy figures used by the FIG-1b
benchmark and the threshold/master ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..env.envtree import ENVView, KIND_SHARED, KIND_SWITCHED

__all__ = ["GroupScore", "MappingScore", "score_view"]


@dataclass(frozen=True)
class GroupScore:
    """How well one ground-truth group was recovered."""

    name: str
    expected_hosts: Tuple[str, ...]
    expected_kind: str
    best_match_label: Optional[str]
    jaccard: float
    kind_correct: bool


@dataclass
class MappingScore:
    """Aggregate accuracy of an effective view."""

    groups: List[GroupScore]

    @property
    def mean_jaccard(self) -> float:
        if not self.groups:
            return 1.0
        return sum(g.jaccard for g in self.groups) / len(self.groups)

    @property
    def kind_accuracy(self) -> float:
        if not self.groups:
            return 1.0
        return sum(1 for g in self.groups if g.kind_correct) / len(self.groups)

    @property
    def perfect(self) -> bool:
        return all(g.jaccard == 1.0 and g.kind_correct for g in self.groups)

    def as_row(self) -> Dict[str, object]:
        return {
            "groups": len(self.groups),
            "mean_jaccard": round(self.mean_jaccard, 3),
            "kind_accuracy": round(self.kind_accuracy, 3),
            "perfect": self.perfect,
        }


def _jaccard(a: Set[str], b: Set[str]) -> float:
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def score_view(view: ENVView,
               ground_truth: Mapping[str, Mapping[str, object]],
               ignore_hosts: Optional[Set[str]] = None) -> MappingScore:
    """Score ``view`` against ``ground_truth``.

    ``ground_truth`` maps group names to ``{"hosts": set, "kind": str}``
    (the format produced by the platform generators and
    :func:`repro.netsim.ens_lyon.expected_effective_groups`).
    ``ignore_hosts`` are removed from both sides before matching — the ENV
    master for instance legitimately appears in its home network even when
    the ground-truth grouping omits it.
    """
    ignore = set(ignore_hosts or set())
    discovered = []
    for net in view.classified_networks():
        discovered.append((net.label, set(net.hosts) - ignore, net.kind))

    scores: List[GroupScore] = []
    for name, spec in sorted(ground_truth.items()):
        expected_hosts = set(spec["hosts"]) - ignore  # type: ignore[arg-type]
        expected_kind = str(spec["kind"])
        best_label: Optional[str] = None
        best_jaccard = 0.0
        best_kind = ""
        for label, hosts, kind in discovered:
            jac = _jaccard(expected_hosts, hosts)
            if jac > best_jaccard:
                best_jaccard = jac
                best_label = label
                best_kind = kind
        kind_correct = (best_kind == expected_kind) if best_label is not None else False
        scores.append(GroupScore(
            name=name,
            expected_hosts=tuple(sorted(expected_hosts)),
            expected_kind=expected_kind,
            best_match_label=best_label,
            jaccard=best_jaccard,
            kind_correct=kind_correct,
        ))
    return MappingScore(groups=scores)
