"""The three NWS link experiments (paper §2.2).

* latency: a 4-byte round trip over an established connection,
* bandwidth: one 64 KiB message timed on the destination acknowledgement,
* connect: the TCP connect/disconnect time.

The experiments are expressed as generator processes over the platform's
:class:`~repro.netsim.tcp.TcpModel`, so while they run they genuinely consume
simulated bandwidth — concurrent experiments on a shared medium therefore
corrupt each other exactly as the paper warns (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..netsim.tcp import TcpModel
from .config import NWSConfig
from .memory import Measurement

__all__ = ["ExperimentResult", "LinkExperiment"]

#: Metric names used by the memory servers and the client API.
METRIC_BANDWIDTH = "bandwidth_mbps"
METRIC_LATENCY = "latency_s"
METRIC_CONNECT = "connect_s"


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one full experiment between an ordered host pair."""

    src: str
    dst: str
    time: float
    bandwidth_mbps: float
    latency_s: float
    connect_s: float

    def measurements(self, clique: str = "") -> List[Measurement]:
        """The individual metric samples to be shipped to a memory server."""
        return [
            Measurement(time=self.time, value=self.bandwidth_mbps, src=self.src,
                        dst=self.dst, metric=METRIC_BANDWIDTH, clique=clique),
            Measurement(time=self.time, value=self.latency_s, src=self.src,
                        dst=self.dst, metric=METRIC_LATENCY, clique=clique),
            Measurement(time=self.time, value=self.connect_s, src=self.src,
                        dst=self.dst, metric=METRIC_CONNECT, clique=clique),
        ]


class LinkExperiment:
    """Runs the NWS experiment battery between ordered host pairs."""

    def __init__(self, tcp: TcpModel, config: Optional[NWSConfig] = None):
        self.tcp = tcp
        self.config = config if config is not None else NWSConfig()
        self.run_count = 0

    def run(self, src: str, dst: str) -> Generator:
        """Process measuring connect time, latency and bandwidth src → dst."""
        connect = yield from self.tcp.connect_probe(src, dst)
        latency = yield from self.tcp.latency_probe(
            src, dst, payload=self.config.latency_probe_bytes)
        bandwidth = yield from self.tcp.bandwidth_probe(
            src, dst, size=self.config.bandwidth_probe_bytes)
        self.run_count += 1
        return ExperimentResult(
            src=src, dst=dst, time=self.tcp.engine.now,
            bandwidth_mbps=bandwidth.value,
            latency_s=latency.value,
            connect_s=connect.value,
        )
