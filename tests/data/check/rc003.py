"""RC003 fixture: raw writes outside ioutils."""
import os


def save(path, text):
    with open(path, "w") as handle:
        handle.write(text)


def swap(src, dst):
    os.replace(src, dst)


def read(path):                      # fine: reads are not persistence
    with open(path) as handle:
        return handle.read()
