"""CLM-NAIVE — naive exhaustive mapping vs. ENV probing cost (§4.3).

The paper estimates that exhaustively measuring every link and every pair of
links of a 20-host platform at ~30 s per experiment would take about 50 days,
which is why ENV only maps the view from one master.  The benchmark
reproduces the 50-day figure from the cost model and compares it with the
actual number of measurements an ENV run needs on platforms of growing size.
"""

import pytest

from repro.analysis import (
    compare_costs,
    naive_mapping_experiments,
    naive_mapping_seconds,
    render_table,
)
from repro.env import map_ens_lyon, map_platform
from repro.netsim import SyntheticSpec, generate_constellation


def test_bench_naive_mapping_cost_headline(benchmark):
    days = benchmark(lambda: naive_mapping_seconds(20) / 86_400.0)
    print("\n[CLM-NAIVE] exhaustive mapping cost model")
    print(f"  20 hosts -> {naive_mapping_experiments(20)} experiments "
          f"at 30 s each = {days:.1f} days (paper: 'about 50 days')")
    assert days == pytest.approx(50.0, rel=0.02)


def test_bench_env_vs_naive_cost(benchmark, ens_lyon):
    view = benchmark.pedantic(map_ens_lyon, args=(ens_lyon,), rounds=1,
                              iterations=1)
    rows = [compare_costs(14, view.stats).as_row()]
    for sites in (2, 3, 4):
        platform = generate_constellation(SyntheticSpec(
            sites=sites, seed=17, hosts_per_cluster=(3, 4),
            clusters_per_site=(2, 2)))
        synthetic_view = map_platform(platform, platform.host_names()[0])
        rows.append(compare_costs(len(platform.host_names()),
                                  synthetic_view.stats).as_row())

    print("\n[CLM-NAIVE] probing cost, ENV vs. exhaustive mapping "
          "(30 s per experiment)")
    print(render_table(rows))

    for row in rows:
        # ENV must be orders of magnitude cheaper and finish within hours, not
        # weeks (the ENS-Lyon mapping "only lasts a few minutes" in the paper;
        # the 30 s/test budget is the paper's own conservative assumption).
        assert row["env_days"] < row["naive_days"] / 50
    # the gap widens with platform size
    speedups = [row["speedup"] for row in rows]
    assert speedups[-1] > speedups[0]
