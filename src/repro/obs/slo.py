"""Declarative SLOs over the metrics registry, with burn-rate verdicts.

An :class:`SLO` states an objective — "99% of HTTP requests complete
within 500 ms", "99.9% of responses are not 5xx" — and this module grades
it against live telemetry:

* **latency** objectives read a histogram's cumulative buckets out of
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`: the *good* count is
  the cumulative count at the largest bucket bound ≤ the threshold (the
  conservative reading — events between the chosen bound and the
  threshold count as bad).
* **availability** objectives read labelled counters, splitting series
  into good/bad by label prefix (``code="5xx"`` → bad).

:class:`SLOEngine` keeps the previous evaluation's tallies, so each
:meth:`~SLOEngine.evaluate` also grades the **window** since the last one
and computes its **burn rate** — the bad fraction divided by the error
budget (``1 − target``).  Burn rate 1.0 spends the budget exactly at the
objective's boundary; above 1.0 the budget is burning faster than it
regenerates.  Verdicts are machine-readable: ``ok`` / ``at_risk``
(cumulative compliance still holds but the current window burns > 1×) /
``breach`` / ``no_data``.

:func:`evaluate_spans` grades the same objectives against a span set
instead (``span_op`` naming the op) — how ``repro obs report`` issues
verdicts from a span log offline, with no registry in sight.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import REGISTRY, MetricsRegistry

__all__ = ["SLO", "SLOEngine", "DEFAULT_SLOS", "evaluate_spans"]

_STATUS_RANK = {"no_data": 0, "ok": 1, "at_risk": 2, "breach": 3}


@dataclass(frozen=True)
class SLO:
    """One declarative objective (see the module docstring)."""

    name: str
    #: ``latency`` (histogram + threshold) or ``availability`` (counter +
    #: bad-label prefixes).
    kind: str = "latency"
    #: Required fraction of good events (0.99 → a 1% error budget).
    target: float = 0.99
    #: The registry metric graded (histogram for latency, counter for
    #: availability); ``None`` = span-only objective.
    metric: Optional[str] = None
    #: Subset match on series labels ({} = every series of the metric).
    labels: Mapping[str, str] = field(default_factory=dict)
    #: Latency objectives: an event is good iff it finished within this.
    threshold_s: float = 0.25
    #: Availability objectives: series whose ``bad_label`` value starts
    #: with one of these prefixes count as bad events.
    bad_label: str = "code"
    bad_prefixes: Tuple[str, ...] = ("5",)
    #: The span op :func:`evaluate_spans` grades this objective against.
    span_op: Optional[str] = None
    description: str = ""

    def objective(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": self.kind, "target": self.target}
        if self.kind == "latency":
            doc["threshold_s"] = self.threshold_s
        if self.metric:
            doc["metric"] = self.metric
            if self.labels:
                doc["labels"] = dict(self.labels)
        if self.span_op:
            doc["span_op"] = self.span_op
        return doc


def _series_matches(series: Mapping[str, object],
                    wanted: Mapping[str, str]) -> bool:
    labels = series.get("labels")
    if not isinstance(labels, dict):
        return not wanted
    return all(labels.get(k) == v for k, v in wanted.items())


def _histogram_tally(snapshot: Mapping[str, object],
                     slo: SLO) -> Tuple[int, int]:
    """(total, good) events of a latency SLO in one registry snapshot."""
    doc = snapshot.get(slo.metric or "")
    if not isinstance(doc, dict) or doc.get("type") != "histogram":
        return 0, 0
    total = good = 0
    for series in doc.get("series", []):
        if not _series_matches(series, slo.labels):
            continue
        total += int(series.get("count", 0))
        best_bound, best_cum = -math.inf, 0
        for raw_bound, cumulative in series.get("buckets", {}).items():
            bound = math.inf if raw_bound == "+Inf" else float(raw_bound)
            if best_bound < bound <= slo.threshold_s:
                best_bound, best_cum = bound, int(cumulative)
        good += best_cum
    return total, good


def _counter_tally(snapshot: Mapping[str, object],
                   slo: SLO) -> Tuple[int, int]:
    """(total, good) events of an availability SLO in one snapshot."""
    doc = snapshot.get(slo.metric or "")
    if not isinstance(doc, dict) or doc.get("type") != "counter":
        return 0, 0
    total = good = 0
    for series in doc.get("series", []):
        if not _series_matches(series, slo.labels):
            continue
        value = series.get("value")
        if not isinstance(value, (int, float)) or value != value:
            continue
        labels = series.get("labels") or {}
        total += int(value)
        if not str(labels.get(slo.bad_label, "")).startswith(
                tuple(slo.bad_prefixes)):
            good += int(value)
    return total, good


def _verdict(slo: SLO, total: int, good: int,
             window: Optional[Tuple[int, int]] = None) -> Dict[str, object]:
    """Grade one objective from its (total, good) tallies."""
    budget = max(1e-9, 1.0 - slo.target)
    doc: Dict[str, object] = {
        "name": slo.name,
        "kind": slo.kind,
        "description": slo.description,
        "objective": slo.objective(),
        "total": total,
        "good": good,
    }
    if total <= 0:
        doc.update(compliance=None, burn_rate=None, budget_remaining=None,
                   status="no_data")
        return doc
    compliance = good / total
    burn = (1.0 - compliance) / budget
    doc.update(compliance=compliance, burn_rate=burn,
               budget_remaining=max(0.0, 1.0 - burn))
    status = "ok" if compliance >= slo.target else "breach"
    if window is not None:
        w_total, w_good = window
        w_burn = ((1.0 - w_good / w_total) / budget) if w_total > 0 else None
        doc["window"] = {"total": w_total, "good": w_good,
                         "burn_rate": w_burn}
        if status == "ok" and w_burn is not None and w_burn > 1.0:
            status = "at_risk"
    doc["status"] = status
    return doc


class SLOEngine:
    """Evaluates a fixed SLO set against a registry, tracking windows."""

    def __init__(self, slos: Optional[Sequence[SLO]] = None,
                 registry: MetricsRegistry = REGISTRY) -> None:
        self.slos: Tuple[SLO, ...] = tuple(
            slos if slos is not None else DEFAULT_SLOS)
        self.registry = registry
        self._last: Dict[str, Tuple[int, int]] = {}
        self._evaluations = 0

    def evaluate(self) -> Dict[str, object]:
        """Grade every objective now; the machine-readable ``/slo`` body."""
        snapshot = self.registry.snapshot()
        verdicts: List[Dict[str, object]] = []
        for slo in self.slos:
            tally = (_histogram_tally if slo.kind == "latency"
                     else _counter_tally)(snapshot, slo)
            total, good = tally
            prev_total, prev_good = self._last.get(slo.name, (0, 0))
            # Tallies are cumulative; a shrink means the metric was reset.
            if total >= prev_total and good >= prev_good:
                window = (total - prev_total, good - prev_good)
            else:
                window = (total, good)
            self._last[slo.name] = (total, good)
            verdicts.append(_verdict(slo, total, good, window=window))
        self._evaluations += 1
        worst = max(verdicts, default=None,
                    key=lambda v: _STATUS_RANK[v["status"]])
        return {
            "evaluated_at": time.time(),
            "evaluations": self._evaluations,
            "status": worst["status"] if verdicts else "no_data",
            "slos": verdicts,
        }


def evaluate_spans(slos: Sequence[SLO],
                   spans: Sequence[Mapping[str, object]],
                   ) -> Dict[str, object]:
    """Grade span-op objectives against a span set (offline reports).

    Latency objectives count a span good iff its duration is within the
    threshold; availability objectives count spans without an
    ``attrs["error"]`` as good.  No windows — a span log is one window.
    """
    verdicts: List[Dict[str, object]] = []
    for slo in slos:
        if not slo.span_op:
            continue
        total = good = 0
        for span in spans:
            if span.get("name") != slo.span_op:
                continue
            total += 1
            attrs = span.get("attrs")
            errored = isinstance(attrs, dict) and attrs.get("error")
            try:
                duration = float(span.get("duration_s", 0.0))
            except (TypeError, ValueError):
                duration = 0.0
            if slo.kind == "latency":
                good += int(duration <= slo.threshold_s and not errored)
            else:
                good += int(not errored)
        verdicts.append(_verdict(slo, total, good))
    worst = max(verdicts, default=None,
                key=lambda v: _STATUS_RANK[v["status"]])
    return {
        "status": worst["status"] if verdicts else "no_data",
        "slos": verdicts,
    }


#: The serving layer's default objectives — modest enough that a healthy
#: dev box passes, meaningful enough that a regression shows as a burn.
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO(name="http-latency",
        kind="latency",
        metric="repro_http_request_seconds",
        threshold_s=0.5, target=0.99,
        span_op="serve.request",
        description="99% of HTTP requests complete within 500 ms"),
    SLO(name="http-availability",
        kind="availability",
        metric="repro_http_responses_total",
        bad_label="code", bad_prefixes=("5",),
        target=0.999,
        span_op="serve.request",
        description="99.9% of responses are not 5xx"),
    SLO(name="job-queue-wait",
        kind="latency",
        metric="repro_job_queue_wait_seconds",
        threshold_s=30.0, target=0.95,
        span_op="serve.queue_wait",
        description="95% of jobs leave the queue within 30 s"),
    SLO(name="pipeline-map",
        kind="latency",
        metric="repro_pipeline_stage_seconds",
        labels={"stage": "map"},
        threshold_s=10.0, target=0.95,
        span_op="pipeline.map",
        description="95% of mapper stages complete within 10 s"),
)
