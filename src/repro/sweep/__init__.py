"""Batch sweep engine: run the pipeline over many scenarios, in parallel."""

from .results import (
    SweepRecord,
    add_append_hook,
    append_jsonl,
    default_store_path,
    load_jsonl,
    records_json,
    remove_append_hook,
    summary_rows,
)
from .runner import (
    DEFAULT_BASELINES,
    DEFAULT_CACHE_DIR,
    DEFAULT_RETRIES,
    DEFAULT_TASK_DEADLINE_S,
    SweepResult,
    cache_path,
    code_version,
    load_cached_record,
    pool_generation,
    respawn_pool,
    run_scenario,
    run_sweep,
    store_record,
    submit_scenario,
    worker_deaths,
)

__all__ = [
    "SweepRecord", "append_jsonl", "load_jsonl", "summary_rows",
    "records_json", "default_store_path", "add_append_hook",
    "remove_append_hook",
    "SweepResult", "run_sweep", "run_scenario",
    "cache_path", "code_version",
    "load_cached_record", "store_record", "submit_scenario",
    "pool_generation", "respawn_pool", "worker_deaths",
    "DEFAULT_CACHE_DIR", "DEFAULT_BASELINES",
    "DEFAULT_RETRIES", "DEFAULT_TASK_DEADLINE_S",
]
