"""ASCII trace timelines and span-log loading for ``repro trace``.

:func:`render_timeline` turns the spans of one trace into an indented
Gantt-style chart — one line per span, positioned and scaled against the
trace's total wall-clock window::

    trace 4be31c2e9f0d11aa — 6 spans, 812.4 ms
    serve.request             0.0ms |=====================| 812.4ms status=202
      serve.queue_wait        1.1ms |=|                      14.0ms
      serve.worker           15.2ms  |===================|  795.1ms
        sweep.run_scenario   16.0ms  |===================|  790.2ms ...

Span *trees* are rebuilt from ``parent_id`` links; orphans (parent fell
out of the ring buffer or lives in an unshipped process) render as
additional roots rather than disappearing.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, List, Optional, Sequence

from .logs import kv

__all__ = ["render_timeline", "load_span_log", "group_traces",
           "find_orphans"]

_BAR_WIDTH = 28


def load_span_log(path: str) -> List[Dict[str, object]]:
    """Every valid span of a JSONL span log (bad lines warn, not raise)."""
    spans: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError as exc:
                warnings.warn(f"{path}:{lineno}: skipping bad span line "
                              f"({exc})", stacklevel=2)
                continue
            if isinstance(span, dict) and "trace_id" in span:
                spans.append(span)
            else:
                warnings.warn(f"{path}:{lineno}: skipping non-span line",
                              stacklevel=2)
    return spans


def group_traces(spans: Sequence[Dict[str, object]]
                 ) -> Dict[str, List[Dict[str, object]]]:
    """Spans grouped by trace id, ordered by each trace's first start."""
    groups: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        groups.setdefault(str(span["trace_id"]), []).append(span)
    ordered = sorted(groups.items(),
                     key=lambda item: min(s.get("start_ts", 0.0)
                                          for s in item[1]))
    return dict(ordered)


def find_orphans(spans: Sequence[Dict[str, object]]
                 ) -> List[Dict[str, object]]:
    """Spans whose recorded parent is missing from the span set.

    Orphans mean the log is incomplete: the parent fell out of the ring
    buffer, lives in a process whose spans were never shipped home, or the
    log rotated mid-trace.  ``repro trace`` turns a non-empty result into
    a diagnostic (and a non-zero exit) so truncated timelines are never
    mistaken for complete ones.
    """
    ids = {s.get("span_id") for s in spans}
    return [s for s in spans
            if s.get("parent_id") is not None
            and s.get("parent_id") not in ids]


def _attr_summary(attrs: Dict[str, object], limit: int = 4) -> str:
    flat: Dict[str, object] = {}
    for key, value in (attrs or {}).items():
        if key == "perf" and isinstance(value, dict):
            for counter, delta in value.items():
                flat[f"perf.{counter}"] = delta
        else:
            flat[key] = value
    shown = dict(list(flat.items())[:limit])
    text = kv(**shown)
    if len(flat) > limit:
        text += " …"
    return text


def _bar(offset_s: float, duration_s: float, total_s: float) -> str:
    if total_s <= 0:
        return "|" + "=" * _BAR_WIDTH + "|"
    start = int(round(_BAR_WIDTH * offset_s / total_s))
    length = max(1, int(round(_BAR_WIDTH * duration_s / total_s)))
    start = min(start, _BAR_WIDTH - 1)
    length = min(length, _BAR_WIDTH - start)
    return " " * start + "|" + "=" * length + "|"


def render_timeline(spans: Sequence[Dict[str, object]],
                    trace_id: Optional[str] = None) -> str:
    """The spans of one trace as an indented ASCII timeline."""
    spans = [dict(span) for span in spans
             if trace_id is None or span.get("trace_id") == trace_id]
    if not spans:
        return "(no spans)"
    spans.sort(key=lambda s: (s.get("start_ts", 0.0),
                              s.get("duration_s", 0.0)))
    t0 = min(s.get("start_ts", 0.0) for s in spans)
    end = max(s.get("start_ts", 0.0) + s.get("duration_s", 0.0)
              for s in spans)
    total = end - t0

    by_id = {s.get("span_id"): s for s in spans}
    children: Dict[object, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    name_width = max(len(str(s.get("name", "?"))) + 2 * _depth(s, by_id)
                     for s in spans)
    tid = str(spans[0].get("trace_id", "?"))
    lines = [f"trace {tid} — {len(spans)} spans, {total * 1e3:.1f} ms"]

    def emit(span: Dict[str, object], depth: int) -> None:
        name = "  " * depth + str(span.get("name", "?"))
        offset = span.get("start_ts", 0.0) - t0
        duration = span.get("duration_s", 0.0)
        line = (f"{name:<{name_width}} {offset * 1e3:>9.1f}ms "
                f"{_bar(offset, duration, total):<{_BAR_WIDTH + 2}} "
                f"{duration * 1e3:>9.1f}ms")
        summary = _attr_summary(span.get("attrs") or {})
        if summary:
            line += f"  {summary}"
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            line += f"  [orphan: parent {str(parent)[:16]} not in log]"
        lines.append(line.rstrip())
        for child in children.get(span.get("span_id"), []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def _depth(span: Dict[str, object],
           by_id: Dict[object, Dict[str, object]]) -> int:
    depth = 0
    seen = set()
    current = span
    while True:
        parent = current.get("parent_id")
        if parent is None or parent not in by_id or parent in seen:
            return depth
        seen.add(parent)
        current = by_id[parent]
        depth += 1
