"""Tests of constraints checking, aggregation and plan quality metrics."""

import pytest

from repro.core import (
    Aggregator,
    check_completeness,
    check_constraints,
    compare_plans,
    coverage_graph,
    evaluate_plan,
    find_collisions,
    global_clique_plan,
    ground_truth_store,
    harmful_collisions,
    independent_pairs_plan,
    measurement_periods,
    plan_from_view,
    random_partition_plan,
    subnet_plan,
    Clique,
    DeploymentPlan,
    host_pair,
)
from repro.netsim import FlowModel, build_ens_lyon
from repro.simkernel import Engine


class TestCollisions:
    def test_independent_pairs_collide_on_shared_media(self, ens_lyon):
        plan = independent_pairs_plan(ens_lyon, ["myri0", "myri1", "myri2"])
        collisions = find_collisions(plan, ens_lyon)
        assert collisions, "three pairs on one hub must collide"

    def test_single_clique_never_collides(self, ens_lyon):
        plan = global_clique_plan(ens_lyon)
        assert find_collisions(plan, ens_lyon) == []

    def test_env_plan_has_no_harmful_collisions(self, ens_lyon, ens_plan):
        assert harmful_collisions(ens_plan, ens_lyon) == 0

    def test_independent_pairs_have_harmful_collisions(self, ens_lyon):
        plan = independent_pairs_plan(ens_lyon, ["myri0", "myri1", "myri2", "popc0"])
        assert harmful_collisions(plan, ens_lyon) > 0

    def test_collision_report_names_shared_elements(self, ens_lyon):
        plan = independent_pairs_plan(ens_lyon, ["myri1", "myri2", "myri0"])
        report = find_collisions(plan, ens_lyon)[0]
        assert report.shared_elements
        assert report.clique_a != report.clique_b


class TestCompletenessAndAggregation:
    def test_env_plan_is_complete(self, ens_plan):
        unreachable, uncovered = check_completeness(ens_plan)
        assert unreachable == []
        # the master runs no sensor in the paper's plan: it may be uncovered
        assert set(uncovered) <= {"the-doors"}

    def test_random_plan_is_incomplete(self, ens_lyon):
        plan = random_partition_plan(ens_lyon, clique_size=3, seed=1)
        unreachable, _ = check_completeness(plan)
        assert unreachable

    def test_coverage_graph_marks_direct_and_representative(self, ens_plan):
        graph = coverage_graph(ens_plan)
        assert graph.edges["canaria", "moby"]["direct"] is True
        assert graph.edges["the-doors", "canaria"]["direct"] is False

    def test_aggregated_latency_is_sum_and_bandwidth_is_min(self, ens_lyon, ens_plan):
        aggregator = Aggregator(ens_plan, ground_truth_store(ens_lyon))
        estimate = aggregator.estimate("moby", "sci3")
        assert estimate is not None
        assert estimate.method == "aggregated"
        # the 10 Mbit/s bottleneck dominates the composed bandwidth
        assert estimate.bandwidth_mbps == pytest.approx(10.0, rel=0.05)
        # path latency is at least the direct route latency
        direct = ens_lyon.route("moby", "sci3").latency
        assert estimate.latency_s >= direct * 0.9

    def test_direct_pair_estimate_matches_ground_truth(self, ens_lyon, ens_plan):
        aggregator = Aggregator(ens_plan, ground_truth_store(ens_lyon))
        estimate = aggregator.estimate("sci1", "sci2")
        fm = FlowModel(Engine(), ens_lyon)
        assert estimate.method == "direct"
        assert estimate.bandwidth_mbps == pytest.approx(
            fm.single_flow_mbps("sci1", "sci2"))

    def test_same_host_estimate(self, ens_lyon, ens_plan):
        aggregator = Aggregator(ens_plan, ground_truth_store(ens_lyon))
        estimate = aggregator.estimate("moby", "moby")
        assert estimate.latency_s == 0.0

    def test_estimate_none_when_disconnected(self, ens_lyon):
        plan = DeploymentPlan(hosts=["moby", "canaria", "sci1"])
        plan.cliques.append(Clique(name="c", hosts=("moby", "canaria")))
        aggregator = Aggregator(plan, ground_truth_store(ens_lyon))
        assert aggregator.estimate("moby", "sci1") is None

    def test_estimate_all_pairs_covers_everything(self, ens_lyon, ens_plan):
        aggregator = Aggregator(ens_plan, ground_truth_store(ens_lyon))
        estimates = aggregator.estimate_all_pairs()
        n = len(ens_plan.hosts)
        assert len(estimates) == n * (n - 1) // 2


class TestQualityMetrics:
    def test_measurement_period_grows_quadratically(self):
        plan = DeploymentPlan(hosts=list("abcdefgh"))
        plan.cliques.append(Clique(name="small", hosts=("a", "b")))
        plan.cliques.append(Clique(name="large", hosts=tuple("abcdefgh")))
        periods = measurement_periods(plan, experiment_seconds=1.0)
        assert periods["small"] == pytest.approx(2.0)
        assert periods["large"] == pytest.approx(56.0)

    def test_constraint_report_summary_shape(self, ens_lyon, ens_plan):
        report = check_constraints(ens_plan, ens_lyon)
        summary = report.summary()
        assert set(summary) >= {"collision_free", "complete", "intrusiveness"}
        assert 0.0 <= report.intrusiveness <= 1.0

    def test_env_plan_less_intrusive_than_global(self, ens_lyon, ens_plan):
        env_report = evaluate_plan(ens_plan, ens_lyon)
        global_report = evaluate_plan(global_clique_plan(ens_lyon), ens_lyon)
        assert env_report.measured_pairs < global_report.measured_pairs
        assert env_report.worst_period_s < global_report.worst_period_s

    def test_env_plan_complete_unlike_subnet_plan(self, ens_lyon, ens_plan):
        env_report = evaluate_plan(ens_plan, ens_lyon)
        subnet_report = evaluate_plan(subnet_plan(ens_lyon), ens_lyon)
        assert env_report.completeness == pytest.approx(1.0)
        assert subnet_report.completeness < 1.0

    def test_compare_plans_keeps_names(self, ens_lyon, ens_plan):
        reports = compare_plans({"env": ens_plan,
                                 "global": global_clique_plan(ens_lyon)}, ens_lyon)
        assert [r.planner for r in reports] == ["env", "global"]
        rows = [r.as_row() for r in reports]
        assert all("completeness" in row for row in rows)


class TestBaselines:
    def test_global_clique_contains_all_hosts(self, ens_lyon):
        plan = global_clique_plan(ens_lyon)
        assert plan.cliques[0].size == len(ens_lyon.host_names())

    def test_independent_pairs_count(self, ens_lyon):
        hosts = ens_lyon.host_names()
        plan = independent_pairs_plan(ens_lyon, hosts)
        n = len(hosts)
        assert len(plan.cliques) == n * (n - 1) // 2

    def test_random_partition_covers_all_hosts(self, ens_lyon):
        plan = random_partition_plan(ens_lyon, clique_size=4, seed=9)
        assert plan.monitored_hosts() == set(ens_lyon.host_names())

    def test_random_partition_rejects_tiny_cliques(self, ens_lyon):
        with pytest.raises(ValueError):
            random_partition_plan(ens_lyon, clique_size=1)

    def test_random_partition_deterministic_per_seed(self, ens_lyon):
        a = random_partition_plan(ens_lyon, clique_size=4, seed=5)
        b = random_partition_plan(ens_lyon, clique_size=4, seed=5)
        assert [c.hosts for c in a.cliques] == [c.hosts for c in b.cliques]

    def test_subnet_plan_groups_by_prefix(self, ens_lyon):
        plan = subnet_plan(ens_lyon)
        sci_clique = next(c for c in plan.cliques if "sci1" in c.hosts)
        assert set(sci_clique.hosts) == {f"sci{i}" for i in range(1, 7)}
