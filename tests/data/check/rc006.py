"""RC006 fixture: lambdas/closures/bound methods at the pool boundary."""


def worker(x):
    return x


def dispatch(pool, items, obj):
    def helper(x):
        return x

    pool.apply_async(worker, (items,))        # fine: module-level callable
    pool.apply_async(lambda x: x, (items,))
    pool.apply_async(helper, (items,))
    pool.apply_async(obj.run, (items,))
