"""RC004 fixture: blocking calls inside async def under serve/."""
import subprocess
import time


async def handler(pool_result):
    time.sleep(0.1)
    subprocess.run(["true"])
    data = open("x").read()
    value = pool_result.get()
    return data, value


async def clean(queue):
    return await queue.get()         # fine: awaited asyncio queue


def sync_helper():                   # fine: not async
    time.sleep(0.1)
