"""Runtime telemetry, metrics history, flight recorder and span export.

Covers the PR 10 observability surface end to end:

* :class:`repro.obs.history.MetricsHistory` — ring wraparound, windowed
  counter/gauge/histogram derivation with injected clocks, name filters;
* :class:`repro.obs.runtime.RuntimeSampler` — process readings, the GC
  watch, the standard Prometheus process metrics, worker-payload ingest,
  and the real two-process merge over the pool result channel;
* :class:`repro.obs.flightrec.FlightRecorder` — bundle contents, cooldown
  rate-limiting, pruning, and graceful failure under injected ENOSPC;
* :mod:`repro.obs.export` — Chrome-trace golden math and the
  ``repro trace --format chrome`` round-trip, plus dashboard rendering;
* the serve endpoints ``GET /metrics/history`` and ``POST /debug/dump``.
"""

import asyncio
import gc
import glob
import json
import os
import time

import pytest

from repro.cli import main as cli_main
from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    render_dashboard,
    sparkline,
)
from repro.obs.flightrec import FLIGHT, FlightRecorder
from repro.obs.history import MetricsHistory, base_name, \
    percentile_from_buckets
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.runtime import (
    RUNTIME,
    RuntimeSampler,
    cpu_seconds,
    open_fds,
    rss_bytes,
    task_runtime,
)
from repro.serve import ReproApp, start_server
from repro.sweep.runner import submit_scenario


# ---------------------------------------------------------------------------
# helpers


@pytest.fixture(autouse=True)
def _flight_hygiene():
    """The flight recorder is a process singleton; never leak a config."""
    yield
    clear_plan()
    FLIGHT.configure(flight_dir=None, history=None, health_fn=None,
                     cooldown_s=30.0, max_bundles=16)
    FLIGHT.reset_cooldowns()


def _filled_history(capacity=8, interval=5.0):
    """A private registry + history with deterministic, injected clocks."""
    registry = MetricsRegistry()
    counter = registry.counter("t_requests_total", "test counter")
    gauge = registry.gauge("t_depth", "test gauge")
    hist = registry.histogram("t_latency_seconds", "test histogram",
                              buckets=(0.01, 0.1, 1.0))
    history = MetricsHistory(registry=registry, capacity=capacity,
                             interval_s=interval)
    return registry, history, counter, gauge, hist


# ---------------------------------------------------------------------------
# metrics history


class TestMetricsHistory:
    def test_ring_wraps_at_capacity(self):
        _, history, counter, _, _ = _filled_history(capacity=8)
        counter.inc(0)
        for index in range(20):
            history.snap(ts=1000.0 + index, mono=float(index))
        assert len(history) == 8
        window = history.window(100.0)
        # Only the surviving tail is visible: snapshots 12..19.
        assert window["snapshots"] == 8
        assert window["from_ts"] == 1012.0
        assert window["to_ts"] == 1019.0

    def test_counter_window_delta_and_rate(self):
        _, history, counter, _, _ = _filled_history(capacity=16)
        counter.inc(0)
        for index in range(6):
            history.snap(ts=2000.0 + index * 5.0, mono=index * 5.0)
            counter.inc(10)
        window = history.window(60.0)
        series = window["series"]["t_requests_total"]
        assert series["type"] == "counter"
        # 5 increments of 10 landed between the first and last snapshot,
        # 25 monotonic seconds apart.
        assert series["delta"] == 50.0
        assert series["rate_per_s"] == pytest.approx(2.0)

    def test_gauge_window_last_min_max(self):
        _, history, _, gauge, _ = _filled_history()
        for index, value in enumerate((5.0, 1.0, 9.0, 4.0)):
            gauge.set(value)
            history.snap(ts=3000.0 + index, mono=float(index))
        series = history.window(60.0)["series"]["t_depth"]
        assert series["last"] == 4.0
        assert series["min"] == 1.0
        assert series["max"] == 9.0

    def test_histogram_window_percentiles_from_bucket_deltas(self):
        _, history, _, _, hist = _filled_history()
        hist.observe(0.005)                    # pre-window observation
        history.snap(ts=4000.0, mono=0.0)
        for _ in range(95):
            hist.observe(0.05)                 # bucket <= 0.1
        for _ in range(5):
            hist.observe(0.5)                  # bucket <= 1.0
        history.snap(ts=4010.0, mono=10.0)
        series = history.window(60.0)["series"]["t_latency_seconds"]
        assert series["count_delta"] == 100
        assert series["rate_per_s"] == pytest.approx(10.0)
        # The pre-window 0.005 observation is subtracted out, so p50/p95
        # land in the 0.1 bucket (cumulative 95 >= both thresholds) and
        # p99 spills into the 1.0 bucket.
        assert series["p50"] == 0.1
        assert series["p95"] == 0.1
        assert series["p99"] == 1.0

    def test_window_trims_to_horizon(self):
        _, history, _, gauge, _ = _filled_history(capacity=32)
        gauge.set(1.0)
        for index in range(10):
            history.snap(ts=5000.0 + index * 10.0, mono=index * 10.0)
        window = history.window(25.0)
        # Horizon is last mono (90) - 25 = 65: snapshots at 70, 80, 90.
        assert window["snapshots"] == 3

    def test_names_filter_matches_bare_and_labelled(self):
        registry = MetricsRegistry()
        registry.counter("t_a_total", "a", labels=("k",)) \
            .labels(k="x").inc(1)
        registry.counter("t_a_extra_total", "decoy").inc(1)
        registry.gauge("t_b", "b").set(2.0)
        history = MetricsHistory(registry=registry)
        history.snap(ts=1.0, mono=0.0)
        keys = set(history.window(60.0, names=["t_a_total"])["series"])
        assert keys == {"t_a_total{k=x}"}, \
            "the prefix match must not swallow t_a_extra_total"

    def test_empty_history_window(self):
        _, history, _, _, _ = _filled_history()
        window = history.window(60.0)
        assert window["snapshots"] == 0
        assert window["series"] == {}

    def test_snapshot_thread_starts_and_stops(self):
        _, history, counter, _, _ = _filled_history(interval=0.02)
        counter.inc(1)
        history.start()
        deadline = time.monotonic() + 5.0
        while len(history) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        history.stop()
        assert len(history) >= 3
        settled = len(history)
        time.sleep(0.08)
        assert len(history) == settled, "thread kept snapping after stop"

    def test_snapshot_hook_errors_are_counted_not_fatal(self):
        def broken():
            raise RuntimeError("boom")

        registry = MetricsRegistry()
        history = MetricsHistory(registry=registry, on_snapshot=broken)
        history.snap(ts=1.0, mono=0.0)
        history.snap(ts=2.0, mono=1.0)
        assert history.snap_errors == 2
        assert len(history) == 2

    def test_percentile_from_buckets(self):
        buckets = {"0.1": 50, "1.0": 90, "+Inf": 100}
        assert percentile_from_buckets(buckets, 0.50) == 0.1
        assert percentile_from_buckets(buckets, 0.90) == 1.0
        assert percentile_from_buckets(buckets, 0.99) is None   # in +Inf
        assert percentile_from_buckets({}, 0.5) is None
        assert percentile_from_buckets({"+Inf": 0}, 0.5) is None

    def test_base_name(self):
        assert base_name("a_total{k=v}") == "a_total"
        assert base_name("a_total") == "a_total"


# ---------------------------------------------------------------------------
# the runtime sampler


class TestRuntimeSampler:
    def test_process_readings_are_sane(self):
        assert rss_bytes() > 1024 * 1024        # a python process is > 1MiB
        assert cpu_seconds() > 0.0
        assert open_fds() >= 3.0                # stdio at minimum

    def test_sample_updates_last_and_peak(self):
        sampler = RuntimeSampler(registry=MetricsRegistry())
        snapshot = sampler.sample()
        for key in ("ts", "rss_bytes", "cpu_s", "open_fds", "threads",
                    "gc_collections", "gc_pause_s", "loop_lag_s"):
            assert key in snapshot
        assert sampler.samples_taken == 1
        assert sampler.peak_rss == snapshot["rss_bytes"]
        assert sampler.last == snapshot

    def test_gc_watch_counts_collections(self):
        sampler = RuntimeSampler(registry=MetricsRegistry())
        sampler.gc_watch.install()
        try:
            before = sum(sampler.gc_watch.collections)
            gc.collect()
            gc.collect()
            assert sum(sampler.gc_watch.collections) >= before + 2
            assert sum(sampler.gc_watch.pause_s) >= 0.0
        finally:
            sampler.gc_watch.remove()
        settled = sum(sampler.gc_watch.collections)
        gc.collect()
        assert sum(sampler.gc_watch.collections) == settled

    def test_start_stop_thread_lifecycle(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry=registry)
        sampler.start(interval_s=0.02)
        try:
            assert sampler.running
            deadline = time.monotonic() + 5.0
            while sampler.samples_taken < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sampler.samples_taken >= 3
            sampler.start()                     # idempotent
        finally:
            sampler.stop()
        assert not sampler.running
        state = sampler.state()
        assert state["running"] is False
        assert state["samples_taken"] >= 3
        json.dumps(state)                       # JSON-safe for bundles

    def test_standard_process_metrics_on_prometheus_exposition(self):
        # RUNTIME registered the standard names on the global registry at
        # import; off-the-shelf process dashboards read these unchanged.
        text = REGISTRY.render_prometheus()
        assert "# TYPE process_resident_memory_bytes gauge" in text
        assert "# TYPE process_cpu_seconds_total counter" in text
        assert "# TYPE process_open_fds gauge" in text
        for line in text.splitlines():
            if line.startswith("process_resident_memory_bytes "):
                assert float(line.split()[1]) > 0
                break
        else:
            raise AssertionError("no process_resident_memory_bytes sample")

    def test_ingest_folds_worker_payload(self):
        registry = MetricsRegistry()
        sampler = RuntimeSampler(registry=registry)
        payload = {"pid": 4242, "peak_rss_bytes": 123456.0, "cpu_s": 1.5,
                   "gc_collections": {"0": 3, "2": 1}, "samples": 7}
        assert sampler.ingest(payload)
        assert registry.value("repro_worker_peak_rss_bytes") == 123456.0
        assert registry.value("repro_worker_cpu_seconds_total") == 1.5
        assert registry.value("repro_worker_gc_collections_total",
                              generation="0") == 3.0
        # A lower peak from the next task must not regress the gauge.
        sampler.ingest({"peak_rss_bytes": 99.0, "cpu_s": 0.5})
        assert registry.value("repro_worker_peak_rss_bytes") == 123456.0
        assert registry.value("repro_worker_cpu_seconds_total") == 2.0

    def test_ingest_rejects_junk(self):
        sampler = RuntimeSampler(registry=MetricsRegistry())
        assert not sampler.ingest(None)
        assert not sampler.ingest("nonsense")
        assert not sampler.ingest({})  # empty dict carries nothing

    def test_loop_monitor_measures_lag(self):
        sampler = RuntimeSampler(registry=MetricsRegistry())

        async def scenario():
            loop = asyncio.get_running_loop()
            sampler.arm_loop_monitor(loop, interval_s=0.02)
            # Block the loop thread outright: the next tick observes the
            # full stall as lag.
            time.sleep(0.1)
            await asyncio.sleep(0.05)
            sampler.disarm_loop_monitor()

        asyncio.run(scenario())
        assert sampler.loop_lag_s == 0.0        # disarm resets the gauge

    def test_task_runtime_capture(self):
        with task_runtime(interval_s=0.01) as capture:
            blob = [list(range(1000)) for _ in range(200)]
            gc.collect()
            del blob
        payload = capture.as_payload()
        assert payload["pid"] == os.getpid()
        assert payload["peak_rss_bytes"] > 0
        assert payload["cpu_s"] >= 0.0
        assert isinstance(payload["gc_collections"], dict)
        json.dumps(payload)                     # pickle/JSON-safe shape


class TestWorkerRuntimeMerge:
    def test_worker_runtime_ships_home_and_merges(self):
        # The real two-process path: the pool worker captures its runtime
        # and the payload rides the result channel like perf counters.
        from repro.obs.trace import TRACER

        TRACER.configure(sample_rate=1.0)
        try:
            with TRACER.start_trace("runtime-merge-test"):
                async_result = submit_scenario("star-hub-8", processes=1)
            record, deltas, spans, profile, runtime = \
                async_result.get(timeout=180)
        finally:
            TRACER.configure(sample_rate=0.0)
        assert record.ok, record.error
        assert isinstance(runtime, dict)
        assert runtime["pid"] != os.getpid(), \
            "runtime must be captured in the worker process"
        assert runtime["peak_rss_bytes"] > 0
        assert runtime["cpu_s"] >= 0.0
        # Worker spans were pid-stamped for the Perfetto exporter.
        assert spans, "worker spans expected (sampled trace context)"
        assert all(s["attrs"].get("pid") == runtime["pid"] for s in spans)
        # The parent folds the payload into repro_worker_* series.
        before = REGISTRY.value("repro_worker_cpu_seconds_total") or 0.0
        assert RUNTIME.ingest(runtime)
        peak = REGISTRY.value("repro_worker_peak_rss_bytes")
        assert peak is not None and peak >= runtime["peak_rss_bytes"]
        assert REGISTRY.value("repro_worker_cpu_seconds_total") == \
            pytest.approx(before + runtime["cpu_s"])


# ---------------------------------------------------------------------------
# the flight recorder


class TestFlightRecorder:
    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder()
        assert not recorder.enabled
        assert recorder.dump("manual") is None
        assert recorder.maybe_dump("manual") is False

    def test_dump_writes_a_loadable_bundle(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("t_total", "t").inc(5)
        history = MetricsHistory(registry=registry)
        recorder = FlightRecorder(flight_dir=str(tmp_path))
        recorder.configure(history=history,
                           health_fn=lambda: {"status": "ok",
                                              "breakers": {}})
        path = recorder.dump("manual")
        assert path is not None and os.path.exists(path)
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["schema"] == 1
        assert doc["reason"] == "manual"
        assert doc["pid"] == os.getpid()
        assert doc["healthz"]["status"] == "ok"
        # The bundle snaps history first, so the window is never empty.
        assert doc["metrics_history"]["snapshots"] >= 1
        assert "t_total" in doc["metrics_history"]["series"]
        assert isinstance(doc["spans"], list)
        assert "runtime" in doc

    def test_cooldown_rate_limits_per_reason(self, tmp_path):
        recorder = FlightRecorder(flight_dir=str(tmp_path),
                                  cooldown_s=60.0)
        assert recorder.maybe_dump("breaker-open") is True
        assert recorder.maybe_dump("breaker-open") is False, \
            "same reason within cooldown must be suppressed"
        assert recorder.maybe_dump("slo-breach") is True, \
            "cooldowns are per reason"
        recorder.reset_cooldowns()
        assert recorder.maybe_dump("breaker-open") is True

    def test_prune_keeps_newest_bundles(self, tmp_path):
        recorder = FlightRecorder(flight_dir=str(tmp_path), max_bundles=3)
        for _ in range(6):
            assert recorder.dump("manual") is not None
        remaining = sorted(os.listdir(tmp_path))
        assert len(remaining) == 3
        # Sequence numbers are zero-padded, so lexical order is dump order
        # and the survivors are the three newest.
        assert [name.split("-")[2] for name in remaining] == \
            ["0004", "0005", "0006"]

    def test_dump_survives_injected_enospc(self, tmp_path):
        recorder = FlightRecorder(flight_dir=str(tmp_path / "flight"))
        errors_before = REGISTRY.value("repro_flight_dump_errors_total") \
            or 0.0
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match=str(tmp_path), times=-1),)))
        try:
            assert recorder.dump("manual") is None
        finally:
            clear_plan()
        assert REGISTRY.value("repro_flight_dump_errors_total") == \
            errors_before + 1
        assert not glob.glob(str(tmp_path / "flight" / "*.json")), \
            "no torn bundle may survive a failed write"
        # The disk recovers: the next dump succeeds.
        assert recorder.dump("manual") is not None


# ---------------------------------------------------------------------------
# span export + dashboard


class TestChromeExport:
    SPANS = [
        {"name": "parent", "trace_id": "t1", "span_id": "s1",
         "parent_id": None, "start_ts": 100.0, "duration_s": 0.5,
         "attrs": {}},
        {"name": "child", "trace_id": "t1", "span_id": "s2",
         "parent_id": "s1", "start_ts": 100.1, "duration_s": 0.2,
         "attrs": {"pid": 777, "scenario": "ring-4"}},
    ]

    def test_golden_event_math(self):
        doc = chrome_trace(self.SPANS)
        assert doc["displayTimeUnit"] == "ms"
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["parent", "child"]
        parent, child = events
        assert parent["ts"] == 100.0 * 1e6      # wall seconds → µs
        assert parent["dur"] == 0.5 * 1e6
        assert parent["pid"] == 0               # unstamped → submitter
        assert child["pid"] == 777              # worker-stamped
        assert child["args"]["scenario"] == "ring-4"
        assert child["args"]["parent_id"] == "s1"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"]): e["args"]["name"] for e in meta}
        assert names[("process_name", 0)] == "repro"
        assert names[("process_name", 777)] == "worker-777"

    def test_malformed_spans_are_skipped(self):
        doc = chrome_trace([{"no_start": True}, "junk", None,
                            {"name": "ok", "trace_id": "t", "start_ts": 1.0,
                             "duration_s": None, "attrs": {}}])
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 1
        assert events[0]["dur"] == 0.0          # None duration clamps to 0

    def test_cli_round_trip(self, tmp_path, capsys):
        log = tmp_path / "spans.jsonl"
        with open(log, "w", encoding="utf-8") as handle:
            for span in self.SPANS:
                handle.write(json.dumps(span) + "\n")
        out = tmp_path / "trace.json"
        status = cli_main(["trace", str(log), "--format", "chrome",
                           "--out", str(out)])
        assert status == 0
        with open(out, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert {e["name"] for e in doc["traceEvents"]
                if e["ph"] == "X"} == {"parent", "child"}
        capsys.readouterr()

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, None, 10.0])
        assert line[0] == "▁" and line[1] == " " and line[2] == "█"
        assert len(sparkline(list(range(100)), width=10)) == 10

    def test_render_dashboard_smoke(self):
        history = {"window_s": 60.0, "snapshots": 3, "series": {
            "repro_http_responses_total{code=2xx}": {
                "type": "counter", "rate_per_s": 1.5,
                "points": [[0.0, 0.0], [1.0, 1.0], [2.0, 3.0]]},
            "process_resident_memory_bytes": {
                "type": "gauge", "last": 50.0 * 1024 * 1024,
                "points": [[0.0, 4e7], [2.0, 5e7]]},
        }}
        healthz = {"status": "ok", "uptime_s": 12.0,
                   "breakers": {"bad-scn": {"state": "open"}}}
        frame = render_dashboard(history, healthz, url="http://x:1")
        assert "repro top — http://x:1" in frame
        assert "status: ok" in frame
        assert "2xx:1.50/s" in frame
        assert "50.0MiB" in frame
        assert "bad-scn:open" in frame


# ---------------------------------------------------------------------------
# the serve endpoints


async def _http(port, method, target, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = body if body is not None else b""
        lines = [f"{method} {target} HTTP/1.1", "Host: test"]
        if payload:
            lines.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = (await reader.readline()).decode().strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        blob = await reader.readexactly(length) if length else b""
        return status, blob
    finally:
        writer.close()
        await writer.wait_closed()


def _with_app(coro_fn, **app_kwargs):
    async def runner():
        app = ReproApp(**app_kwargs)
        server, port = await start_server(app)
        try:
            return await coro_fn(app, port)
        finally:
            server.close()
            await server.wait_closed()
            await app.close()
    return asyncio.run(runner())


class TestServeEndpoints:
    def test_metrics_history_endpoint(self, tmp_path):
        async def scenario(app, port):
            status, blob = await _http(port, "GET", "/healthz")
            assert status == 200
            status, blob = await _http(
                port, "GET", "/metrics/history?window=60")
            assert status == 200
            doc = json.loads(blob)
            assert doc["snapshots"] >= 1        # start() snaps immediately
            assert "process_resident_memory_bytes" in doc["series"]
            # The names filter prunes the response.
            status, blob = await _http(
                port, "GET",
                "/metrics/history?window=60&names=repro_jobs_pending")
            filtered = json.loads(blob)
            assert set(filtered["series"]) == {"repro_jobs_pending"}
            # Bad window values are a 400, not a 500.
            status, _ = await _http(
                port, "GET", "/metrics/history?window=bogus")
            assert status == 400

        _with_app(scenario, cache_dir=str(tmp_path), pool_processes=1)

    def test_debug_dump_disabled_and_enabled(self, tmp_path):
        async def scenario(app, port):
            # No --flight-dir: the trigger is a 409, not a silent no-op.
            status, _ = await _http(port, "POST", "/debug/dump")
            assert status == 409

        _with_app(scenario, cache_dir=str(tmp_path), pool_processes=1)

        flight = tmp_path / "flight"

        async def armed(app, port):
            status, blob = await _http(port, "POST", "/debug/dump")
            assert status == 200
            payload = json.loads(blob)
            assert payload["reason"] == "manual"
            assert os.path.exists(payload["path"])
            status, _ = await _http(port, "GET", "/debug/dump")
            assert status == 405

        _with_app(armed, cache_dir=str(tmp_path), pool_processes=1,
                  flight_dir=str(flight))
        bundles = glob.glob(str(flight / "flight-manual-*.json"))
        assert len(bundles) == 1
