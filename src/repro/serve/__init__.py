"""``repro.serve`` — the async results/scenario API.

A stdlib-only asyncio HTTP/JSON service over everything the repo computes:
the scenario registry (:mod:`repro.scenarios` + imported families), the
JSONL sweep result store (indexed for O(matches) queries by
:mod:`repro.serve.store`), and pipeline execution (queued onto the shared
sweep worker pool by :mod:`repro.serve.jobs`).

Quick start::

    $ repro serve --port 8765
    $ curl localhost:8765/scenarios
    $ curl localhost:8765/results?scenario=star-hub-8
    $ curl -X POST localhost:8765/runs -d '{"scenario": "star-hub-8"}'

See README.md, "Serving results".
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Tuple

from ..obs.logs import get_logger, kv
from .app import LRUCache, ReproApp
from .catalog import catalog_etag, catalog_json, catalog_payload, \
    scenario_record
from .http import HTTPError, Request, Response, json_response, serve_http
from .jobs import Job, JobQueue, QueueFull
from .store import ResultStore, index_path

__all__ = [
    "ReproApp", "LRUCache",
    "ResultStore", "index_path",
    "Job", "JobQueue", "QueueFull",
    "Request", "Response", "HTTPError", "json_response", "serve_http",
    "scenario_record", "catalog_payload", "catalog_etag", "catalog_json",
    "start_server", "run_server",
]


async def start_server(app: ReproApp, host: str = "127.0.0.1",
                       port: int = 0) -> Tuple["asyncio.base_events.Server",
                                               int]:
    """Start ``app``'s background machinery and its HTTP listener.

    Returns ``(server, bound_port)`` — with ``port=0`` the kernel picks an
    ephemeral port.
    """
    app.start()
    server = await serve_http(app.handle, host=host, port=port,
                              draining=lambda: app.draining)
    bound = server.sockets[0].getsockname()[1]
    return server, bound


def run_server(app: ReproApp, host: str = "127.0.0.1", port: int = 8765,
               announce=None, drain_timeout_s: float = 10.0) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    The blocking CLI entry point.  On the first SIGTERM (or Ctrl-C) the
    server stops accepting connections, refuses new job submissions,
    waits up to ``drain_timeout_s`` for in-flight jobs, flushes the
    result store (in-memory fallback records, the sidecar index) and
    exits 0 — no half-written state, no abandoned clients.  A second
    signal during the drain aborts it.

    ``announce`` is called once with the bound port — the CLI prints the
    URL from it, and ``--port 0`` smoke harnesses parse that line to learn
    the ephemeral port.
    """
    async def _main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        server, bound = await start_server(app, host=host, port=port)
        if announce is not None:
            announce(bound)
        try:
            await stop.wait()
        finally:
            # Stop accepting first (close the listener; responses on live
            # keep-alive connections now carry Connection: close via the
            # draining predicate), then drain jobs + flush the store, then
            # tear the machinery down.
            server.close()
            await server.wait_closed()
            await app.drain(timeout_s=drain_timeout_s)
            await app.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # Fallback for platforms without add_signal_handler: still exit
        # cleanly, just without the async drain.
        get_logger("serve").info("event=interrupt %s",
                                 kv(drain="skipped"))
