#!/usr/bin/env python
"""Mapping a firewalled platform side by side and merging the views (§4.3).

The popc.private domain of ENS-Lyon cannot talk to the outside world: only
the dual-homed gateways (popc0, myri0, sci0) can.  The paper's workflow is to
run ENV once on each side of the firewall and merge the two GridML documents,
declaring the gateway aliases.  This example reproduces that workflow step by
step and writes the three GridML files (public side, private side, merged).

Run with:  python examples/firewalled_mapping.py [output_directory]
"""

import sys
from pathlib import Path

from repro.analysis import render_env_tree
from repro.env import map_platform, merge_views
from repro.gridml import build_alias_table, merge_documents, to_xml, write_gridml
from repro.netsim import (
    GATEWAY_ALIASES,
    PRIVATE_HOSTS,
    PUBLIC_HOSTS,
    build_ens_lyon,
    platform_allows,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("gridml-output")
    out_dir.mkdir(parents=True, exist_ok=True)

    platform = build_ens_lyon()
    print("Firewall check: can canaria reach sci1?",
          platform_allows(platform, "canaria", "sci1"))
    print("Firewall check: can canaria reach the gateway sci0?",
          platform_allows(platform, "canaria", "sci0"))

    print("\n=== ENV run #1: public side, master = the-doors ===")
    public = map_platform(platform, "the-doors", hosts=PUBLIC_HOSTS)
    print(render_env_tree(public.root))

    print("\n=== ENV run #2: popc.private side, master = popc0 ===")
    private = map_platform(platform, "popc0", hosts=PRIVATE_HOSTS)
    print(render_env_tree(private.root))

    print("\n=== Merge (gateway aliases of paper §4.3) ===")
    for private_name, public_name in GATEWAY_ALIASES.items():
        print(f"  {public_name:<22} == {private_name}")
    merged = merge_views(public, private, {})
    print(render_env_tree(merged.root))

    # GridML documents: one per side, plus the concatenation-style merge.
    public_doc = public.to_gridml()
    private_doc = private.to_gridml()
    aliases = build_alias_table(list(GATEWAY_ALIASES.items()))
    merged_doc = merge_documents(public_doc, private_doc, aliases)

    for name, doc in (("public.xml", public_doc), ("private.xml", private_doc),
                      ("merged.xml", merged_doc)):
        path = out_dir / name
        write_gridml(doc, str(path))
        print(f"\nwrote {path} ({len(to_xml(doc).splitlines())} lines)")

    print("\nThe merged view is what the deployment planner consumes "
          "(see examples/quickstart.py).")


if __name__ == "__main__":
    main()
