"""CLM-FREQ — token-ring measurement frequency vs. clique size (§2.3).

*"The token-ring algorithms are known to be not very scalable, and the
frequency of the measurements obviously decreases when the number of hosts in
a given clique increases."*  The benchmark measures, on a running simulated
NWS, the time between two measurements of the same host pair for cliques of
growing size deployed on a switched cluster, and checks the analytic
n·(n−1) growth.
"""

import pytest

from repro.analysis import frequency_vs_clique_size, render_table
from repro.core import Clique, DeploymentPlan, measurement_periods
from repro.netsim import generate_single_site
from repro.nws import NWSConfig, NWSSystem


def _run_single_clique(size: int, duration: float = 200.0):
    platform = generate_single_site(n_hub_clusters=0, n_switch_clusters=1,
                                    hosts_per_cluster=max(size, 2))
    hosts = platform.host_names()[:size]
    plan = DeploymentPlan(hosts=hosts, nameserver_host=hosts[0])
    plan.notes["planner"] = f"clique-{size}"
    plan.cliques.append(Clique(name=f"clique-{size}", hosts=tuple(hosts),
                               kind="switched", period_s=0.0))
    system = NWSSystem(platform, plan, config=NWSConfig(token_hold_gap_s=0.5))
    system.run(duration)
    return system


def test_bench_clique_frequency_vs_size(benchmark):
    sizes = [2, 4, 6, 8]

    def run_all():
        return {size: _run_single_clique(size) for size in sizes}

    systems = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    intervals = {}
    for size, system in systems.items():
        stats = frequency_vs_clique_size(system)[0]
        intervals[size] = float(stats["mean_interval_s"])
        rows.append({
            "clique size": size,
            "ordered pairs": size * (size - 1),
            "mean interval between measurements (s)": stats["mean_interval_s"],
            "experiments completed": stats["measurements"],
        })
    print("\n[CLM-FREQ] measurement interval vs. clique size (200 simulated s)")
    print(render_table(rows))

    # Frequency strictly decreases (interval increases) with clique size.
    assert intervals[2] < intervals[4] < intervals[6] < intervals[8]
    # The analytic model captures the quadratic growth of the cycle length.
    plan = DeploymentPlan(hosts=[f"h{i}" for i in range(8)])
    plan.cliques.append(Clique(name="c8", hosts=tuple(f"h{i}" for i in range(8))))
    plan.cliques.append(Clique(name="c2", hosts=("h0", "h1")))
    periods = measurement_periods(plan, experiment_seconds=1.0)
    assert periods["c8"] / periods["c2"] == pytest.approx(28.0)
