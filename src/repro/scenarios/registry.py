"""The scenario registry.

A *scenario* is a named, frozen description of one evaluation platform: a
generator family plus the exact parameters handed to it.  Scenarios carry a
stable content hash (over name, family and parameters) so that sweep results
can be cached on disk and invalidated precisely when the scenario changes.

Scenario builders register themselves with the :func:`register_scenario`
decorator::

    @register_scenario("star-hub-8", family="star", tags=("smoke",),
                       hosts=8, kind="hub")
    def _build(hosts, kind):
        return generate_star(StarSpec(hosts=hosts, kind=kind))

The keyword arguments of the decorator become the scenario's parameters and
are passed verbatim to the builder, so the registry listing shows exactly
what the builder will receive.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..netsim.topology import Platform

__all__ = ["Scenario", "register", "register_scenario", "get_scenario",
           "unregister", "list_scenarios", "scenario_names", "clear_registry",
           "registry_snapshot", "restore_registry"]

_REGISTRY: Dict[str, "Scenario"] = {}


def _canonical(value: object) -> object:
    """Parameters as canonical JSON-compatible data (tuples → lists)."""
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"scenario parameter of unsupported type: {value!r}")


@dataclass(frozen=True)
class Scenario:
    """One registered evaluation scenario (immutable)."""

    name: str
    family: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    #: Sorted (key, value) parameter pairs; values must be JSON-compatible.
    params: Tuple[Tuple[str, object], ...] = ()
    builder: Callable[..., Platform] = field(compare=False, repr=False,
                                             default=None)  # type: ignore[assignment]

    @property
    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 over the scenario's identity and parameters."""
        payload = json.dumps(
            {"name": self.name, "family": self.family,
             "params": _canonical(self.param_dict)},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def build(self) -> Platform:
        """Construct the scenario's platform."""
        if self.builder is None:
            raise ValueError(f"scenario {self.name!r} has no builder")
        return self.builder(**self.param_dict)

    def matches(self, pattern: Optional[str]) -> bool:
        """Case-insensitive substring match on name, family or tags."""
        if not pattern:
            return True
        needle = pattern.lower()
        haystacks = [self.name, self.family, *self.tags]
        return any(needle in h.lower() for h in haystacks)


def register(scenario: Scenario) -> Scenario:
    """Register a scenario instance; idempotent for identical definitions.

    Re-registering the *same* scenario (same name, type, content hash,
    description, tags and builder function) replaces the stored entry — so
    reloading the catalog after a :func:`clear_registry` (or in another
    test) is safe and order-independent.  Registering a *different* scenario
    under an existing name is still an error; a changed builder counts as
    different even when the parameters match, because the cache key would
    not (cached results of the old builder would be served for the new one).
    """
    scenario.content_hash  # fail early on non-serialisable parameters
    existing = _REGISTRY.get(scenario.name)
    if existing is not None and not (
            type(existing) is type(scenario)
            and existing.content_hash == scenario.content_hash
            and existing.description == scenario.description
            and existing.tags == scenario.tags
            and existing.builder is scenario.builder):
        raise ValueError(f"duplicate scenario name {scenario.name!r} "
                         "(with a different definition)")
    _REGISTRY[scenario.name] = scenario
    return scenario


def register_scenario(name: str, *, family: str, description: str = "",
                      tags: Tuple[str, ...] = (), **params
                      ) -> Callable[[Callable[..., Platform]],
                                    Callable[..., Platform]]:
    """Decorator registering a builder function as scenario ``name``.

    The keyword arguments become the scenario parameters and are passed to
    the decorated builder when the scenario is built.
    """
    def decorator(builder: Callable[..., Platform]) -> Callable[..., Platform]:
        register(Scenario(name=name, family=family, description=description,
                          tags=tuple(tags),
                          params=tuple(sorted(params.items())),
                          builder=builder))
        return builder
    return decorator


def get_scenario(name: str) -> Scenario:
    """The registered scenario called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; registered: "
                       f"{', '.join(sorted(_REGISTRY)) or '(none)'}") from None


def unregister(name: str) -> None:
    """Drop one registration if present.

    For callers that deliberately replace a definition — e.g. re-importing
    a topology source with new knobs; :func:`register` alone refuses a
    changed definition under an existing name.
    """
    _REGISTRY.pop(name, None)


def list_scenarios(pattern: Optional[str] = None,
                   family: Optional[str] = None) -> List[Scenario]:
    """All registered scenarios, sorted by name.

    ``pattern`` is a substring filter over name/family/tags; ``family`` is an
    exact family match (e.g. ``"imported"``).  Both filters compose.
    """
    return sorted((s for s in _REGISTRY.values()
                   if s.matches(pattern)
                   and (family is None or s.family == family)),
                  key=lambda s: s.name)


def scenario_names(pattern: Optional[str] = None,
                   family: Optional[str] = None) -> List[str]:
    return [s.name for s in list_scenarios(pattern, family=family)]


def clear_registry() -> None:
    """Drop all registrations (for tests only)."""
    _REGISTRY.clear()


def registry_snapshot() -> Dict[str, "Scenario"]:
    """A shallow copy of the current registrations (for save/restore)."""
    return dict(_REGISTRY)


def restore_registry(snapshot: Dict[str, "Scenario"]) -> None:
    """Reset the registry to a previously taken snapshot."""
    _REGISTRY.clear()
    _REGISTRY.update(snapshot)
