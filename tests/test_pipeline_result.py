"""Tests of PipelineResult plumbing and the baseline planners' robustness."""

import pytest

from repro.core import check_constraints
from repro.netsim import DegradedSpec, generate_degraded
from repro.pipeline import BASELINE_PLANNERS, PipelineResult, run_pipeline
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def degraded():
    """The degraded-link platform (asymmetric routes, lossy mis-VLANed hub)."""
    return generate_degraded(DegradedSpec())


@pytest.fixture(scope="module")
def degraded_result(degraded):
    return run_pipeline(degraded, baselines=tuple(BASELINE_PLANNERS))


class TestEnvReport:
    def test_env_report_returns_the_env_planner_row(self, degraded_result):
        report = degraded_result.env_report
        assert report.planner == "env"
        assert report in degraded_result.reports

    def test_env_report_raises_without_env_row(self, degraded_result):
        stripped = PipelineResult(
            platform_name=degraded_result.platform_name,
            master=degraded_result.master,
            n_hosts=degraded_result.n_hosts,
            view=degraded_result.view,
            plan=degraded_result.plan,
            reports=[r for r in degraded_result.reports
                     if r.planner != "env"],
        )
        with pytest.raises(ValueError, match="no ENV quality report"):
            stripped.env_report
        with pytest.raises(ValueError, match="no ENV quality report"):
            stripped.summary()

    def test_summary_carries_forecast_knobs(self, degraded):
        result = run_pipeline(degraded, baselines=(),
                              forecast_window=5, forecast_alpha=0.5)
        summary = result.summary()
        assert summary["forecast_window"] == 5
        assert summary["forecast_alpha"] == 0.5
        config = result.nws_config()
        assert config.forecast_window == 5
        assert config.exponential_alpha == 0.5

    def test_invalid_forecast_knobs_rejected(self, degraded):
        with pytest.raises(ValueError):
            run_pipeline(degraded, baselines=(), forecast_window=0)
        with pytest.raises(ValueError):
            run_pipeline(degraded, baselines=(), forecast_alpha=1.5)


class TestBaselinePlanners:
    @pytest.mark.parametrize("name", sorted(BASELINE_PLANNERS))
    def test_each_baseline_produces_a_valid_plan_on_degraded(self, name,
                                                             degraded):
        hosts = degraded.host_names()
        plan = BASELINE_PLANNERS[name](degraded, hosts)
        assert plan.validate_structure() == []
        assert plan.notes.get("planner")
        report = check_constraints(plan, degraded)
        uncovered = set(report.uncovered_hosts)
        assert uncovered <= {plan.nameserver_host}

    def test_quality_stage_evaluates_every_requested_baseline(
            self, degraded_result):
        planners = [r.planner for r in degraded_result.reports]
        assert planners[0] == "env"
        assert set(planners) == {"env", *BASELINE_PLANNERS}

    def test_degraded_scenario_matches_generator(self, degraded):
        scenario = get_scenario("degraded-asym")
        assert scenario.build().host_names() == degraded.host_names()
