"""A toy DNS resolver for the simulated platform.

ENV identifies hosts by their fully-qualified domain name when available and
falls back to the IP address (grouped by classful network) when resolution
fails — some machines in the ENS-Lyon platform have no configured name
(paper §4.3).  The :class:`Resolver` models exactly that: forward and reverse
maps, per-host domain extraction, and the ability to register *unnamed*
hosts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .address import IPv4Address

__all__ = ["Resolver", "ResolutionError"]


class ResolutionError(KeyError):
    """Raised when a name or address cannot be resolved."""


class Resolver:
    """Forward (name→IP) and reverse (IP→name) resolution with aliases."""

    def __init__(self) -> None:
        self._name_to_ip: Dict[str, IPv4Address] = {}
        self._ip_to_name: Dict[IPv4Address, str] = {}
        self._aliases: Dict[str, str] = {}

    # -- registration --------------------------------------------------------
    def register(self, name: Optional[str], ip: IPv4Address | str,
                 aliases: Iterable[str] = ()) -> None:
        """Register ``name`` ⇄ ``ip``.  ``name=None`` registers an unnamed host."""
        if isinstance(ip, str):
            ip = IPv4Address.parse(ip)
        if name is not None:
            self._name_to_ip[name] = ip
            self._ip_to_name[ip] = name
            for alias in aliases:
                self._aliases[alias] = name
                self._name_to_ip.setdefault(alias, ip)
        else:
            # Unnamed host: reverse resolution must fail, but the address is
            # still routable/known to the platform.
            self._ip_to_name.pop(ip, None)

    def add_alias(self, alias: str, canonical: str) -> None:
        """Declare ``alias`` as another name of ``canonical``."""
        if canonical not in self._name_to_ip:
            raise ResolutionError(canonical)
        self._aliases[alias] = canonical
        self._name_to_ip[alias] = self._name_to_ip[canonical]

    # -- queries --------------------------------------------------------------
    def resolve(self, name: str) -> IPv4Address:
        """Name → IP (raises :class:`ResolutionError` if unknown)."""
        try:
            return self._name_to_ip[name]
        except KeyError:
            raise ResolutionError(name) from None

    def reverse(self, ip: IPv4Address | str) -> str:
        """IP → canonical name (raises :class:`ResolutionError` if unnamed)."""
        if isinstance(ip, str):
            ip = IPv4Address.parse(ip)
        try:
            return self._ip_to_name[ip]
        except KeyError:
            raise ResolutionError(str(ip)) from None

    def try_reverse(self, ip: IPv4Address | str) -> Optional[str]:
        """IP → name, or ``None`` when resolution fails."""
        try:
            return self.reverse(ip)
        except ResolutionError:
            return None

    def canonical(self, name: str) -> str:
        """Resolve aliases to the canonical registered name."""
        return self._aliases.get(name, name)

    def aliases_of(self, canonical: str) -> List[str]:
        """All aliases registered for ``canonical``."""
        return sorted(a for a, c in self._aliases.items() if c == canonical)

    @staticmethod
    def domain_of(fqdn: str) -> str:
        """The DNS domain of a fully-qualified name (empty for bare names)."""
        if "." not in fqdn:
            return ""
        return fqdn.split(".", 1)[1]

    def known_names(self) -> List[str]:
        """All registered canonical names (aliases excluded)."""
        return sorted(set(self._ip_to_name.values()))
