"""LST-GRIDML — the GridML listings of paper §4.2.1 / §4.2.2 / §4.3.

Regenerates the GridML documents of each mapping phase — lookup (sites and
machines with aliases), host properties, the structural network nesting, the
``ENV_Switched`` description of the sci cluster — and the merged two-site
document of the firewall workflow, and checks they contain the same element
structure as the paper's listings.
"""

from repro.gridml import build_alias_table, from_xml, merge_documents, to_xml
from repro.netsim import GATEWAY_ALIASES


def test_bench_gridml_documents(benchmark, merged_view):
    xml = benchmark(lambda: to_xml(merged_view.to_gridml()))

    print("\n[LST-GRIDML] generated GridML (excerpt)")
    print("\n".join(xml.splitlines()[:30]))
    print(f"  ... ({len(xml.splitlines())} lines total)")

    doc = from_xml(xml)

    # §4.2.1.1 lookup: sites with machines carrying LABEL ip/name.
    assert doc.site("ens-lyon.fr") is not None
    assert doc.site("popc.private") is not None
    canaria = doc.machine("canaria")
    assert canaria is not None and canaria.ip == "140.77.13.229"

    # §4.2.1.2 extra information: host properties are exported.
    assert canaria.property_value("CPU_model") == "Pentium Pro"

    # §4.2.1.3 structural + §4.2.2 refinement: nested NETWORK elements of the
    # right types, with the sci cluster described as ENV_Switched and carrying
    # the ENV_base_BW / ENV_base_local_BW properties of the paper's listing.
    types = {n.network_type for n in doc.all_networks()}
    assert {"Structural", "ENV_Shared", "ENV_Switched"} <= types
    sci = next(n for n in doc.networks_of_type("ENV_Switched")
               if "sci1" in n.machines)
    assert len(sci.machines) == 6
    assert sci.property_value("ENV_base_BW") is not None
    assert sci.property_value("ENV_base_local_BW") is not None

    # §4.3 firewall merge: gateways belong to both sites and carry aliases.
    alias_table = build_alias_table(
        [(private, public) for private, public in GATEWAY_ALIASES.items()])
    merged = merge_documents(doc, doc, alias_table)
    gateway = merged.machine("popc0")
    assert gateway is not None
    assert "popc.ens-lyon.fr" in gateway.aliases
