"""SERVE — indexed result-store queries and HTTP request throughput.

Two promises the serving layer makes:

* ``GET /results?scenario=...`` over a big (≥5k records) JSONL store is
  answered **via the sidecar index** — it parses only the matching records
  (asserted on the store's work counters) and beats the full-file parse
  ``load_jsonl`` needs by a wide margin;
* cached catalog queries (``GET /scenarios`` with a warm LRU) sustain at
  least 500 requests/second on a local socket.
"""

import asyncio
import json
import os
import time

from repro.analysis import render_table
from repro.serve import ReproApp, ResultStore, start_server
from repro.sweep import SweepRecord, append_jsonl, load_jsonl

N_RECORDS = 6000
N_SCENARIOS = 60
THROUGHPUT_REQUESTS = 1500
MIN_REQ_PER_S = 500


def _build_store(tmp_path):
    """A ≥5k-record store over N_SCENARIOS scenarios, realistic line sizes."""
    store_path = str(tmp_path / "results.jsonl")
    batch = []
    for i in range(N_RECORDS):
        scenario = f"scen-{i % N_SCENARIOS:03d}"
        batch.append(SweepRecord(
            scenario=scenario, family=f"fam-{i % 7}",
            scenario_hash=f"{i % N_SCENARIOS:064d}",
            code_version="c" * 64,
            status="ok" if i % 11 else "error",
            elapsed_s=0.25,
            summary={"hosts": 8 + i % 24, "completeness": 1.0,
                     "padding": "x" * 160}))
    append_jsonl(store_path, batch)
    return store_path


def test_bench_indexed_query_avoids_full_scan(tmp_path):
    store_path = _build_store(tmp_path)
    target = "scen-042"
    expected = N_RECORDS // N_SCENARIOS

    # Baseline: the pre-index access path parsed the whole store per query.
    start = time.perf_counter()
    full = [r for r in load_jsonl(store_path) if r.scenario == target]
    full_scan_s = time.perf_counter() - start
    assert len(full) == expected

    # Build the index once (one full pass), then query cold and warm.
    builder = ResultStore(store_path)
    start = time.perf_counter()
    builder.refresh()
    build_s = time.perf_counter() - start
    builder.close()

    store = ResultStore(store_path)
    start = time.perf_counter()
    store.refresh()                      # adopt the persisted sidecar once
    adopt_s = time.perf_counter() - start
    start = time.perf_counter()
    records, total = store.query(scenario=target)
    indexed_s = time.perf_counter() - start
    assert total == expected and len(records) == expected

    # The core acceptance: the query parsed ONLY the matching records —
    # no full-file parse hides behind the timing.
    assert store.stats["records_parsed"] == expected, store.stats
    assert store.stats["full_rebuilds"] == 0
    store_bytes = os.path.getsize(store_path)
    assert store.stats["bytes_read"] < store_bytes / 10

    start = time.perf_counter()
    latest = store.latest(target)
    latest_s = time.perf_counter() - start
    assert latest is not None
    store.close()

    speedup = full_scan_s / max(indexed_s, 1e-9)
    print(f"\n[SERVE] store queries over {N_RECORDS} records "
          f"({store_bytes / 1e6:.1f} MB)")
    print(render_table([
        {"access": "full scan (load_jsonl)", "records_parsed": N_RECORDS,
         "wall_s": round(full_scan_s, 4)},
        {"access": "index build (once per store)",
         "records_parsed": N_RECORDS, "wall_s": round(build_s, 4)},
        {"access": "sidecar adoption (once per process)",
         "records_parsed": 0, "wall_s": round(adopt_s, 4)},
        {"access": f"indexed query ({expected} matches)",
         "records_parsed": expected, "wall_s": round(indexed_s, 4)},
        {"access": "indexed latest (1 match)", "records_parsed": 1,
         "wall_s": round(latest_s, 4)},
    ]))
    print(f"indexed-query speedup over full scan: {speedup:.1f}x")
    assert speedup > 5.0


def test_bench_request_throughput(tmp_path):
    append_jsonl(str(tmp_path / "results.jsonl"),
                 [SweepRecord(scenario="s", family="f", scenario_hash="h",
                              code_version="c")])

    async def hammer():
        app = ReproApp(cache_dir=str(tmp_path))
        server, port = await start_server(app)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            raw = (b"GET /scenarios HTTP/1.1\r\nHost: bench\r\n\r\n")

            async def one_request():
                writer.write(raw)
                await writer.drain()
                status_line = await reader.readline()
                assert b"200" in status_line
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                await reader.readexactly(length)

            await one_request()                       # warm the LRU
            start = time.perf_counter()
            for _ in range(THROUGHPUT_REQUESTS):
                await one_request()
            elapsed = time.perf_counter() - start
            writer.close()
            await writer.wait_closed()
            return elapsed, app.cache.hits
        finally:
            server.close()
            await server.wait_closed()
            await app.close()

    elapsed, cache_hits = asyncio.run(hammer())
    rate = THROUGHPUT_REQUESTS / elapsed
    print(f"\n[SERVE] catalog throughput: {THROUGHPUT_REQUESTS} keep-alive "
          f"requests in {elapsed:.2f}s = {rate:.0f} req/s "
          f"(LRU hits: {cache_hits})")
    assert cache_hits >= THROUGHPUT_REQUESTS         # served from the LRU
    assert rate >= MIN_REQ_PER_S, f"{rate:.0f} req/s < {MIN_REQ_PER_S}"


def test_bench_job_submission_roundtrip(tmp_path):
    """POST /runs → job terminal → record queryable, end to end over HTTP."""

    async def run():
        app = ReproApp(cache_dir=str(tmp_path), pool_processes=2)
        server, port = await start_server(app)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def request(method, target, body=b""):
                head = (f"{method} {target} HTTP/1.1\r\nHost: bench\r\n"
                        + (f"Content-Length: {len(body)}\r\n" if body
                           else "") + "\r\n").encode()
                writer.write(head + body)
                await writer.drain()
                status_line = await reader.readline()
                length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":")[1])
                blob = await reader.readexactly(length)
                return int(status_line.split()[1]), blob

            start = time.perf_counter()
            status, blob = await request(
                "POST", "/runs",
                json.dumps({"scenario": "star-hub-8"}).encode())
            assert status == 202
            job = json.loads(blob)
            while True:
                status, blob = await request("GET", f"/runs/{job['id']}")
                state = json.loads(blob)
                if state["status"] not in ("queued", "running"):
                    break
                await asyncio.sleep(0.05)
            elapsed = time.perf_counter() - start
            assert state["status"] == "ok"
            status, blob = await request(
                "GET", "/results?scenario=star-hub-8")
            assert json.loads(blob)["total"] == 1
            writer.close()
            await writer.wait_closed()
            return elapsed
        finally:
            server.close()
            await server.wait_closed()
            await app.close()

    elapsed = asyncio.run(run())
    print(f"\n[SERVE] POST /runs round-trip (fresh star-hub-8 pipeline): "
          f"{elapsed:.2f}s")
