"""Firewall model.

The ENS-Lyon platform of the paper contains a private, firewalled domain
(``popc.private``): its internal hosts cannot communicate with the outside
world, only the dual-homed gateways (``popc0``, ``myri0``, ``sci0``) can.
ENV therefore has to be run once on each side of the firewall and the two
GridML documents merged (paper §4.3, "Firewalls").

The :class:`Firewall` implements a simple domain-isolation policy with
explicit gateway exemptions, which is all the paper's scenario requires, plus
arbitrary pairwise deny rules for synthetic scenarios.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from .topology import Platform

__all__ = ["CommunicationBlocked", "Firewall", "attach_firewall", "platform_allows"]


class CommunicationBlocked(RuntimeError):
    """Raised (or used to fail probe events) when a firewall blocks a flow."""

    def __init__(self, src: str, dst: str):
        super().__init__(f"communication blocked by firewall: {src} -> {dst}")
        self.src = src
        self.dst = dst


class Firewall:
    """Domain-isolation firewall with gateway exemptions and deny rules."""

    def __init__(self) -> None:
        #: Domains whose members may only talk to hosts of the same domain.
        self.isolated_domains: Set[str] = set()
        #: Hosts allowed to cross an isolation boundary (dual-homed gateways).
        self.gateways: Set[str] = set()
        #: Explicit (src, dst) pairs that are always denied (directional).
        self.deny_pairs: Set[Tuple[str, str]] = set()

    def isolate_domain(self, domain: str, gateways: Iterable[str] = ()) -> None:
        """Prevent hosts of ``domain`` from talking outside it, except gateways."""
        self.isolated_domains.add(domain)
        self.gateways.update(gateways)

    def deny(self, src: str, dst: str, bidirectional: bool = True) -> None:
        """Deny traffic from ``src`` to ``dst`` (and back unless told otherwise)."""
        self.deny_pairs.add((src, dst))
        if bidirectional:
            self.deny_pairs.add((dst, src))

    def allows(self, platform: Platform, src: str, dst: str) -> bool:
        """Whether a flow from host ``src`` to host ``dst`` is permitted."""
        if (src, dst) in self.deny_pairs:
            return False
        if not self.isolated_domains:
            return True
        src_node = platform.nodes.get(src)
        dst_node = platform.nodes.get(dst)
        if src_node is None or dst_node is None:
            return True
        src_dom, dst_dom = src_node.domain, dst_node.domain
        if src_dom == dst_dom:
            return True
        for endpoint, domain in ((src, src_dom), (dst, dst_dom)):
            if domain in self.isolated_domains and endpoint not in self.gateways:
                return False
        return True


def attach_firewall(platform: Platform, firewall: Firewall) -> None:
    """Attach ``firewall`` to ``platform`` (consulted by flows and probes)."""
    platform.firewall = firewall  # type: ignore[attr-defined]


def platform_allows(platform: Platform, src: str, dst: str) -> bool:
    """Whether the platform's firewall (if any) permits ``src`` → ``dst``."""
    firewall: Optional[Firewall] = getattr(platform, "firewall", None)
    if firewall is None:
        return True
    return firewall.allows(platform, src, dst)
