#!/usr/bin/env python
"""A Grid scheduler consuming NWS forecasts (the paper's motivating use case).

Grid problem-solving environments (Globus, DIET, NetSolve, NINF, ... — paper
§1) query the NWS before placing work.  This example deploys the monitoring
infrastructure automatically on a synthetic two-site constellation, then
plays a simple master/worker scheduling decision:

* a "client" host must ship a large input file to N workers;
* the scheduler asks the NWS client for bandwidth forecasts and picks the
  workers with the best predicted transfer times;
* the choice is compared with the ground-truth optimum of the simulator.

Run with:  python examples/scheduler_scenario.py
"""

from repro.analysis import render_table
from repro.core import plan_from_view
from repro.env import map_platform
from repro.netsim import FlowModel, SyntheticSpec, generate_constellation
from repro.nws import NWSClient, NWSConfig, NWSSystem
from repro.simkernel import Engine

INPUT_SIZE_MB = 64.0
WORKERS_NEEDED = 4


def main() -> None:
    platform = generate_constellation(SyntheticSpec(
        sites=2, seed=12, hosts_per_cluster=(3, 5), clusters_per_site=(2, 2)))
    hosts = platform.host_names()
    client_host = hosts[0]
    candidates = hosts[1:]
    print(f"Platform: {len(hosts)} hosts over 2 sites; client = {client_host}")

    # --- automatic deployment -------------------------------------------------
    view = map_platform(platform, client_host)
    plan = plan_from_view(view, period_s=15.0)
    print(f"ENV mapping: {view.stats.measurements} measurements; "
          f"deployment plan: {len(plan.cliques)} cliques")

    nws = NWSSystem(platform, plan, config=NWSConfig(token_hold_gap_s=1.0))
    nws.run(240.0)
    client = NWSClient(nws)

    # --- scheduling decision ----------------------------------------------------
    ground_truth = FlowModel(Engine(), platform)
    rows = []
    predicted = {}
    actual = {}
    for worker in candidates:
        answer = client.bandwidth(client_host, worker)
        if not answer.available:
            continue
        predicted_s = INPUT_SIZE_MB * 8.0 / answer.forecast.value
        true_bw = ground_truth.single_flow_mbps(client_host, worker)
        actual_s = INPUT_SIZE_MB * 8.0 / true_bw
        predicted[worker] = predicted_s
        actual[worker] = actual_s
        rows.append({
            "worker": worker,
            "forecast (Mbit/s)": round(answer.forecast.value, 1),
            "source": answer.method,
            "predicted transfer (s)": round(predicted_s, 2),
            "actual transfer (s)": round(actual_s, 2),
        })
    print("\nForecast-driven placement table:")
    print(render_table(sorted(rows, key=lambda r: r["predicted transfer (s)"])))

    chosen = sorted(predicted, key=predicted.get)[:WORKERS_NEEDED]
    optimal = sorted(actual, key=actual.get)[:WORKERS_NEEDED]
    chosen_time = max(actual[w] for w in chosen)
    optimal_time = max(actual[w] for w in optimal)
    print(f"\nScheduler picked:  {', '.join(chosen)}")
    print(f"True optimum:      {', '.join(optimal)}")
    print(f"Makespan with forecast-driven choice: {chosen_time:.2f} s "
          f"(optimum {optimal_time:.2f} s, "
          f"overhead {100 * (chosen_time / optimal_time - 1):.1f}%)")


if __name__ == "__main__":
    main()
