"""ABL-MASTER — dependence of the view (and the plan) on the chosen master (§4/§6).

ENV maps the network *from the point of view of one master*; the paper notes
that the data acquired depends on that choice.  The ablation maps ENS-Lyon
from every public-side host as master (merging the private side mapped from
popc0 each time, as the firewall imposes) and compares grouping quality and
resulting plan shape.
"""

from repro.analysis import render_table, score_view
from repro.core import evaluate_plan, plan_from_view
from repro.env import map_ens_lyon
from repro.netsim import PUBLIC_HOSTS, expected_effective_groups


def test_bench_master_choice_ablation(benchmark, ens_lyon):
    masters = [h for h in PUBLIC_HOSTS if h not in ("popc0", "myri0", "sci0")]

    def run_all():
        out = {}
        for master in masters:
            view = map_ens_lyon(ens_lyon, master=master)
            out[master] = view
        return out

    views = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    qualities = {}
    for master, view in views.items():
        score = score_view(view, expected_effective_groups(),
                           ignore_hosts={master})
        plan = plan_from_view(view)
        quality = evaluate_plan(plan, ens_lyon)
        qualities[master] = (score, quality)
        rows.append({
            "master": master,
            "mean_jaccard": round(score.mean_jaccard, 3),
            "kind_accuracy": round(score.kind_accuracy, 3),
            "cliques": quality.n_cliques,
            "measured_pairs": quality.measured_pairs,
            "completeness": round(quality.completeness, 3),
            "harmful_collisions": quality.harmful_collisions,
        })
    print("\n[ABL-MASTER] ENS-Lyon mapped from different public masters")
    print(render_table(rows))

    # Any public master on Hub 1 yields the same (correct) grouping and an
    # equally good plan: the mapping is robust to the master choice inside a
    # well-connected segment (the paper's caveat concerns masters separated
    # from parts of the platform by bottlenecks or firewalls).
    for master, (score, quality) in qualities.items():
        assert score.kind_accuracy == 1.0, master
        assert quality.completeness == 1.0, master
        assert quality.harmful_collisions == 0, master
    clique_counts = {quality.n_cliques for _, quality in qualities.values()}
    assert clique_counts == {5}
