"""Command-line interface.

``python -m repro.cli <command>`` drives the whole pipeline from a shell,
mirroring how the original tools were used (run ENV, look at the view, derive
the NWS configuration, check its quality):

* ``map``       — run the ENV mapping and print the effective view (optionally
                  writing the GridML document);
* ``plan``      — compute the NWS deployment plan and print the manager
                  configuration file;
* ``quality``   — evaluate the ENV plan against the topology-blind baselines;
* ``monitor``   — deploy the simulated NWS, run it, and print forecasts;
* ``scenarios`` — list the registered evaluation scenarios;
* ``import``    — ingest an external topology file (CAIDA AS-links, edge
                  list, GraphML or GridML) as registered ``imported``
                  scenarios, recorded in a manifest so later invocations
                  still see them;
* ``sweep``     — run map → plan → quality over many scenarios in parallel,
                  with on-disk result caching;
* ``dynamics``  — time-varying platforms: ``list`` the dynamic scenarios,
                  ``replay`` one churn schedule epoch by epoch, or ``run``
                  the whole dynamic family through the sweep engine;
* ``profile``   — profile one scenario's pipeline run (or dynamic replay):
                  cProfile hotspots by default, ``--flame`` switches to the
                  sampling profiler's collapsed (flamegraph-ready) stacks;
* ``serve``     — the async results/scenario HTTP API (:mod:`repro.serve`):
                  browse the catalog, query the indexed result store, and
                  submit pipeline runs over HTTP;
* ``trace``     — render the traces of a JSONL span log as ASCII
                  timelines (per-stage durations, perf-counter deltas),
                  or export them as a Chrome-trace document for Perfetto
                  (``--format chrome``);
* ``obs``       — trace analytics over a span log: ``report`` (per-op
                  p50/p95/p99 + self time, critical paths, SLO verdicts),
                  ``diff`` (attribute the latency delta between two logs
                  to specific ops) and ``dump`` (trigger a
                  flight-recorder forensics bundle);
* ``top``       — live ANSI dashboard over a running ``serve`` process,
                  polling ``/metrics/history`` and ``/healthz``.

Every subcommand takes the observability flags ``--log-level`` (structured
key=value logging), ``--trace-sample`` (span sampling rate; ``serve``
defaults to 1.0, everything else to 0), ``--trace-log`` (JSONL span log),
``--trace-log-max-mb`` (size-capped ``.1`` rotation) and ``--slow-span``
(warn threshold).

The platform of the single-run commands is either the paper's ENS-Lyon LAN
(``--platform ens-lyon``, default) or a seeded synthetic constellation
(``--platform synthetic``); ``sweep`` draws its platforms from the scenario
registry (:mod:`repro.scenarios`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from .analysis import render_env_tree, render_plan, render_table
from .core import plan_from_view, render_config
from .dynamics import list_dynamic_scenarios, run_replay
from .env import map_ens_lyon, map_platform
from .faults import install_plan, load_plan
from .gridml import write_gridml
from .ioutils import write_atomic
from .ingest import (
    DEFAULT_MANIFEST,
    DEFAULT_SIZES,
    FORMATS,
    load_manifest,
    load_recorded_imports,
    manifest_entries,
    record_import,
    register_imported,
    register_imported_dynamic,
    same_source,
)
from .netsim import SyntheticSpec, build_ens_lyon, generate_constellation
from .nws import NWSClient, NWSSystem
from .obs import (
    TRACER,
    group_traces,
    load_span_log,
    render_timeline,
    setup_logging,
)
from .obs.timeline import find_orphans
from .pipeline import BASELINE_PLANNERS, run_pipeline
from .scenarios import list_scenarios
from .serve import ReproApp, catalog_json, run_server
from .sweep import (
    DEFAULT_CACHE_DIR,
    DEFAULT_RETRIES,
    DEFAULT_TASK_DEADLINE_S,
    records_json,
    run_sweep,
)

__all__ = ["main", "build_parser"]


def _build_platform(args: argparse.Namespace):
    if args.platform == "ens-lyon":
        return build_ens_lyon()
    spec = SyntheticSpec(sites=args.sites, seed=args.seed)
    return generate_constellation(spec)


def _map_view(platform, args: argparse.Namespace):
    if args.platform == "ens-lyon":
        return map_ens_lyon(platform, master=args.master or "the-doors")
    master = args.master or platform.host_names()[0]
    return map_platform(platform, master)


def _add_forecast_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--forecast-window", type=int, default=10,
                        metavar="N",
                        help="sliding window of the windowed forecasters "
                             "(default: 10)")
    parser.add_argument("--forecast-alpha", type=float, default=0.3,
                        metavar="A",
                        help="smoothing factor of the exponential forecaster "
                             "(default: 0.3)")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``sweep`` and ``dynamics run``."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1)")
    parser.add_argument("--filter", default=None, metavar="PATTERN",
                        help="substring filter on name/family/tags")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"result cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--rerun", action="store_true",
                        help="ignore cached results and re-run everything")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="JSONL result store "
                             "(default: <cache-dir>/results.jsonl)")
    parser.add_argument("--period", type=float, default=60.0,
                        help="target measurement period per clique (seconds)")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="summary output format (default: table)")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="extra attempts per scenario after an "
                             "infrastructure failure (worker crash, hang, "
                             f"pool respawn; default: {DEFAULT_RETRIES})")
    parser.add_argument("--task-deadline", type=float,
                        default=DEFAULT_TASK_DEADLINE_S, metavar="SECONDS",
                        help="per-task wall-clock deadline; past it the "
                             "worker pool is respawned and the task retried "
                             f"(default: {DEFAULT_TASK_DEADLINE_S:g})")
    _add_fault_argument(parser)


def _add_fault_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--inject-faults", default=None, metavar="PLAN",
                        help="fault-injection plan: a JSON literal or a "
                             "path to a JSON file (see repro.faults; "
                             "deterministic chaos testing)")


def _install_faults(args: argparse.Namespace) -> None:
    """Install the ``--inject-faults`` plan (if any) for this process tree."""
    if getattr(args, "inject_faults", None):
        install_plan(load_plan(args.inject_faults))


def _add_observability_arguments(parser: argparse.ArgumentParser,
                                 sample_default: float = 0.0) -> None:
    """The observability flags every subcommand carries."""
    group = parser.add_argument_group("observability")
    group.add_argument("--log-level", default="warning",
                       choices=("debug", "info", "warning", "error",
                                "critical"),
                       help="structured key=value log verbosity "
                            "(default: warning)")
    group.add_argument("--trace-sample", type=float, default=sample_default,
                       metavar="RATE",
                       help="fraction of root operations to trace, 0..1 "
                            f"(default: {sample_default:g})")
    group.add_argument("--trace-log", default=None, metavar="PATH",
                       help="append finished spans to this JSONL span log "
                            "(render with 'repro trace PATH')")
    group.add_argument("--trace-log-max-mb", type=float, default=64.0,
                       metavar="MB",
                       help="rotate the span log to a .1 sibling once it "
                            "reaches this size (0 = unbounded; default: 64)")
    group.add_argument("--slow-span", type=float, default=0.0,
                       metavar="SECONDS",
                       help="warn about spans slower than this "
                            "(0 disables; default: 0)")


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", choices=("ens-lyon", "synthetic"),
                        default="ens-lyon",
                        help="platform to operate on (default: ens-lyon)")
    parser.add_argument("--master", default=None,
                        help="ENV master host (default: the-doors / first host)")
    parser.add_argument("--sites", type=int, default=2,
                        help="synthetic platform: number of sites")
    parser.add_argument("--seed", type=int, default=0,
                        help="synthetic platform: generator seed")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic NWS deployment from the Effective Network View",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_map = sub.add_parser("map", help="run the ENV mapping and print the view")
    _add_platform_arguments(p_map)
    _add_observability_arguments(p_map)
    p_map.add_argument("--gridml", default=None,
                       help="write the GridML document to this path")

    p_plan = sub.add_parser("plan", help="compute the NWS deployment plan")
    _add_platform_arguments(p_plan)
    _add_observability_arguments(p_plan)
    p_plan.add_argument("--period", type=float, default=60.0,
                        help="target measurement period per clique (seconds)")
    p_plan.add_argument("--config-out", default=None,
                        help="write the manager configuration file to this path")

    p_quality = sub.add_parser("quality",
                               help="compare the ENV plan with baseline plans")
    _add_platform_arguments(p_quality)
    _add_observability_arguments(p_quality)

    p_monitor = sub.add_parser("monitor",
                               help="deploy the simulated NWS and query it")
    _add_platform_arguments(p_monitor)
    _add_observability_arguments(p_monitor)
    p_monitor.add_argument("--duration", type=float, default=300.0,
                           help="simulated monitoring duration (seconds)")
    p_monitor.add_argument("--pairs", nargs="*", default=[],
                           metavar="SRC:DST",
                           help="host pairs to query (default: a small sample)")
    _add_forecast_arguments(p_monitor)

    p_scenarios = sub.add_parser(
        "scenarios", help="list the registered evaluation scenarios")
    p_scenarios.add_argument("--filter", default=None, metavar="PATTERN",
                             help="substring filter on name/family/tags")
    p_scenarios.add_argument("--family", default=None,
                             help="exact family filter (e.g. 'imported')")
    p_scenarios.add_argument("--format", choices=("table", "json"),
                             default="table",
                             help="output format; json matches the "
                                  "GET /scenarios API schema "
                                  "(default: table)")
    _add_observability_arguments(p_scenarios)

    p_import = sub.add_parser(
        "import", help="ingest a topology file as 'imported' scenarios")
    p_import.add_argument("path", help="topology file (CAIDA AS-links, "
                                       "edge list, GraphML or GridML; "
                                       ".gz accepted)")
    p_import.add_argument("--format", choices=FORMATS, default=None,
                          help="source format (default: detect from "
                               "extension/content)")
    p_import.add_argument("--sizes", type=int, nargs="+",
                          default=list(DEFAULT_SIZES), metavar="HOSTS",
                          help="target host counts, one scenario each "
                               f"(default: {' '.join(map(str, DEFAULT_SIZES))}"
                               "; ignored for gridml)")
    p_import.add_argument("--seed", type=int, default=0,
                          help="sampling/annotation seed (default: 0)")
    p_import.add_argument("--strategy", choices=("bfs", "degree"),
                          default="bfs",
                          help="subgraph sampling strategy (default: bfs)")
    p_import.add_argument("--name", default=None, metavar="STEM",
                          help="scenario name stem (default: the file's "
                               "basename; needed when two imported files "
                               "share one)")
    p_import.add_argument("--tag", action="append", default=[],
                          metavar="TAG", help="extra scenario tag "
                                              "(repeatable)")
    p_import.add_argument("--dynamic", action="store_true",
                          help="also register dyn- churn wrappers "
                               "(drift replays)")
    p_import.add_argument("--epochs", type=int, default=6,
                          help="epochs of the dynamic wrappers (default: 6)")
    p_import.add_argument("--manifest",
                          default=os.environ.get("REPRO_IMPORTS",
                                                 DEFAULT_MANIFEST),
                          help="manifest recording imports for later "
                               "invocations (default: $REPRO_IMPORTS or "
                               f"{DEFAULT_MANIFEST})")
    p_import.add_argument("--no-save", action="store_true",
                          help="register for this invocation only "
                               "(do not touch the manifest)")
    p_import.add_argument("--sweep", action="store_true",
                          help="immediately sweep the imported scenarios")
    p_import.add_argument("--jobs", type=int, default=1,
                          help="worker processes for --sweep (default: 1)")
    p_import.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                          help=f"sweep cache for --sweep (default: "
                               f"{DEFAULT_CACHE_DIR})")
    p_import.add_argument("--rerun", action="store_true",
                          help="with --sweep: ignore cached results")
    _add_observability_arguments(p_import)

    p_sweep = sub.add_parser(
        "sweep", help="run map → plan → quality over many scenarios")
    _add_sweep_arguments(p_sweep)
    _add_observability_arguments(p_sweep)
    p_sweep.add_argument("--baselines", nargs="*", default=None,
                         choices=sorted(BASELINE_PLANNERS),
                         help="baseline planners to evaluate per scenario "
                              "(static scenarios only; dynamic replays "
                              "have no baseline stage)")

    p_dynamics = sub.add_parser(
        "dynamics", help="time-varying platforms: replay churn schedules")
    dyn_sub = p_dynamics.add_subparsers(dest="dynamics_command", required=True)

    d_list = dyn_sub.add_parser("list", help="list the dynamic scenarios")
    d_list.add_argument("--filter", default=None, metavar="PATTERN",
                        help="substring filter on name/family/tags")
    d_list.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format; json matches the "
                             "GET /scenarios API schema (default: table)")
    _add_observability_arguments(d_list)

    d_replay = dyn_sub.add_parser(
        "replay", help="replay one dynamic scenario epoch by epoch")
    d_replay.add_argument("--scenario", required=True,
                          help="name of a registered dynamic scenario")
    d_replay.add_argument("--epochs", type=int, default=None,
                          help="override the scenario's schedule length")
    d_replay.add_argument("--period", type=float, default=60.0,
                          help="target measurement period per clique (seconds)")
    d_replay.add_argument("--drift-threshold", type=float, default=0.25,
                          help="relative forecast deviation that flags drift "
                               "(default: 0.25)")
    d_replay.add_argument("--oracle", action="store_true",
                          help="also run the full-remap-every-epoch oracle "
                               "track and report the cost/quality comparison")
    _add_forecast_arguments(d_replay)
    _add_observability_arguments(d_replay)

    d_run = dyn_sub.add_parser(
        "run", help="sweep every dynamic scenario (cached, epoch-aware)")
    _add_sweep_arguments(d_run)
    _add_observability_arguments(d_run)

    p_serve = sub.add_parser(
        "serve", help="serve the results/scenario HTTP API")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8765,
                         help="TCP port; 0 binds an ephemeral one "
                              "(default: 8765)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="worker processes of the shared run pool "
                              "(default: 2)")
    p_serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                         help=f"sweep cache / result store directory "
                              f"(default: {DEFAULT_CACHE_DIR})")
    p_serve.add_argument("--out", default=None, metavar="PATH",
                         help="JSONL result store "
                              "(default: <cache-dir>/results.jsonl)")
    p_serve.add_argument("--queue-size", type=int, default=32,
                         help="max pending jobs before POST /runs returns "
                              "503 (default: 32)")
    p_serve.add_argument("--job-timeout", type=float, default=600.0,
                         metavar="SECONDS",
                         help="per-job wall-clock timeout; past it the "
                              "worker is killed and the pool respawned "
                              "(default: 600)")
    p_serve.add_argument("--job-retries", type=int, default=1,
                         help="extra attempts per job after its worker dies "
                              "mid-task (default: 1)")
    p_serve.add_argument("--breaker-threshold", type=int, default=5,
                         help="consecutive failures of one scenario that "
                              "open its circuit breaker (default: 5)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         metavar="SECONDS",
                         help="open-breaker cooldown before a half-open "
                              "probe is allowed (default: 30)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="SIGTERM graceful-drain budget for in-flight "
                              "jobs (default: 10)")
    p_serve.add_argument("--flight-dir", default=None, metavar="DIR",
                         help="arm the flight recorder: dump forensics "
                              "bundles (spans, metrics history, health) to "
                              "DIR on SLO breach, breaker open, persist "
                              "fallback, SIGTERM or POST /debug/dump "
                              "(default: disabled)")
    p_serve.add_argument("--history-interval", type=float, default=5.0,
                         metavar="SECONDS",
                         help="metrics-history snapshot interval backing "
                              "GET /metrics/history (default: 5)")
    p_serve.add_argument("--runtime-interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="process runtime sampler interval (RSS, CPU, "
                              "fds, GC, loop lag); 0 disables "
                              "(default: 1)")
    _add_fault_argument(p_serve)
    # The server defaults to tracing every request: its spans are the point
    # of GET /trace/{id}, and the overhead benchmark bounds the cost.
    _add_observability_arguments(p_serve, sample_default=1.0)

    p_profile = sub.add_parser(
        "profile", help="profile one scenario run and print the hotspots")
    p_profile.add_argument("scenario",
                           help="name of a registered (static or dynamic) "
                                "scenario")
    p_profile.add_argument("--top", type=int, default=20, metavar="N",
                           help="number of hotspot rows to print (default: 20)")
    p_profile.add_argument("--sort", choices=("cumulative", "tottime"),
                           default="cumulative",
                           help="pstats sort order (default: cumulative)")
    p_profile.add_argument("--period", type=float, default=60.0,
                           help="target measurement period per clique (seconds)")
    p_profile.add_argument("--flame", action="store_true",
                           help="use the sampling profiler and print "
                                "collapsed (flamegraph-ready) stacks instead "
                                "of cProfile hotspots")
    p_profile.add_argument("--flame-out", default=None, metavar="PATH",
                           help="with --flame: write the full collapsed "
                                "stacks to PATH (feed to flamegraph.pl)")
    p_profile.add_argument("--hz", type=int, default=100, metavar="HZ",
                           help="with --flame: sampling frequency "
                                "(default: 100)")
    _add_observability_arguments(p_profile)

    p_trace = sub.add_parser(
        "trace", help="render span-log traces as ASCII timelines")
    p_trace.add_argument("source", metavar="SPAN_LOG",
                        help="JSONL span log written via --trace-log")
    p_trace.add_argument("--trace-id", default=None, metavar="ID",
                         help="render only this trace")
    p_trace.add_argument("--limit", type=int, default=10, metavar="N",
                         help="most recent traces to render (default: 10)")
    p_trace.add_argument("--format", choices=("ascii", "chrome"),
                         default="ascii",
                         help="ascii timelines, or a Chrome-trace JSON "
                              "document loadable in Perfetto / "
                              "chrome://tracing (default: ascii)")
    p_trace.add_argument("--out", default=None, metavar="PATH",
                         help="with --format chrome: write the trace "
                              "document to PATH instead of stdout")
    _add_observability_arguments(p_trace)

    p_obs = sub.add_parser(
        "obs", help="trace analytics: op latency report, critical paths, "
                    "SLO verdicts, span-log diffs")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    o_report = obs_sub.add_parser(
        "report", help="per-op p50/p95/p99 + self time, critical paths and "
                       "SLO verdicts for a span log")
    o_report.add_argument("source", metavar="SPAN_LOG",
                          help="JSONL span log written via --trace-log")
    o_report.add_argument("--top", type=int, default=15, metavar="N",
                          help="op rows to print (default: 15)")
    o_report.add_argument("--critical-paths", type=int, default=1,
                          metavar="N",
                          help="critical paths of the N most recent traces "
                               "(0 disables; default: 1)")
    o_report.add_argument("--slo", action="append", default=[],
                          metavar="OP:MS[:TARGET]",
                          help="grade span op OP against a latency "
                               "threshold of MS milliseconds at TARGET "
                               "compliance (default target 0.99); "
                               "repeatable, replaces the built-in SLOs")
    o_report.add_argument("--format", choices=("table", "json"),
                          default="table",
                          help="output format (default: table)")
    _add_observability_arguments(o_report)
    o_diff = obs_sub.add_parser(
        "diff", help="attribute the latency delta between two span logs "
                     "to specific ops")
    o_diff.add_argument("before", metavar="BEFORE_LOG",
                        help="baseline JSONL span log")
    o_diff.add_argument("after", metavar="AFTER_LOG",
                        help="candidate JSONL span log")
    o_diff.add_argument("--top", type=int, default=15, metavar="N",
                        help="delta rows to print (default: 15)")
    _add_observability_arguments(o_diff)
    o_dump = obs_sub.add_parser(
        "dump", help="trigger a flight-recorder forensics bundle: POST "
                     "/debug/dump on a running server, or dump this "
                     "process locally")
    o_dump.add_argument("--url", default=None, metavar="URL",
                        help="base URL of a running repro serve started "
                             "with --flight-dir (e.g. "
                             "http://127.0.0.1:8765)")
    o_dump.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="dump a bundle of *this* CLI process into DIR "
                             "(no server involved)")
    _add_observability_arguments(o_dump)

    p_top = sub.add_parser(
        "top", help="live ANSI dashboard over a running serve process "
                    "(req/s, route latencies, pool, RSS, breakers)")
    p_top.add_argument("--url", required=True, metavar="URL",
                       help="base URL of a running repro serve "
                            "(e.g. http://127.0.0.1:8765)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="refresh interval (default: 2)")
    p_top.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="frames to render before exiting; 0 runs until "
                            "interrupted (default: 0)")
    p_top.add_argument("--window", type=int, default=120, metavar="SECONDS",
                       help="metrics-history window each frame derives "
                            "rates/percentiles from (default: 120)")
    _add_observability_arguments(p_top)

    p_check = sub.add_parser(
        "check", help="static AST checks: determinism, version-bump, "
                      "atomic-write, async-safety, silent-except, "
                      "pool-boundary invariants")
    p_check.add_argument("--root", default=None, metavar="DIR",
                         help="source tree to scan (default: the installed "
                              "repro package)")
    p_check.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="report format (default: text)")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="baseline JSON of grandfathered findings "
                              "(default: check_baseline.json at the repo "
                              "root, if present)")
    p_check.add_argument("--update-baseline", action="store_true",
                         help="rewrite the baseline to grandfather every "
                              "current finding, then exit 0")
    _add_observability_arguments(p_check)
    return parser


def _cmd_map(args: argparse.Namespace) -> int:
    platform = _build_platform(args)
    view = _map_view(platform, args)
    print(render_env_tree(view.root))
    print(f"\nprobing effort: {view.stats.measurements} measurements, "
          f"{view.stats.bytes_injected / 1e6:.0f} MB injected, "
          f"{view.stats.traceroutes} traceroutes")
    if args.gridml:
        write_gridml(view.to_gridml(), args.gridml)
        print(f"GridML written to {args.gridml}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    platform = _build_platform(args)
    view = _map_view(platform, args)
    plan = plan_from_view(view, period_s=args.period)
    print(render_plan(plan))
    print()
    config_text = render_config(plan)
    print(config_text)
    if args.config_out:
        write_atomic(args.config_out, config_text)
        print(f"configuration written to {args.config_out}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    platform = _build_platform(args)
    result = run_pipeline(platform, mapper=lambda p: _map_view(p, args))
    print(render_table([r.as_row() for r in result.reports]))
    return 0


def _parse_pairs(raw: List[str]) -> List[Tuple[str, str]]:
    pairs = []
    for item in raw:
        if ":" not in item:
            raise ValueError(f"pair {item!r} must be SRC:DST")
        src, dst = item.split(":", 1)
        pairs.append((src, dst))
    return pairs


def _cmd_monitor(args: argparse.Namespace) -> int:
    platform = _build_platform(args)
    result = run_pipeline(platform, period_s=20.0, baselines=(),
                          mapper=lambda p: _map_view(p, args),
                          forecast_window=args.forecast_window,
                          forecast_alpha=args.forecast_alpha,
                          evaluate=False)
    system = NWSSystem(platform, result.plan, config=result.nws_config())
    system.run(args.duration)
    client = NWSClient(system)
    pairs = _parse_pairs(args.pairs)
    if not pairs:
        hosts = sorted(result.plan.hosts)
        pairs = [(hosts[0], h) for h in hosts[1:4]]
    rows = []
    for src, dst in pairs:
        answer = client.bandwidth(src, dst)
        rows.append({
            "src": src, "dst": dst,
            "bandwidth (Mbit/s)": (round(answer.forecast.value, 1)
                                   if answer.available else "n/a"),
            "answered by": answer.method,
        })
    print(f"monitored for {args.duration:g} simulated seconds; "
          f"experiments per clique: {system.measurement_counts()}")
    print(render_table(rows))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    scenarios = list_scenarios(args.filter, family=args.family)
    if args.format == "json":
        # The exact document GET /scenarios serves for the same filters —
        # including the empty match, which stays a valid count-0 document
        # (the exit status still signals it, as in table mode).
        print(catalog_json(scenarios))
        return 0 if scenarios else 1
    if not scenarios:
        wanted = args.filter if args.family is None else \
            f"{args.filter or ''} (family {args.family})".strip()
        print(f"no scenarios match {wanted!r}")
        return 1
    rows = [{
        "scenario": s.name,
        "family": s.family,
        "tags": ",".join(s.tags) or "-",
        "hash": s.content_hash[:12],
        "params": ", ".join(f"{k}={v}" for k, v in s.params) or "-",
        "description": s.description,
    } for s in scenarios]
    print(render_table(rows))
    print(f"\n{len(scenarios)} scenarios registered")
    return 0


def _print_sweep_result(result, jobs: int, output_format: str) -> int:
    """Render one sweep outcome; non-zero exit when any record errored."""
    if output_format == "json":
        print(records_json(result.records))
    else:
        print(result.summary_table())
        print(f"\nswept {len(result.records)} scenarios in "
              f"{result.elapsed_s:.2f}s with {jobs} job(s); "
              f"{result.cache_hits} served from cache")
        print(f"results appended to {result.out_path}")
    for record in result.errors:
        print(f"\nerror in scenario {record.scenario}:\n{record.error}",
              file=sys.stderr)
    return 1 if result.errors else 0


def _cmd_import(args: argparse.Namespace) -> int:
    path = args.path
    if not args.no_save and os.path.exists(args.manifest):
        # A re-import of an already-recorded source keeps the recorded path
        # spelling: the spelling is a scenario parameter, so a respelling
        # would change content hashes and orphan the existing sweep cache.
        recorded = next(
            (e["path"] for e in manifest_entries(args.manifest)
             if e.get("path") and same_source(e["path"], args.path)), None)
        path = recorded or args.path
        # Re-register the other recorded imports first, so a scenario-name
        # collision with an earlier import fails *now* (exit 2, nothing
        # recorded) instead of silently recording an entry that every later
        # invocation skips with a warning.
        load_manifest(args.manifest, exclude_path=path)
    scenarios = register_imported(path, format=args.format,
                                  sizes=tuple(args.sizes), seed=args.seed,
                                  strategy=args.strategy,
                                  tags=tuple(args.tag), name=args.name)
    if args.dynamic:
        scenarios = scenarios + register_imported_dynamic(
            scenarios, epochs=args.epochs)
    names = [s.name for s in scenarios]
    rows = [{
        "scenario": s.name,
        "family": s.family,
        "tags": ",".join(s.tags) or "-",
        "hash": s.content_hash[:12],
        "hosts": s.param_dict.get("hosts", "-"),
        "description": s.description,
    } for s in scenarios]
    print(render_table(rows))
    print(f"\nregistered {len(names)} scenarios from {args.path}")
    if not args.no_save:
        record_import({
            # The path spelling actually *registered* (a re-import under a
            # new spelling keeps the first registration, and the recorded
            # path must match it or hashes would drift across processes and
            # orphan the sweep cache) plus the resolved format, so later
            # loads skip re-sniffing.
            "path": scenarios[0].param_dict["path"],
            "format": scenarios[0].param_dict.get("format", "gridml"),
            "sizes": list(args.sizes),
            "seed": args.seed,
            "strategy": args.strategy,
            "name": args.name,
            "tags": list(args.tag),
            "dynamic": bool(args.dynamic),
            "epochs": args.epochs,
            "digest": scenarios[0].param_dict["digest"],
        }, manifest_path=args.manifest)
        if args.manifest == DEFAULT_MANIFEST:
            print(f"recorded in {args.manifest} "
                  "(later invocations re-register automatically)")
        else:
            print(f"recorded in {args.manifest} (set "
                  f"REPRO_IMPORTS={args.manifest} so later invocations "
                  "re-register automatically)")
    if args.sweep:
        result = run_sweep(names=names, jobs=args.jobs,
                           cache_dir=args.cache_dir, rerun=args.rerun)
        print()
        return _print_sweep_result(result, args.jobs, "table")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _install_faults(args)
    kwargs = {}
    if args.baselines is not None:
        kwargs["baselines"] = tuple(args.baselines)
    result = run_sweep(pattern=args.filter, jobs=args.jobs,
                       cache_dir=args.cache_dir, rerun=args.rerun,
                       out_path=args.out, period_s=args.period,
                       retries=args.retries,
                       task_deadline_s=args.task_deadline, **kwargs)
    return _print_sweep_result(result, args.jobs, args.format)


def _cmd_dynamics(args: argparse.Namespace) -> int:
    if args.dynamics_command == "list":
        scenarios = list_dynamic_scenarios(args.filter)
        if args.format == "json":
            # Same schema as GET /scenarios, restricted to the dynamic
            # family; an empty match is a valid count-0 document.
            print(catalog_json(scenarios))
            return 0 if scenarios else 1
        if not scenarios:
            print(f"no dynamic scenarios match {args.filter!r}")
            return 1
        rows = [{
            "scenario": s.name,
            "base": s.base,
            "tags": ",".join(s.tags) or "-",
            "epochs": s.param_dict.get("epochs", ""),
            "hash": s.content_hash[:12],
            "description": s.description,
        } for s in scenarios]
        print(render_table(rows))
        print(f"\n{len(scenarios)} dynamic scenarios registered")
        return 0

    if args.dynamics_command == "replay":
        result = run_replay(args.scenario, epochs=args.epochs,
                            period_s=args.period,
                            forecast_window=args.forecast_window,
                            forecast_alpha=args.forecast_alpha,
                            drift_threshold=args.drift_threshold,
                            oracle=args.oracle)
        print(render_table([r.as_row() for r in result.records]))
        counts = result.remap_counts
        print(f"\nreplayed {args.scenario} (base {result.base}, master "
              f"{result.master}) over {len(result.records)} epochs in "
              f"{result.elapsed_s:.2f}s")
        print(f"remaps: {counts.get('incremental', 0)} incremental, "
              f"{counts.get('full', 0)} full, {counts.get('none', 0)} quiet; "
              f"mean plan stability {result.mean_stability:.3f}")
        print(f"maintenance cost: {result.remap_measurements} measurements "
              f"(bootstrap mapping: {result.bootstrap_measurements})")
        if args.oracle and result.oracle_measurements:
            gaps = result.quality_gaps()
            remap_only = sum(r.remap_measurements for r in result.records)
            monitor_only = result.remap_measurements - remap_only
            print(f"oracle (full remap every epoch): "
                  f"{result.oracle_measurements} measurements vs "
                  f"{remap_only} incremental remap probes "
                  f"({result.oracle_measurements / max(remap_only, 1):.1f}x) "
                  f"+ {monitor_only} monitoring probes (piggyback on the "
                  f"deployment's own measurement rounds)")
            print(f"quality gap vs oracle: "
                  f"completeness {gaps['completeness']:.4f}, "
                  f"bw_err {gaps['bandwidth_error']:.4f}")
        return 0

    # "run": the dynamic family through the sweep engine (epoch-aware records)
    _install_faults(args)
    names = [s.name for s in list_dynamic_scenarios(args.filter)]
    if not names:
        print(f"no dynamic scenarios match {args.filter!r}", file=sys.stderr)
        return 1
    result = run_sweep(names=names, jobs=args.jobs, cache_dir=args.cache_dir,
                       rerun=args.rerun, out_path=args.out,
                       period_s=args.period, retries=args.retries,
                       task_deadline_s=args.task_deadline)
    return _print_sweep_result(result, args.jobs, args.format)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one pipeline run (or replay) of a registered scenario.

    Deterministic cProfile hotspots by default; ``--flame`` switches to
    the sampling profiler (:mod:`repro.obs.profile`) and prints collapsed
    flamegraph-ready stacks instead.
    """
    import time

    from .dynamics import DynamicScenario
    from .scenarios import get_scenario

    scenario = get_scenario(args.scenario)
    if args.flame:
        return _profile_flame(args, scenario)
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    if isinstance(scenario, DynamicScenario):
        run_replay(scenario, period_s=args.period)
        kind = "dynamic replay"
    else:
        run_pipeline(scenario.build(), period_s=args.period)
        kind = "pipeline run"
    profiler.disable()
    elapsed = time.perf_counter() - start
    print(f"profiled one {kind} of {scenario.name} in {elapsed:.3f}s; "
          f"top {args.top} by {args.sort}:")
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(buffer.getvalue().rstrip())
    return 0


def _profile_flame(args: argparse.Namespace, scenario) -> int:
    """The ``--flame`` arm of ``repro profile``: sample, collapse, print."""
    import time

    from .dynamics import DynamicScenario
    from .obs.profile import PROFILER

    start = time.perf_counter()
    with PROFILER.profiled(hz=args.hz) as capture:
        if isinstance(scenario, DynamicScenario):
            run_replay(scenario, period_s=args.period)
            kind = "dynamic replay"
        else:
            run_pipeline(scenario.build(), period_s=args.period)
            kind = "pipeline run"
    elapsed = time.perf_counter() - start
    collapsed = capture.collapsed()
    print(f"profiled one {kind} of {scenario.name} in {elapsed:.3f}s: "
          f"{capture.samples} samples at {args.hz} Hz "
          f"({PROFILER.mode or 'signal'} backend)")
    if args.flame_out:
        write_atomic(args.flame_out, collapsed)
        print(f"collapsed stacks written to {args.flame_out} "
              f"(feed to flamegraph.pl)")
    lines = collapsed.splitlines()
    shown = lines[:args.top]
    if shown:
        print(f"top {len(shown)} stacks (of {len(lines)}):")
        for line in shown:
            print(f"  {line}")
    else:
        print("no samples captured (run too short? raise --hz or --period)")
    return 0


def _load_spans_or_fail(path: str) -> Optional[List[Dict[str, object]]]:
    """Load a span log for an analysis command; ``None`` means *already
    diagnosed* — the caller just exits 1.

    A missing or empty span log is an operator mistake (wrong path, or the
    traced run never sampled), not an internal error, so it gets a pointed
    diagnostic and exit 1 rather than the generic ``error:`` exit 2.
    """
    try:
        spans = load_span_log(path)
    except OSError as exc:
        print(f"cannot read span log {path!r}: {exc}\n"
              f"(produce one with: repro <command> --trace-sample 1.0 "
              f"--trace-log {path})", file=sys.stderr)
        return None
    if not spans:
        print(f"no spans in {path}: the log exists but holds no span "
              f"records\n(was the producing run started with "
              f"--trace-sample 0? rerun with --trace-sample 1.0)",
              file=sys.stderr)
        return None
    return spans


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render the traces of a JSONL span log as ASCII timelines."""
    spans = _load_spans_or_fail(args.source)
    if spans is None:
        return 1
    if args.format == "chrome":
        from .obs.export import chrome_trace_json

        if args.trace_id is not None:
            spans = [s for s in spans
                     if s.get("trace_id") == args.trace_id]
            if not spans:
                print(f"no spans for trace {args.trace_id!r} in "
                      f"{args.source}", file=sys.stderr)
                return 1
        document = chrome_trace_json(spans)
        if args.out:
            write_atomic(args.out, document)
            print(f"wrote {len(spans)} span(s) as Chrome trace events to "
                  f"{args.out} (open in Perfetto or chrome://tracing)",
                  file=sys.stderr)
        else:
            print(document, end="")
        return 0
    if args.trace_id is not None:
        selected = [s for s in spans if s.get("trace_id") == args.trace_id]
        if not selected:
            print(f"no spans for trace {args.trace_id!r} in {args.source}",
                  file=sys.stderr)
            return 1
        print(render_timeline(selected, trace_id=args.trace_id))
        orphans = find_orphans(selected)
        if orphans:
            print(f"warning: {len(orphans)} orphaned span(s) in trace "
                  f"{args.trace_id}: parents missing from the log (ring "
                  f"buffer wrapped, unshipped worker spans, or mid-trace "
                  f"rotation)", file=sys.stderr)
            return 1
        return 0
    if args.limit < 1:
        raise ValueError("--limit must be >= 1")
    groups = group_traces(spans)
    shown = list(groups.items())[-args.limit:]
    for index, (trace_id, trace_spans) in enumerate(shown):
        if index:
            print()
        print(render_timeline(trace_spans, trace_id=trace_id))
    if len(groups) > len(shown):
        print(f"\n({len(groups) - len(shown)} older trace(s) not shown; "
              f"raise --limit or pass --trace-id)")
    orphans = find_orphans(spans)
    if orphans:
        names = sorted({str(s.get("name", "?")) for s in orphans})
        print(f"warning: {len(orphans)} orphaned span(s) reference parents "
              f"missing from {args.source} (ops: {', '.join(names[:5])}): "
              f"the log is incomplete — the ring buffer wrapped, a worker's "
              f"spans were never shipped, or the log rotated mid-trace",
              file=sys.stderr)
        return 1
    return 0


def _parse_slo_spec(spec: str):
    """``OP:MS[:TARGET]`` → an :class:`~repro.obs.slo.SLO` over span op OP."""
    from .obs.slo import SLO

    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"bad --slo spec {spec!r}: expected OP:MS[:TARGET]")
    op = parts[0].strip()
    if not op:
        raise ValueError(f"bad --slo spec {spec!r}: empty op")
    threshold_ms = float(parts[1])
    target = float(parts[2]) if len(parts) == 3 else 0.99
    if threshold_ms <= 0:
        raise ValueError(f"bad --slo spec {spec!r}: MS must be positive")
    if not 0.0 < target < 1.0:
        raise ValueError(f"bad --slo spec {spec!r}: TARGET must be in (0, 1)")
    return SLO(name=f"{op}-latency", kind="latency", target=target,
               threshold_s=threshold_ms / 1e3, span_op=op,
               description=f"{op} under {threshold_ms:g} ms "
                           f"for {target:.2%} of spans")


def _cmd_obs(args: argparse.Namespace) -> int:
    """Trace analytics over span logs: ``report``, ``diff``, ``dump``."""
    if args.obs_command == "dump":
        # The dump namespace has no --top; handle it before the shared
        # validation below.
        return _cmd_obs_dump(args)

    from .obs.analyze import aggregate_ops, critical_path, diff_traces
    from .obs.slo import DEFAULT_SLOS, evaluate_spans

    if args.top < 1:
        raise ValueError("--top must be >= 1")

    if args.obs_command == "diff":
        before = _load_spans_or_fail(args.before)
        if before is None:
            return 1
        after = _load_spans_or_fail(args.after)
        if after is None:
            return 1
        rows = diff_traces(before, after)[:args.top]
        print(f"op latency deltas — {args.before} ({len(before)} spans) → "
              f"{args.after} ({len(after)} spans); positive delta = slower "
              f"in after:")
        print(render_table([{
            "op": r["op"],
            "before n": r["before_count"],
            "after n": r["after_count"],
            "before total": f"{r['before_total_s'] * 1e3:.1f}ms",
            "after total": f"{r['after_total_s'] * 1e3:.1f}ms",
            "delta": f"{r['delta_s'] * 1e3:+.1f}ms",
            "delta self": f"{r['delta_self_s'] * 1e3:+.1f}ms",
        } for r in rows]))
        return 0

    spans = _load_spans_or_fail(args.source)
    if spans is None:
        return 1
    if args.critical_paths < 0:
        raise ValueError("--critical-paths must be >= 0")

    op_rows = aggregate_ops(spans)
    groups = group_traces(spans)
    slos = [_parse_slo_spec(spec) for spec in args.slo] or \
        [s for s in DEFAULT_SLOS if s.span_op is not None]
    verdicts = evaluate_spans(slos, spans)

    recent = (list(groups)[-args.critical_paths:]
              if args.critical_paths else [])

    if args.format == "json":
        paths = {tid: critical_path(groups[tid]) for tid in recent}
        print(json.dumps({"spans": len(spans), "traces": len(groups),
                          "ops": op_rows, "critical_paths": paths,
                          "slo": verdicts}, indent=2, sort_keys=True))
        return 1 if verdicts.get("status") == "breach" else 0

    print(f"{args.source}: {len(spans)} spans across {len(groups)} "
          f"trace(s)\n")
    print(f"per-op latency (top {min(args.top, len(op_rows))} "
          f"of {len(op_rows)} by total time):")
    print(render_table([{
        "op": r["op"],
        "count": r["count"],
        "errors": r["errors"],
        "total": f"{r['total_s'] * 1e3:.1f}ms",
        "self": f"{r['self_s'] * 1e3:.1f}ms",
        "p50": f"{r['p50_s'] * 1e3:.1f}ms",
        "p95": f"{r['p95_s'] * 1e3:.1f}ms",
        "p99": f"{r['p99_s'] * 1e3:.1f}ms",
        "max": f"{r['max_s'] * 1e3:.1f}ms",
    } for r in op_rows[:args.top]]))

    for trace_id in recent:
        steps = critical_path(groups[trace_id])
        total = sum(step["self_s"] for step in steps)
        print(f"\ncritical path of trace {trace_id} "
              f"({total * 1e3:.1f} ms on-path):")
        for step in steps:
            indent = "  " * step["depth"]
            print(f"  {indent}{step['name']}: "
                  f"{step['duration_s'] * 1e3:.1f}ms "
                  f"(self {step['self_s'] * 1e3:.1f}ms)")

    print(f"\nSLO verdicts ({len(verdicts['slos'])} objectives, "
          f"overall: {verdicts['status']}):")
    print(render_table([{
        "slo": v["name"],
        "status": v["status"],
        "compliance": "n/a" if v["compliance"] is None
        else f"{v['compliance']:.4f}",
        "target": f"{v['objective']['target']:.4f}",
        "burn": "n/a" if v["burn_rate"] is None
        else f"{v['burn_rate']:.2f}",
        "spans": v["total"],
        "objective": v["description"] or v["name"],
    } for v in verdicts["slos"]]))
    if verdicts["status"] == "breach":
        print("\nSLO breach: at least one objective is out of budget "
              "(see burn column)", file=sys.stderr)
        return 1
    return 0


def _fetch_json(url: str, timeout_s: float = 10.0,
                method: str = "GET") -> Dict[str, object]:
    """GET/POST ``url`` and decode the JSON body (urllib errors are OSError,
    so ``main`` maps failures to exit 2 with a readable message)."""
    import urllib.request

    request = urllib.request.Request(url, method=method)
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        payload = json.loads(response.read().decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"unexpected non-object JSON from {url}")
    return payload


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    """Trigger a flight-recorder bundle, remotely or in-process."""
    if bool(args.url) == bool(args.flight_dir):
        raise ValueError("obs dump needs exactly one of --url (dump a "
                         "running server) or --flight-dir (dump this "
                         "process)")
    if args.url:
        base = args.url.rstrip("/")
        payload = _fetch_json(f"{base}/debug/dump", method="POST")
        print(f"flight bundle written by {base}: {payload.get('path')}")
        return 0
    from .obs.flightrec import FLIGHT

    FLIGHT.configure(flight_dir=args.flight_dir)
    path = FLIGHT.dump("manual")
    if path is None:
        print(f"error: flight dump into {args.flight_dir} failed "
              f"(see log)", file=sys.stderr)
        return 1
    print(f"flight bundle written: {path}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: poll /metrics/history + /healthz and render."""
    import time

    from .obs.export import render_dashboard

    if args.interval <= 0:
        raise ValueError("--interval must be positive")
    if args.iterations < 0:
        raise ValueError("--iterations must be >= 0")
    if args.window < 1:
        raise ValueError("--window must be >= 1")
    base = args.url.rstrip("/")
    frame = 0
    while True:
        history = _fetch_json(f"{base}/metrics/history?window={args.window}")
        healthz = _fetch_json(f"{base}/healthz")
        screen = render_dashboard(history, healthz, url=base)
        if args.iterations != 1:
            # Interactive mode: clear and home before each frame so the
            # dashboard repaints in place instead of scrolling.
            print("\x1b[2J\x1b[H", end="")
        print(screen, flush=True)
        frame += 1
        if args.iterations and frame >= args.iterations:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise ValueError("--jobs must be >= 1")
    if args.queue_size < 1:
        raise ValueError("--queue-size must be >= 1")
    if args.job_timeout <= 0:
        raise ValueError("--job-timeout must be positive")
    if args.job_retries < 0:
        raise ValueError("--job-retries must be >= 0")
    if args.breaker_threshold < 1:
        raise ValueError("--breaker-threshold must be >= 1")
    if args.breaker_cooldown < 0:
        raise ValueError("--breaker-cooldown must be >= 0")
    if args.drain_timeout < 0:
        raise ValueError("--drain-timeout must be >= 0")
    if args.history_interval <= 0:
        raise ValueError("--history-interval must be positive")
    if args.runtime_interval < 0:
        raise ValueError("--runtime-interval must be >= 0")
    _install_faults(args)
    app = ReproApp(cache_dir=args.cache_dir, store_path=args.out,
                   pool_processes=args.jobs, job_timeout_s=args.job_timeout,
                   queue_size=args.queue_size, job_retries=args.job_retries,
                   breaker_threshold=args.breaker_threshold,
                   breaker_cooldown_s=args.breaker_cooldown,
                   flight_dir=args.flight_dir,
                   history_interval_s=args.history_interval,
                   runtime_interval_s=args.runtime_interval)

    def announce(port: int) -> None:
        # Machine-parseable: the smoke harness starts `--port 0` and reads
        # the bound port off this line.
        print(f"serving on http://{args.host}:{port}", flush=True)

    run_server(app, host=args.host, port=args.port, announce=announce,
               drain_timeout_s=args.drain_timeout)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import (load_baseline, render_json, render_text, run_check,
                        write_baseline)

    pkg_root = os.path.dirname(os.path.abspath(__file__))
    root = args.root or pkg_root
    baseline_path = args.baseline
    if baseline_path is None:
        # src/repro -> repo root in the development layout; simply absent
        # (-> no baseline) for an installed package.
        baseline_path = os.path.normpath(
            os.path.join(pkg_root, os.pardir, os.pardir,
                         "check_baseline.json"))
    if args.update_baseline:
        result = run_check(root)
        write_baseline(baseline_path, result.findings)
        print(f"baseline updated: {len(result.findings)} findings "
              f"grandfathered into {baseline_path}")
        return 0
    baseline = load_baseline(baseline_path)
    result = run_check(root, baseline=baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def _load_recorded_imports(command: str) -> None:
    """Re-register manifest-recorded imported scenarios for this invocation.

    Makes ``repro import`` persistent across CLI processes: a later
    ``repro scenarios --family imported`` / ``repro sweep`` / ``repro
    serve`` sees the same registrations (and identical content hashes, so
    the sweep cache keeps working).  A non-default manifest written with
    ``--manifest PATH`` is picked up via the ``REPRO_IMPORTS`` environment
    variable.  The ``import`` command itself skips the reload — it is about
    to (re-)register its own source with fresh knobs.
    """
    if command not in ("scenarios", "sweep", "dynamics", "profile", "serve"):
        # Only registry-consuming commands reload (cheap — recorded digests
        # are trusted until build time — but pointless for commands that
        # never look at the registry); ``import`` handles its own manifest.
        return
    for message in load_recorded_imports():
        print(f"warning: {message}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro`` command; returns the exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "map": _cmd_map,
        "plan": _cmd_plan,
        "quality": _cmd_quality,
        "monitor": _cmd_monitor,
        "scenarios": _cmd_scenarios,
        "import": _cmd_import,
        "sweep": _cmd_sweep,
        "dynamics": _cmd_dynamics,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "obs": _cmd_obs,
        "top": _cmd_top,
        "check": _cmd_check,
    }
    _load_recorded_imports(args.command)
    try:
        setup_logging(args.log_level)
        TRACER.configure(sample_rate=args.trace_sample,
                         log_path=args.trace_log,
                         slow_span_s=args.slow_span,
                         log_max_bytes=int(args.trace_log_max_mb * 1024
                                           * 1024))
        # One root span per invocation: the layers below (pipeline stages,
        # mapper phases, replay epochs, sweep workers) parent under it.
        # ``serve`` roots its own per-request traces instead, and the
        # sampling default keeps everything a no-op unless asked for.
        with TRACER.start_trace(f"cli.{args.command}") as root:
            status = handlers[args.command](args)
        if root.sampled and args.trace_log:
            print(f"trace {root.trace_id} appended to {args.trace_log} "
                  f"(render with: repro trace {args.trace_log})",
                  file=sys.stderr)
        return status
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
