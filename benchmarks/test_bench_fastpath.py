"""FASTPATH — the hot-path overhaul's speedup and equivalence gate.

The fast path (incremental max-min reallocation, probe memoisation,
constraint-key/steady-state caching, collision-scan hoisting) must make the
end-to-end simulate → map → plan → quality pipeline at least **3× faster**
on the largest WAN-grid catalog scenario — *without changing any result*.
Both properties are asserted here: the speedup on identical inputs, and
bit-identical ENV trees, plans and quality scores across the **whole**
catalog (static and dynamic) with the fast path on vs. off.

``repro.perf.fast_path(False)`` routes every layer through the reference
implementations (global recompute per flow event, no memo, per-comparison
route re-resolution), which is what the pre-overhaul code did.
"""

from __future__ import annotations

import time

from repro import perf
from repro.analysis import render_env_tree, render_plan, render_table
from repro.core import render_config
from repro.dynamics import DynamicScenario, run_replay
from repro.pipeline import run_pipeline
from repro.scenarios import get_scenario, list_scenarios

#: The largest WAN-grid scenario in the catalog (see repro.scenarios.catalog).
LARGEST_WAN_GRID = "wan-grid-3x2"
REQUIRED_SPEEDUP = 3.0


def _pipeline_digest(result):
    """Everything the acceptance criteria require to be bit-identical."""
    return {
        "tree": render_env_tree(result.view.root),
        "plan": render_plan(result.plan),
        "config": render_config(result.plan),
        "quality": [r.as_row() for r in result.reports],
    }


def _replay_digest(result):
    return [
        {"epoch": r.epoch, "remap_mode": r.remap_mode,
         "plan_cliques": r.plan_cliques, "stability": r.plan_stability,
         "completeness": r.completeness,
         "bandwidth_error": r.bandwidth_error,
         "harmful_collisions": r.harmful_collisions}
        for r in result.records
    ]


def _timed_pipeline(scenario, enabled: bool, rounds: int = 3):
    """Best-of-``rounds`` pipeline wall time on a fresh platform each round."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        platform = scenario.build()
        with perf.fast_path(enabled):
            start = time.perf_counter()
            result = run_pipeline(platform)
            best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_fastpath_speedup_on_largest_wan_grid():
    scenario = get_scenario(LARGEST_WAN_GRID)
    baseline_s, baseline = _timed_pipeline(scenario, enabled=False)
    fast_s, fast = _timed_pipeline(scenario, enabled=True)
    speedup = baseline_s / fast_s
    print(f"\n[FASTPATH] {scenario.name}: baseline {baseline_s:.3f}s, "
          f"fast {fast_s:.3f}s -> {speedup:.2f}x")
    assert _pipeline_digest(baseline) == _pipeline_digest(fast)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"fast path is only {speedup:.2f}x faster on {scenario.name} "
        f"(required: {REQUIRED_SPEEDUP}x)")


def test_bench_fastpath_results_identical_across_catalog():
    rows = []
    for scenario in list_scenarios():
        if isinstance(scenario, DynamicScenario):
            with perf.fast_path(False):
                reference = _replay_digest(run_replay(scenario))
            with perf.fast_path(True):
                fast = _replay_digest(run_replay(scenario))
            kind = "dynamic"
        else:
            with perf.fast_path(False):
                reference = _pipeline_digest(run_pipeline(scenario.build()))
            with perf.fast_path(True):
                fast = _pipeline_digest(run_pipeline(scenario.build()))
            kind = "static"
        identical = reference == fast
        rows.append({"scenario": scenario.name, "kind": kind,
                     "identical": identical})
        assert identical, (f"fast path changed the results of "
                           f"{scenario.name}")
    print("\n[FASTPATH] catalog equivalence, fast path on vs. off")
    print(render_table(rows))
    assert len(rows) == len(list_scenarios())
