"""repro — reproduction of "Automatic deployment of the Network Weather
Service using the Effective Network View" (Legrand & Quinson, 2003).

The package is organised as the paper's pipeline:

* :mod:`repro.simkernel` — discrete-event simulation kernel;
* :mod:`repro.netsim`   — simulated network platforms (the evaluation substrate);
* :mod:`repro.gridml`   — the GridML description format used by ENV;
* :mod:`repro.env`      — the Effective Network View mapper;
* :mod:`repro.core`     — the paper's contribution: deployment planning,
  constraint checking, quality metrics, baselines and the NWS manager;
* :mod:`repro.nws`      — a simulated Network Weather Service running the plans;
* :mod:`repro.analysis` — scoring, cost models and report rendering.

Quick start::

    from repro.netsim import build_ens_lyon
    from repro.env import map_ens_lyon
    from repro.core import plan_from_view
    from repro.nws import NWSSystem, NWSClient

    platform = build_ens_lyon()
    view = map_ens_lyon(platform)          # ENV mapping (Figure 1(b))
    plan = plan_from_view(view)            # NWS deployment plan (Figure 3)
    nws = NWSSystem(platform, plan)
    nws.run(300.0)                         # five simulated minutes
    print(NWSClient(nws).bandwidth("the-doors", "sci3"))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
