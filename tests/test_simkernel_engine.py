"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simkernel import (
    Engine,
    Event,
    Interrupt,
    RandomStreams,
    Resource,
    StopSimulation,
    Store,
    Tracer,
    derive_seed,
)


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        eng = Engine()
        eng.timeout(3.5)
        eng.run()
        assert eng.now == pytest.approx(3.5)

    def test_run_until_time_stops_early(self):
        eng = Engine()
        eng.timeout(10.0)
        eng.run(until=4.0)
        assert eng.now == pytest.approx(4.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Engine().timeout(-1.0)

    def test_run_until_past_time_rejected(self):
        eng = Engine(start_time=10.0)
        with pytest.raises(ValueError):
            eng.run(until=5.0)

    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            eng.timeout(delay, value=delay).add_callback(
                lambda ev: fired.append(ev.value))
        eng.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_call_at_runs_callback(self):
        eng = Engine()
        seen = []
        eng.call_at(2.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [2.0]

    def test_call_at_in_past_rejected(self):
        eng = Engine(start_time=3.0)
        with pytest.raises(ValueError):
            eng.call_at(1.0, lambda: None)

    def test_event_cannot_fire_twice(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_event_value_before_trigger_raises(self):
        eng = Engine()
        with pytest.raises(RuntimeError):
            _ = eng.event().value


class TestRunUntilTimeBound:
    def test_later_events_stay_queued_and_resume(self):
        eng = Engine()
        fired = []
        eng.timeout(1.0, value="early").add_callback(
            lambda ev: fired.append(ev.value))
        eng.timeout(5.0, value="late").add_callback(
            lambda ev: fired.append(ev.value))
        eng.run(until=2.0)
        assert fired == ["early"]
        assert eng.now == pytest.approx(2.0)
        # The time bound pauses, it does not cancel: a later run continues.
        eng.run()
        assert fired == ["early", "late"]
        assert eng.now == pytest.approx(5.0)

    def test_until_exact_event_time_fires_the_event(self):
        eng = Engine()
        fired = []
        eng.timeout(3.0).add_callback(lambda ev: fired.append(eng.now))
        eng.run(until=3.0)
        assert fired == [3.0]
        assert eng.now == pytest.approx(3.0)

    def test_until_with_empty_queue_advances_clock(self):
        eng = Engine()
        eng.run(until=7.0)
        assert eng.now == pytest.approx(7.0)

    def test_until_now_is_a_noop(self):
        eng = Engine(start_time=2.0)
        eng.timeout(1.0)
        eng.run(until=2.0)
        assert eng.now == pytest.approx(2.0)


class TestStopSimulation:
    @pytest.mark.parametrize("strict", [True, False])
    def test_stop_from_process_terminates_run(self, strict):
        """Regression: strict=False must not swallow StopSimulation."""
        eng = Engine(strict=strict)
        fired = []
        eng.timeout(10.0).add_callback(lambda ev: fired.append("too late"))

        def stopper():
            yield eng.timeout(1.0)
            raise StopSimulation("done")

        eng.process(stopper())
        assert eng.run() == "done"
        assert eng.now == pytest.approx(1.0)
        assert fired == []

    def test_stop_without_value_returns_none(self):
        eng = Engine(strict=False)

        def stopper():
            yield eng.timeout(1.0)
            raise StopSimulation

        eng.process(stopper())
        assert eng.run() is None

    def test_stop_from_callback_terminates_run(self):
        def boom(_event):
            raise StopSimulation("from-callback")

        eng = Engine(strict=False)
        eng.timeout(2.0).add_callback(boom)
        eng.timeout(5.0)
        assert eng.run() == "from-callback"
        assert eng.now == pytest.approx(2.0)

    def test_run_all_honours_stop(self):
        eng = Engine(strict=False)

        def stopper():
            yield eng.timeout(1.0)
            raise StopSimulation

        eng.process(stopper())
        eng.timeout(50.0)
        eng.run_all()
        assert eng.now == pytest.approx(1.0)

    def test_ordinary_exception_still_swallowed_when_nonstrict(self):
        eng = Engine(strict=False)

        def boom():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        eng.process(boom())
        eng.timeout(2.0)
        eng.run()  # must not raise
        assert eng.now == pytest.approx(2.0)


class TestProcesses:
    def test_process_return_value(self):
        eng = Engine()

        def worker():
            yield eng.timeout(1.0)
            return "done"

        proc = eng.process(worker())
        assert eng.run(until=proc) == "done"
        assert eng.now == pytest.approx(1.0)

    def test_process_receives_event_value(self):
        eng = Engine()
        results = []

        def worker():
            value = yield eng.timeout(1.0, value=42)
            results.append(value)

        eng.process(worker())
        eng.run()
        assert results == [42]

    def test_processes_wait_on_each_other(self):
        eng = Engine()

        def child():
            yield eng.timeout(2.0)
            return 7

        def parent():
            value = yield eng.process(child())
            return value * 2

        proc = eng.process(parent())
        assert eng.run(until=proc) == 14

    def test_interrupt_wakes_process(self):
        eng = Engine()
        caught = []

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as exc:
                caught.append(exc.cause)
            return "interrupted"

        proc = eng.process(sleeper())
        eng.call_at(1.0, lambda: proc.interrupt("wake up"))
        assert eng.run(until=proc) == "interrupted"
        assert caught == ["wake up"]
        assert eng.now == pytest.approx(1.0)

    def test_interrupting_finished_process_is_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(0.1)

        proc = eng.process(quick())
        eng.run(until=proc)
        proc.interrupt("too late")  # must not raise
        eng.run()

    def test_strict_mode_propagates_exceptions(self):
        eng = Engine(strict=True)

        def boom():
            yield eng.timeout(0.1)
            raise ValueError("boom")

        proc = eng.process(boom())
        with pytest.raises(ValueError):
            eng.run(until=proc)

    def test_yielding_non_event_raises(self):
        eng = Engine()

        def bad():
            yield 42

        eng.process(bad())
        with pytest.raises(TypeError):
            eng.run()

    def test_any_of_fires_on_first(self):
        eng = Engine()

        def waiter():
            result = yield eng.any_of([eng.timeout(5.0, "slow"),
                                       eng.timeout(1.0, "fast")])
            return sorted(result.values())

        proc = eng.process(waiter())
        assert eng.run(until=proc) == ["fast"]
        assert eng.now == pytest.approx(1.0)

    def test_all_of_waits_for_everything(self):
        eng = Engine()

        def waiter():
            result = yield eng.all_of([eng.timeout(5.0, "slow"),
                                       eng.timeout(1.0, "fast")])
            return sorted(result.values())

        proc = eng.process(waiter())
        assert eng.run(until=proc) == ["fast", "slow"]
        assert eng.now == pytest.approx(5.0)


class TestResources:
    def test_resource_grants_up_to_capacity(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        eng.run()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        res.release(r1)
        eng.run()
        assert r3.triggered

    def test_release_unknown_request_is_benign(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)      # still queued: should just be dropped
        res.release(r1)
        assert res.count == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_store_fifo_order(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        store.put("b")
        assert store.get().value == "a"
        assert store.try_get() == "b"
        assert store.try_get() is None

    def test_store_wakes_waiting_getter(self):
        eng = Engine()
        store = Store(eng)
        received = []

        def consumer():
            item = yield store.get()
            received.append(item)

        eng.process(consumer())
        eng.call_at(1.0, lambda: store.put("late"))
        eng.run()
        assert received == ["late"]


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        assert list(streams.stream("x").random(5)) != list(streams.stream("y").random(5))

    def test_derive_seed_is_stable_and_positive(self):
        assert derive_seed(3, "abc") == derive_seed(3, "abc")
        assert derive_seed(3, "abc") >= 0

    def test_spawn_is_independent(self):
        parent = RandomStreams(1)
        child = parent.spawn("child")
        assert list(parent.stream("s").random(3)) != list(child.stream("s").random(3))


class TestTracer:
    def test_emit_and_select(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", x=1)
        tracer.emit(2.0, "b", x=2)
        tracer.emit(3.0, "a", x=3)
        assert len(tracer) == 3
        assert [r["x"] for r in tracer.select("a")] == [1, 3]
        assert tracer.select("a", x=3)[0].time == 3.0
        assert tracer.categories() == {"a": 2, "b": 1}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "a")
        assert len(tracer) == 0

    def test_listener_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.add_listener(lambda rec: seen.append(rec.category))
        tracer.emit(0.0, "x")
        assert seen == ["x"]
