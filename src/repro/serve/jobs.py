"""Background pipeline execution for the serving layer.

A bounded queue of *jobs* — one registered scenario each — dispatched onto
the **shared** warm multiprocessing pool of :mod:`repro.sweep.runner`
(:func:`~repro.sweep.runner.submit_scenario`; never a second pool), so an
HTTP-submitted run and a CLI sweep compete for the same workers instead of
oversubscribing the machine.

Results flow through exactly the sweep engine's persistence
(:func:`~repro.sweep.runner.store_record`): the per-scenario cache entry and
the JSONL result store.  A run requested over HTTP is therefore a **cache
hit** for a later ``repro sweep`` of the same scenario, and vice versa — a
job whose scenario is already cached completes instantly without touching
the pool.

Lifecycle per job: ``queued`` → ``running`` → one of ``ok`` / ``error`` /
``timeout`` / ``cancelled``.  Failure handling (PR 8):

* a worker that **dies** mid-task (the dispatcher sees worker pids vanish,
  or the pool generation change, or ``get()`` raise) costs the job one of
  its ``retries`` re-dispatches — with backoff — before it is marked
  ``error``; the dispatcher itself always survives;
* a job past ``timeout_s`` gets **real** timeout semantics: the shared
  pool is respawned (killing the hung worker — a pool task cannot be
  killed individually), so the slot is actually freed instead of leaking
  behind an "abandoned" task;
* repeated failures of one scenario trip its **circuit breaker**
  (:mod:`repro.serve.breaker`): submissions are refused with 503 until a
  half-open probe succeeds, so a poisoned scenario cannot starve the
  queue;
* cancellation is immediate for queued jobs; a cancelled *running* job's
  result is abandoned while its dispatcher drains the worker before
  dispatching new work — abandonment never over-commits the pool;
* during **drain** (SIGTERM) the queue refuses new work and waits for
  in-flight jobs up to a deadline.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs.logs import get_logger, kv
from ..obs.metrics import REGISTRY
from ..obs.profile import PROFILER
from ..obs.runtime import RUNTIME
from ..obs.trace import TRACER
from ..perf import COUNTERS
from ..sweep.results import SweepRecord
from ..sweep.runner import (
    DEFAULT_BASELINES,
    DEFAULT_CACHE_DIR,
    load_cached_record,
    pool_generation,
    respawn_pool,
    store_record,
    submit_scenario,
    worker_deaths,
)
from .breaker import BreakerBoard

__all__ = ["Job", "JobQueue", "QueueFull"]

#: How often a dispatcher polls its in-flight pool task.
_POLL_INTERVAL_S = 0.05
#: How long after observing *some* worker death a dispatcher waits for its
#: own result before declaring the task lost — a death elsewhere (or a
#: ``maxtasksperchild`` recycle) usually lets the result land within a poll
#: or two.
_DEATH_GRACE_S = 0.25

_LOG = get_logger("serve.jobs")

#: Queue-wait distribution — submission to dispatcher pick-up.  Observed for
#: every job; the matching per-trace ``serve.queue_wait`` span only exists
#: for sampled requests.
_QUEUE_WAIT_SECONDS = REGISTRY.histogram(
    "repro_job_queue_wait_seconds",
    "seconds a job waited in the queue before a dispatcher picked it up")
_JOB_RETRIES = REGISTRY.counter(
    "repro_job_retries_total",
    "serve job re-dispatches after infrastructure failures, by trigger",
    labels=("reason",))
_PERSIST_ERRORS = REGISTRY.counter(
    "repro_job_persist_errors_total",
    "job results the cache/store refused to write (kept in memory instead)")

TERMINAL = ("ok", "error", "timeout", "cancelled")


class QueueFull(Exception):
    """The job queue is at capacity (or draining); retry later."""


@dataclass
class Job:
    """One submitted pipeline run."""

    id: str
    scenario: str
    period_s: float = 60.0
    baselines: Tuple[str, ...] = DEFAULT_BASELINES
    rerun: bool = False
    status: str = "queued"
    cached: bool = False
    error: Optional[str] = None
    record: Optional[SweepRecord] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic twins of the wall-clock stamps above.  The wall clock is
    #: for display only; queue-wait and job durations are computed from
    #: these so an NTP step can't produce negative waits or bogus spans.
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    #: Re-dispatches this job used (0 when the first attempt succeeded).
    retries_used: int = 0
    #: The submitting request's trace context (``None`` outside a sampled
    #: trace): the queue-wait/job spans parent under it and the pool worker
    #: adopts it.
    trace_ctx: Optional[Dict[str, str]] = None
    #: Non-zero (an ``X-Repro-Profile`` header) arms the pool worker's
    #: sampling profiler for this job; its collapsed stacks are folded into
    #: the process-wide profiler (``GET /profile``) on completion.
    profile_hz: int = 0
    #: How many profiler samples the worker shipped back (``None`` until a
    #: profiled job finishes).
    profile_samples: Optional[int] = None

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace_ctx.get("trace_id") if self.trace_ctx else None

    @property
    def done(self) -> bool:
        return self.status in TERMINAL

    def as_payload(self) -> Dict[str, object]:
        """The job as a JSON-compatible API record."""
        payload: Dict[str, object] = {
            "id": self.id,
            "scenario": self.scenario,
            "status": self.status,
            "cached": self.cached,
            "period_s": self.period_s,
            "baselines": list(self.baselines),
            "rerun": self.rerun,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "retries_used": self.retries_used,
            "trace_id": self.trace_id,
            "profile_hz": self.profile_hz,
            "profile_samples": self.profile_samples,
        }
        # Monotonic-derived duration: immune to wall-clock steps, unlike
        # finished_at - started_at which clients must treat as display.
        if self.finished_mono is not None:
            start_mono = (self.started_mono
                          if self.started_mono is not None
                          else self.submitted_mono)
            payload["duration_s"] = round(self.finished_mono - start_mono, 6)
        if self.record is not None:
            payload["record"] = {
                "scenario": self.record.scenario,
                "status": self.record.status,
                "scenario_hash": self.record.scenario_hash,
                "code_version": self.record.code_version,
                "elapsed_s": self.record.elapsed_s,
                "summary": self.record.summary,
            }
        return payload


class JobQueue:
    """Bounded asyncio job queue over the shared sweep worker pool."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR,
                 out_path: Optional[str] = None,
                 pool_processes: int = 2,
                 timeout_s: float = 600.0,
                 maxsize: int = 32,
                 keep_finished: int = 256,
                 retries: int = 1,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 30.0,
                 on_persist_error: Optional[
                     Callable[[SweepRecord], None]] = None) -> None:
        self.cache_dir = cache_dir
        self.out_path = out_path
        self.pool_processes = max(1, pool_processes)
        self.timeout_s = timeout_s
        self.maxsize = maxsize
        self.keep_finished = keep_finished
        self.retries = max(0, retries)
        #: Where a result goes when the disk refuses it (the app wires this
        #: to the store's in-memory fallback) — degradation, not data loss.
        self.on_persist_error = on_persist_error
        self.breakers = BreakerBoard(threshold=breaker_threshold,
                                     cooldown_s=breaker_cooldown_s)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._ids = itertools.count(1)
        self._dispatchers: List[asyncio.Task] = []
        self._draining = False
        self._rng = random.Random(0x0B5E)
        self.completed = 0
        #: Dispatchers with a pool task in flight right now — the
        #: pool-utilisation gauge's source (``repro_pool_busy_workers``).
        self._busy = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher tasks (as many as the pool has workers —
        the pool itself is the real concurrency limit)."""
        if self._dispatchers:
            return
        for _ in range(self.pool_processes):
            self._dispatchers.append(asyncio.ensure_future(self._dispatch()))

    async def close(self) -> None:
        """Cancel dispatchers; queued jobs are marked cancelled."""
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                # The expected reply to the cancel() above; note it so a
                # hung shutdown is diagnosable from the log alone.
                _LOG.debug("event=dispatcher_cancelled %s",
                           kv(task=task.get_name()))
        self._dispatchers = []
        for job in self._jobs.values():
            if not job.done:
                self._finish(job, "cancelled")

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, timeout_s: float = 10.0) -> int:
        """Stop accepting work, wait for in-flight jobs up to ``timeout_s``.

        Jobs still unfinished at the deadline are marked cancelled.
        Returns how many were cut off.  Idempotent; submissions during a
        drain are refused with :class:`QueueFull` (503 to clients).
        """
        self._draining = True
        deadline = time.monotonic() + max(0.0, timeout_s)
        while self.pending() and time.monotonic() < deadline:
            await asyncio.sleep(_POLL_INTERVAL_S)
        leftover = [j for j in self._jobs.values() if not j.done]
        for job in leftover:
            self._finish(job, "cancelled")
        _LOG.warning("event=queue_drained %s",
                     kv(cut_off=len(leftover), completed=self.completed))
        return len(leftover)

    # -- submission / inspection --------------------------------------------

    def pending(self) -> int:
        return sum(1 for j in self._jobs.values() if not j.done)

    def busy_workers(self) -> int:
        """Dispatchers currently executing a pool attempt."""
        return self._busy

    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a dispatcher."""
        return self._queue.qsize()

    def submit(self, scenario: str, period_s: float = 60.0,
               baselines: Tuple[str, ...] = DEFAULT_BASELINES,
               rerun: bool = False,
               trace_ctx: Optional[Dict[str, str]] = None,
               profile_hz: int = 0) -> Job:
        """Enqueue one run; raises :class:`QueueFull` at capacity or while
        draining, :class:`~repro.serve.breaker.CircuitOpen` when the
        scenario's breaker refuses it."""
        if self._draining:
            raise QueueFull("server is draining; not accepting new jobs")
        if self.pending() >= self.maxsize:
            raise QueueFull(f"job queue is full ({self.maxsize} pending)")
        self.breakers.allow(scenario)
        job = Job(id=f"job-{next(self._ids)}", scenario=scenario,
                  period_s=float(period_s), baselines=tuple(baselines),
                  rerun=bool(rerun), trace_ctx=trace_ctx,
                  profile_hz=max(0, int(profile_hz)))
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._queue.put_nowait(job.id)
        self._trim()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every tracked job, submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate while queued, best-effort while running
        (the result is abandoned), a no-op once terminal."""
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.done:
            self._finish(job, "cancelled")
        return job

    def _trim(self) -> None:
        """Bound the finished-job history."""
        while len(self._order) > self.keep_finished:
            for index, job_id in enumerate(self._order):
                if self._jobs[job_id].done:
                    del self._jobs[job_id]
                    del self._order[index]
                    break
            else:
                return

    def _finish(self, job: Job, status: str,
                record: Optional[SweepRecord] = None,
                error: Optional[str] = None) -> None:
        job.status = status
        job.record = record
        job.error = error if error is not None else \
            (record.error if record is not None else None)
        job.finished_at = time.time()     # wall clock: display only
        job.finished_mono = time.monotonic()
        self.completed += 1
        # Feed the scenario's circuit breaker: successes close it, errors
        # and timeouts push it open, a cancellation releases any half-open
        # probe without a verdict.
        if status == "ok":
            self.breakers.record(job.scenario, ok=True)
        elif status in ("error", "timeout"):
            self.breakers.record(job.scenario, ok=False)
        else:
            self.breakers.abandon(job.scenario)
        # The job interval is enclosed by no single frame (it spans poll
        # iterations), so it is recorded retroactively — a no-op without a
        # trace context.
        start = job.started_at if job.started_at is not None \
            else job.submitted_at
        start_mono = job.started_mono if job.started_mono is not None \
            else job.submitted_mono
        TRACER.record_external(
            "serve.job", job.trace_ctx, start_ts=start,
            duration_s=job.finished_mono - start_mono, job=job.id,
            scenario=job.scenario, status=status, cached=job.cached)

    def _persist(self, job: Job, record: SweepRecord) -> None:
        """Store a finished record; a refusing disk degrades, never fails.

        The record stays on the job (and goes to ``on_persist_error`` — in
        practice the result store's in-memory fallback), so the client
        still reads its result and a later flush can land it on disk.
        """
        try:
            store_record(self.cache_dir, record, period_s=job.period_s,
                         baselines=job.baselines, out_path=self.out_path)
        except OSError as exc:
            _PERSIST_ERRORS.inc()
            _LOG.warning("event=persist_error %s",
                         kv(job=job.id, scenario=job.scenario,
                            error=str(exc)))
            if self.on_persist_error is not None:
                try:
                    self.on_persist_error(record)
                except Exception as fallback_exc:  # noqa: BLE001
                    _LOG.error("event=persist_fallback_error %s",
                               kv(job=job.id, error=str(fallback_exc)))

    # -- execution ----------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.done:     # cancelled (or trimmed) in queue
                continue
            try:
                await self._run(job)
            except asyncio.CancelledError:
                if not job.done:
                    self._finish(job, "cancelled")
                raise
            except Exception as exc:        # noqa: BLE001 — keep dispatching
                _LOG.error("event=dispatch_error %s",
                           kv(job=job.id, scenario=job.scenario,
                              error=f"{type(exc).__name__}: {exc}"))
                self._finish(job, "error", error=f"{type(exc).__name__}: "
                                                 f"{exc}")

    async def _run(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()      # wall clock: display only
        job.started_mono = time.monotonic()
        wait_s = job.started_mono - job.submitted_mono
        _QUEUE_WAIT_SECONDS.observe(wait_s)
        TRACER.record_external("serve.queue_wait", job.trace_ctx,
                               start_ts=job.submitted_at, duration_s=wait_s,
                               job=job.id)
        # A profiled job must actually run the pipeline: a cache hit would
        # return a record without ever sampling a frame.
        if not job.rerun and not job.profile_hz:
            cached = load_cached_record(self.cache_dir, job.scenario,
                                        period_s=job.period_s,
                                        baselines=job.baselines)
            if cached is not None:
                cached.cached = True
                job.cached = True
                self._persist(job, cached)
                self._finish(job, "ok", record=cached)
                return
        # Dispatch onto the shared warm pool and poll without blocking the
        # event loop.  One overall deadline covers every attempt: a retry
        # does not extend the client-visible timeout.
        deadline = time.monotonic() + self.timeout_s
        attempt = 0
        while True:
            outcome = await self._attempt(job, attempt, deadline)
            if outcome is None:             # terminal inside the attempt
                return
            kind, detail = outcome
            if kind == "ok":
                return
            # An infrastructure failure (lost worker, respawned pool,
            # crashed deserialisation): retry with backoff, then give up.
            if attempt >= self.retries:
                self._finish(job, "error",
                             error=f"worker lost after {attempt + 1} "
                                   f"attempts ({detail})")
                return
            attempt += 1
            job.retries_used = attempt
            _JOB_RETRIES.labels(reason=kind).inc()
            _LOG.warning("event=job_retry %s",
                         kv(job=job.id, scenario=job.scenario,
                            attempt=attempt, reason=kind, detail=detail))
            backoff = min(2.0, 0.1 * (2 ** (attempt - 1))) \
                * (0.5 + self._rng.random())
            await asyncio.sleep(backoff)

    async def _attempt(self, job: Job, attempt: int, deadline: float
                       ) -> Optional[Tuple[str, str]]:
        """One pool dispatch of ``job``.

        Returns ``("ok", "")`` after finishing the job, a
        ``(reason, detail)`` pair when the dispatch was lost to
        infrastructure (caller retries), or ``None`` when the job reached a
        terminal state here (timeout) or externally (cancelled).
        """
        async_result = submit_scenario(job.scenario, self.pool_processes,
                                       period_s=job.period_s,
                                       baselines=job.baselines,
                                       trace_ctx=job.trace_ctx,
                                       profile_hz=job.profile_hz,
                                       attempt=attempt)
        self._busy += 1
        try:
            return await self._await_attempt(job, async_result, deadline)
        finally:
            self._busy -= 1

    async def _await_attempt(self, job: Job, async_result, deadline: float
                             ) -> Optional[Tuple[str, str]]:
        # Snapshot *after* submit: warming a fresh pool bumps the
        # generation, and that must not read as a mid-task respawn.
        generation = pool_generation()
        deaths = worker_deaths()
        death_seen_at: Optional[float] = None
        while not async_result.ready():
            now = time.monotonic()
            if now > deadline:
                # True timeout semantics: the hung worker cannot be killed
                # individually, so the pool is respawned — the slot is
                # genuinely freed for the next job instead of leaking
                # behind an abandoned task.
                respawn_pool("job-timeout")
                if not job.done:
                    self._finish(job, "timeout",
                                 error=f"job exceeded {self.timeout_s:g}s; "
                                       "its worker was killed and the pool "
                                       "respawned")
                return None
            if pool_generation() != generation:
                # The pool was torn down underneath us (another job's
                # timeout, a sweep's deadline): this AsyncResult will never
                # complete.
                return ("pool-respawn", "pool respawned mid-task")
            if worker_deaths() > deaths:
                # Some worker vanished; ours may be the casualty.  Give a
                # short grace for a surviving result to land, then retry.
                if death_seen_at is None:
                    death_seen_at = now
                elif now - death_seen_at > _DEATH_GRACE_S:
                    return ("worker-death",
                            "a pool worker died with a task in flight")
            # A cancelled job's dispatcher keeps draining the worker before
            # taking new work (returning early would over-commit the pool);
            # the deadline above bounds even that drain.
            await asyncio.sleep(_POLL_INTERVAL_S)
        if job.done:                        # cancelled mid-flight: discard
            return None
        try:
            record, counter_deltas, worker_spans, profile, runtime = \
                async_result.get()   # repro: noqa[RC004] — .ready() was
            # polled above, so this get() returns without blocking
        except Exception as exc:            # noqa: BLE001 — a worker that
            # died mid-task (or injected chaos) surfaces here; the
            # dispatcher must survive it and retry, not die with it.
            return ("worker-crash", f"{type(exc).__name__}: {exc}")
        # Pipeline work happened in a pool worker whose perf counters and
        # span ring are invisible here; fold the deltas in (atomically) so
        # /metrics in this process reflects the work its jobs caused,
        # ingest the worker's spans so GET /trace/{id} shows its pipeline
        # stages, fold any shipped profile into the process-wide profiler
        # so GET /profile shows the worker's hot frames, and fold the
        # worker's runtime deltas (peak RSS, CPU, GC) into the
        # repro_worker_* series.
        COUNTERS.add(**counter_deltas)
        TRACER.ingest(worker_spans)
        if profile is not None:
            job.profile_samples = PROFILER.ingest(profile)
        RUNTIME.ingest(runtime)
        self._persist(job, record)
        self._finish(job, "ok" if record.ok else "error", record=record)
        return ("ok", "")
