"""Tests of the NWS simulator: forecasting, memories, cliques, full system."""

import pytest

from repro.core import plan_from_view, independent_pairs_plan
from repro.nws import (
    ExponentialSmoothingForecaster,
    Forecast,
    ForecasterBank,
    LastValueForecaster,
    METRIC_BANDWIDTH,
    METRIC_CONNECT,
    METRIC_LATENCY,
    Measurement,
    MemoryServer,
    NameServer,
    NWSClient,
    NWSConfig,
    NWSSystem,
    Registration,
    RunningMeanForecaster,
    SlidingWindowMeanForecaster,
    SlidingWindowMedianForecaster,
    default_forecasters,
)
from repro.netsim import FlowModel, build_ens_lyon
from repro.simkernel import Engine


class TestForecasters:
    def test_last_value(self):
        f = LastValueForecaster()
        assert f.predict() is None
        f.update(3.0)
        f.update(5.0)
        assert f.predict() == 5.0

    def test_running_mean(self):
        f = RunningMeanForecaster()
        for v in (2.0, 4.0, 6.0):
            f.update(v)
        assert f.predict() == pytest.approx(4.0)

    def test_window_mean_forgets_old_values(self):
        f = SlidingWindowMeanForecaster(window=2)
        for v in (100.0, 1.0, 3.0):
            f.update(v)
        assert f.predict() == pytest.approx(2.0)

    def test_window_median_robust_to_spike(self):
        f = SlidingWindowMedianForecaster(window=5)
        for v in (10.0, 10.0, 10.0, 1000.0, 10.0):
            f.update(v)
        assert f.predict() == pytest.approx(10.0)

    def test_exponential_smoothing_converges(self):
        f = ExponentialSmoothingForecaster(alpha=0.5)
        for _ in range(20):
            f.update(8.0)
        assert f.predict() == pytest.approx(8.0)

    @pytest.mark.parametrize("cls,kwargs", [
        (SlidingWindowMeanForecaster, {"window": 0}),
        (SlidingWindowMedianForecaster, {"window": 0}),
        (ExponentialSmoothingForecaster, {"alpha": 0.0}),
    ])
    def test_invalid_parameters_rejected(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)

    def test_reset(self):
        f = LastValueForecaster()
        f.update(1.0)
        f.reset()
        assert f.predict() is None

    def test_default_battery_has_distinct_names(self):
        names = [f.name for f in default_forecasters()]
        assert len(names) == len(set(names))


class TestForecasterBank:
    def test_empty_bank_has_no_forecast(self):
        assert ForecasterBank().forecast() is None

    def test_constant_series_predicted_exactly(self):
        bank = ForecasterBank()
        bank.update_many([42.0] * 20)
        forecast = bank.forecast()
        assert isinstance(forecast, Forecast)
        assert forecast.value == pytest.approx(42.0)
        assert forecast.mae == pytest.approx(0.0)

    def test_best_method_tracks_lowest_error(self):
        # alternating series: the running mean beats last-value prediction
        bank = ForecasterBank()
        series = [10.0, 20.0] * 25
        bank.update_many(series)
        assert bank.mae("running_mean") < bank.mae("last_value")
        assert bank.best_method() != "last_value"

    def test_mae_of_unknown_method_is_infinite(self):
        assert ForecasterBank().mae("nope") == float("inf")

    def test_single_sample_still_forecasts(self):
        bank = ForecasterBank()
        bank.update(7.0)
        forecast = bank.forecast()
        assert forecast is not None and forecast.value == pytest.approx(7.0)


class TestMemoryAndNameServer:
    def test_series_ring_buffer(self):
        memory = MemoryServer("m", "host", capacity=3)
        for i in range(5):
            memory.store(Measurement(time=i, value=float(i), src="a", dst="b",
                                     metric=METRIC_BANDWIDTH))
        series = memory.fetch("a", "b", METRIC_BANDWIDTH)
        assert len(series) == 3
        assert series.values() == [2.0, 3.0, 4.0]
        assert series.last().value == 4.0

    def test_fetch_unknown_series_returns_none(self):
        memory = MemoryServer("m", "host")
        assert memory.fetch("x", "y", METRIC_LATENCY) is None

    def test_nameserver_registration_and_lookup(self):
        ns = NameServer("host0")
        ns.register(Registration(name="sensor@a", kind="sensor", host="a"))
        ns.register(Registration(name="memory@c", kind="memory", host="c"))
        assert ns.lookup("sensor@a").host == "a"
        assert [r.name for r in ns.processes_of_kind("memory")] == ["memory@c"]
        assert len(ns) == 2
        ns.unregister("sensor@a")
        assert ns.lookup("sensor@a") is None

    def test_series_index(self):
        ns = NameServer("host0")
        ns.register_series("a", "b", METRIC_BANDWIDTH, "memory@c")
        assert ns.memory_for_series("a", "b", METRIC_BANDWIDTH) == "memory@c"
        assert ns.memory_for_series("b", "a", METRIC_BANDWIDTH) is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NWSConfig(bandwidth_probe_bytes=0)
        with pytest.raises(ValueError):
            NWSConfig(memory_capacity=0)
        with pytest.raises(ValueError):
            NWSConfig(exponential_alpha=1.5)


@pytest.fixture(scope="module")
def running_system(ens_lyon_module, ens_plan_module):
    system = NWSSystem(ens_lyon_module, ens_plan_module,
                       config=NWSConfig(token_hold_gap_s=1.0))
    system.run(240.0)
    return system


@pytest.fixture(scope="module")
def ens_lyon_module():
    return build_ens_lyon()


@pytest.fixture(scope="module")
def ens_plan_module(ens_lyon_module):
    from repro.env import map_ens_lyon
    view = map_ens_lyon(ens_lyon_module)
    return plan_from_view(view, period_s=20.0)


class TestNWSSystem:
    def test_all_cliques_measure(self, running_system):
        counts = running_system.measurement_counts()
        assert all(count > 0 for count in counts.values())

    def test_direct_query_close_to_ground_truth(self, running_system, ens_lyon_module):
        answer = NWSClient(running_system).bandwidth("sci1", "sci2")
        truth = FlowModel(Engine(), ens_lyon_module).single_flow_mbps("sci1", "sci2")
        assert answer.method == "direct"
        assert answer.forecast.value == pytest.approx(truth, rel=0.1)

    def test_representative_query_uses_measured_pair(self, running_system):
        answer = NWSClient(running_system).bandwidth("the-doors", "moby")
        assert answer.method == "representative"
        assert set(answer.source_pair) == {"canaria", "moby"}

    def test_aggregated_query_reflects_bottleneck(self, running_system):
        answer = NWSClient(running_system).bandwidth("the-doors", "sci3")
        assert answer.method == "aggregated"
        assert answer.forecast.value == pytest.approx(10.0, rel=0.25)

    def test_latency_and_connect_metrics_available(self, running_system):
        client = NWSClient(running_system)
        latency = client.latency("sci1", "sci2")
        connect = client.connect_time("sci1", "sci2")
        assert latency.available and latency.forecast.value > 0
        assert connect.available and connect.forecast.value > 0

    def test_every_pair_answerable(self, running_system):
        assert NWSClient(running_system).availability() == pytest.approx(1.0)

    def test_unknown_metric_unavailable(self, running_system):
        answer = running_system.query("sci1", "sci2", "cpu_load")
        assert not answer.available and answer.method == "unavailable"

    def test_host_configs_built(self, running_system):
        assert "the-doors" in running_system.host_configs

    def test_measurement_error_small_for_env_plan(self, running_system):
        errors = running_system.measurement_error_report()
        assert errors
        mean_error = sum(errors.values()) / len(errors)
        assert mean_error < 0.15

    def test_probe_bytes_accounted(self, running_system):
        assert running_system.total_probe_bytes() > 0


class TestFailureInjection:
    def test_failed_host_triggers_token_regeneration(self, ens_lyon_module,
                                                     ens_plan_module):
        system = NWSSystem(ens_lyon_module, ens_plan_module,
                           config=NWSConfig(token_timeout_s=10.0))
        system.run(60.0)
        system.fail_host("sci3")
        system.run(120.0)
        sci_clique = next(name for name in system.cliques if "sci" in name)
        assert system.cliques[sci_clique].stats.token_regenerations > 0
        # other members keep being measured
        before = system.cliques[sci_clique].stats.experiments
        system.run(60.0)
        assert system.cliques[sci_clique].stats.experiments > before

    def test_recovered_host_measured_again(self, ens_lyon_module, ens_plan_module):
        system = NWSSystem(ens_lyon_module, ens_plan_module,
                           config=NWSConfig(token_timeout_s=5.0))
        system.fail_host("sci3")
        system.run(60.0)
        assert system.series("sci3", "sci1", METRIC_BANDWIDTH) is None
        system.recover_host("sci3")
        system.run(120.0)
        assert system.sensors["sci3"].experiments_completed > 0


class TestCollisionCorruption:
    def test_uncoordinated_plan_corrupts_measurements(self, ens_lyon_module):
        """Paper §2.3: colliding experiments report about half the real value."""
        hub_hosts = ["myri0", "myri1", "myri2", "popc0"]
        bad_plan = independent_pairs_plan(ens_lyon_module, hub_hosts, period_s=5.0)
        system = NWSSystem(ens_lyon_module, bad_plan,
                           config=NWSConfig(token_hold_gap_s=0.0))
        system.run(120.0)
        errors = system.measurement_error_report()
        assert errors
        worst = max(errors.values())
        assert worst > 0.25, "concurrent probes on one hub must distort results"
