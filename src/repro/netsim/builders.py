"""High-level topology construction helpers.

The :class:`SiteBuilder` assembles the recurring building blocks of Grid
platforms as the paper describes them (§5: "a WAN constellation of LAN
resources"): hub segments, switched clusters, routers and up-links.  The
synthetic generators (:mod:`repro.netsim.generators`) and the ENS-Lyon
platform (:mod:`repro.netsim.ens_lyon`) are built with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .topology import Link, Node, Platform

__all__ = ["SiteBuilder", "ClusterSpec"]


@dataclass
class ClusterSpec:
    """Description of a cluster attached to a site.

    ``kind`` is ``"hub"`` (shared segment) or ``"switch"`` (dedicated ports).
    ``gateway`` optionally names a dual-homed host that bridges the cluster to
    the site backbone (as popc0/myri0/sci0 do in ENS-Lyon).
    """

    name: str
    kind: str
    hosts: List[str]
    bandwidth_mbps: float = 100.0
    latency_s: float = 1e-4
    gateway: Optional[str] = None


class SiteBuilder:
    """Incrementally builds a :class:`Platform` out of sites and clusters."""

    def __init__(self, platform: Optional[Platform] = None, name: str = "platform"):
        self.platform = platform if platform is not None else Platform(name)
        self._ip_counter: Dict[str, int] = {}

    # -- address allocation -----------------------------------------------------
    def _next_ip(self, prefix: str) -> str:
        count = self._ip_counter.get(prefix, 0) + 1
        if count > 254:
            raise ValueError(f"subnet {prefix!r} exhausted")
        self._ip_counter[prefix] = count
        return f"{prefix}.{count}"

    # -- element helpers -----------------------------------------------------------
    def add_host(self, name: str, subnet: str, domain: str = "",
                 ip: Optional[str] = None, unnamed: bool = False,
                 properties: Optional[Dict[str, object]] = None) -> Node:
        """Add a host, auto-assigning an address in ``subnet`` unless given."""
        return self.platform.add_host(name, ip or self._next_ip(subnet),
                                      domain=domain, unnamed=unnamed,
                                      properties=properties)

    def add_hub_segment(self, hub_name: str, members: Sequence[str],
                        bandwidth_mbps: float, latency_s: float = 1e-4) -> Node:
        """Create a hub and attach existing nodes to it with half-duplex links."""
        hub = self.platform.add_hub(hub_name, bandwidth_mbps)
        for member in members:
            self.platform.add_link(member, hub_name, bandwidth_mbps,
                                   latency_s=latency_s, duplex=False)
        return hub

    def add_switch_segment(self, switch_name: str, members: Sequence[str],
                           bandwidth_mbps: float, latency_s: float = 1e-4) -> Node:
        """Create a switch and attach existing nodes with full-duplex port links."""
        switch = self.platform.add_switch(switch_name)
        for member in members:
            self.platform.add_link(member, switch_name, bandwidth_mbps,
                                   latency_s=latency_s, duplex=True)
        return switch

    def add_router(self, name: str, ip: str, answers_traceroute: bool = True,
                   interface_ips: Optional[Dict[str, str]] = None) -> Node:
        return self.platform.add_router(name, ip,
                                        answers_traceroute=answers_traceroute,
                                        interface_ips=interface_ips)

    def connect(self, a: str, b: str, bandwidth_mbps: float,
                latency_s: float = 1e-4, duplex: bool = True) -> Link:
        """Point-to-point connection between two existing nodes."""
        return self.platform.add_link(a, b, bandwidth_mbps,
                                      latency_s=latency_s, duplex=duplex)

    # -- composite helpers --------------------------------------------------------
    def add_cluster(self, spec: ClusterSpec, subnet: str, domain: str = "",
                    attach_to: Optional[str] = None,
                    uplink_mbps: Optional[float] = None,
                    uplink_latency_s: float = 5e-4) -> List[Node]:
        """Create a whole cluster (hosts + segment + optional up-link).

        Returns the created host nodes.  If ``spec.gateway`` is set, that host
        bridges the cluster to ``attach_to``; otherwise the segment element
        itself is connected to ``attach_to``.
        """
        hosts = [self.add_host(h, subnet, domain=domain) for h in spec.hosts]
        segment_name = f"{spec.name}-segment"
        if spec.kind == "hub":
            self.add_hub_segment(segment_name, spec.hosts, spec.bandwidth_mbps,
                                 latency_s=spec.latency_s)
        elif spec.kind == "switch":
            self.add_switch_segment(segment_name, spec.hosts, spec.bandwidth_mbps,
                                    latency_s=spec.latency_s)
        else:
            raise ValueError(f"unknown cluster kind {spec.kind!r}")
        if attach_to is not None:
            uplink_bw = uplink_mbps if uplink_mbps is not None else spec.bandwidth_mbps
            bridge = spec.gateway if spec.gateway is not None else segment_name
            if spec.gateway is not None and spec.gateway not in spec.hosts:
                raise ValueError("gateway must be one of the cluster hosts")
            self.connect(bridge, attach_to, uplink_bw, latency_s=uplink_latency_s)
        return hosts

    def build(self) -> Platform:
        """Validate and return the constructed platform."""
        problems = self.platform.validate()
        if problems:
            raise ValueError("invalid platform: " + "; ".join(problems))
        return self.platform
