"""Discrete-event simulation kernel used by the network and NWS simulators."""

from .engine import Engine, StopSimulation
from .events import AllOf, AnyOf, Event, EventCancelled, Interrupt, Timeout
from .process import Process
from .resources import Request, Resource, Store
from .rng import RandomStreams, derive_seed
from .trace import TraceRecord, Tracer

__all__ = [
    "Engine",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "EventCancelled",
    "Process",
    "Resource",
    "Request",
    "Store",
    "RandomStreams",
    "derive_seed",
    "Tracer",
    "TraceRecord",
]
