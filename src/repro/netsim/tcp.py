"""TCP-level measurement primitives.

NWS link sensors run three experiments (paper §2.2):

* **latency** — a 4-byte round trip over an already-established connection;
* **bandwidth** — a 64 KiB message timed on the destination acknowledgement;
* **connect time** — the TCP connect/disconnect time.

This module provides both *analytic* values (exact steady-state expectations
from the flow model, useful as ground truth and for fast "offline" probing)
and *simulated* probes expressed as generator processes over the
:class:`~repro.netsim.flows.FlowModel` (used by the NWS runtime simulation,
where probes genuinely contend with other traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..simkernel import Engine
from .flows import FlowModel, TransferResult
from .topology import Platform

__all__ = [
    "DEFAULT_LATENCY_PROBE_BYTES",
    "DEFAULT_BANDWIDTH_PROBE_BYTES",
    "ProbeOutcome",
    "TcpModel",
]

#: NWS sends 4-byte messages for latency probes (paper §2.2).
DEFAULT_LATENCY_PROBE_BYTES = 4
#: NWS sends 64 KiB messages for bandwidth probes (paper §2.2).
DEFAULT_BANDWIDTH_PROBE_BYTES = 64 * 1024


@dataclass(frozen=True)
class ProbeOutcome:
    """Result of one TCP probe."""

    src: str
    dst: str
    kind: str               # "latency" | "bandwidth" | "connect"
    value: float            # seconds for latency/connect, Mbit/s for bandwidth
    start_time: float
    end_time: float


class TcpModel:
    """Analytic and simulated TCP experiments over a platform."""

    def __init__(self, flow_model: FlowModel):
        self.flow_model = flow_model
        self.platform: Platform = flow_model.platform
        self.engine: Engine = flow_model.engine

    # -- analytic ground truth -------------------------------------------------
    def rtt(self, a: str, b: str) -> float:
        """Round-trip latency a→b→a (sums possibly asymmetric one-way paths)."""
        return self.platform.route(a, b).latency + self.platform.route(b, a).latency

    def connect_time(self, a: str, b: str) -> float:
        """TCP three-way-handshake connection time ≈ 1.5 RTT."""
        return 1.5 * self.rtt(a, b)

    def analytic_latency(self, a: str, b: str,
                         payload: int = DEFAULT_LATENCY_PROBE_BYTES) -> float:
        """Expected small-message round-trip time (seconds), single flow."""
        fwd_bw = self.flow_model.single_flow_mbps(a, b) * 1e6 / 8.0
        rev_bw = self.flow_model.single_flow_mbps(b, a) * 1e6 / 8.0
        return self.rtt(a, b) + payload / fwd_bw + payload / rev_bw

    def analytic_bandwidth(self, a: str, b: str,
                           size: int = DEFAULT_BANDWIDTH_PROBE_BYTES) -> float:
        """Expected measured bandwidth (Mbit/s) of a lone ``size``-byte probe."""
        rate_mbps = self.flow_model.single_flow_mbps(a, b)
        latency = self.platform.route(a, b).latency
        duration = latency + size * 8.0 / 1e6 / rate_mbps
        return size * 8.0 / 1e6 / duration

    # -- simulated probes (generator processes) ---------------------------------
    def latency_probe(self, a: str, b: str,
                      payload: int = DEFAULT_LATENCY_PROBE_BYTES
                      ) -> Generator:
        """Process measuring the small-message round-trip time a→b→a."""
        start = self.engine.now
        result: TransferResult = yield self.flow_model.transfer(
            a, b, payload, label=f"latency:{a}->{b}")
        result = yield self.flow_model.transfer(
            b, a, payload, label=f"latency:{b}->{a}")
        end = self.engine.now
        return ProbeOutcome(src=a, dst=b, kind="latency", value=end - start,
                            start_time=start, end_time=end)

    def bandwidth_probe(self, a: str, b: str,
                        size: int = DEFAULT_BANDWIDTH_PROBE_BYTES
                        ) -> Generator:
        """Process measuring throughput of one ``size``-byte message a→b."""
        start = self.engine.now
        result: TransferResult = yield self.flow_model.transfer(
            a, b, size, label=f"bandwidth:{a}->{b}")
        end = self.engine.now
        duration = max(end - start, 1e-12)
        mbps = size * 8.0 / 1e6 / duration
        return ProbeOutcome(src=a, dst=b, kind="bandwidth", value=mbps,
                            start_time=start, end_time=end)

    def connect_probe(self, a: str, b: str) -> Generator:
        """Process measuring TCP connect/disconnect time (modelled as 1.5 RTT)."""
        start = self.engine.now
        # SYN
        yield self.flow_model.transfer(a, b, 1, label=f"connect:{a}->{b}")
        # SYN/ACK
        yield self.flow_model.transfer(b, a, 1, label=f"connect:{b}->{a}")
        # ACK (half trip): model as a one-way latency wait.
        yield self.engine.timeout(self.platform.route(a, b).latency)
        end = self.engine.now
        return ProbeOutcome(src=a, dst=b, kind="connect", value=end - start,
                            start_time=start, end_time=end)

    # -- convenient blocking helpers (run the engine) -----------------------------
    def run_bandwidth_probe(self, a: str, b: str,
                            size: int = DEFAULT_BANDWIDTH_PROBE_BYTES) -> ProbeOutcome:
        """Run a bandwidth probe to completion on the model's engine."""
        proc = self.engine.process(self.bandwidth_probe(a, b, size),
                                   name=f"bwprobe:{a}->{b}")
        return self.engine.run(until=proc)

    def run_latency_probe(self, a: str, b: str,
                          payload: int = DEFAULT_LATENCY_PROBE_BYTES) -> ProbeOutcome:
        """Run a latency probe to completion on the model's engine."""
        proc = self.engine.process(self.latency_probe(a, b, payload),
                                   name=f"latprobe:{a}->{b}")
        return self.engine.run(until=proc)
