"""FIG-3 — the NWS deployment plan for ENS-Lyon (paper Figure 3 / §5.1).

Runs the planning algorithm on the merged effective view and checks that the
resulting cliques are exactly the paper's:

* Hub 1 (shared):   clique {canaria, moby};
* Hub 2 (shared):   clique {myri0, popc0};
* Hub 3 (shared):   clique {myri1, myri2};
* sci switch:       clique of all sci hosts (gateway sci0 included);
* inter-hub link:   clique {canaria, popc0}.
"""

from repro.analysis import render_plan
from repro.core import build_host_configs, plan_from_view, render_config


EXPECTED_CLIQUES = {
    frozenset({"canaria", "moby"}),
    frozenset({"myri0", "popc0"}),
    frozenset({"myri1", "myri2"}),
    frozenset({"sci0", "sci1", "sci2", "sci3", "sci4", "sci5", "sci6"}),
    frozenset({"canaria", "popc0"}),
}


def test_bench_fig3_deployment_plan(benchmark, merged_view):
    plan = benchmark(plan_from_view, merged_view)

    print("\n[FIG-3] NWS deployment plan for ENS-Lyon")
    print(render_plan(plan))
    print("\nGenerated manager configuration file:")
    print(render_config(plan))

    assert {frozenset(c.hosts) for c in plan.cliques} == EXPECTED_CLIQUES
    assert len(plan.cliques) == 5
    # shared networks are monitored by exactly two hosts (intrusiveness rule)
    shared = [c for c in plan.cliques if c.kind == "shared"]
    assert len(shared) == 3 and all(c.size == 2 for c in shared)
    # the manager derives one memory server per clique and a sensor per
    # monitored host, with the name server on the ENV master
    configs = build_host_configs(plan)
    assert "nameserver" in configs["the-doors"].kinds()
    memory_count = sum(cfg.kinds().count("memory") for cfg in configs.values())
    assert memory_count == len(plan.cliques)
