"""Tests of traceroute, firewall, VLAN, builders, generators and ENS-Lyon."""

import pytest

from repro.netsim import (
    ANONYMOUS_HOP,
    ClusterSpec,
    Firewall,
    GATEWAY_ALIASES,
    Platform,
    PRIVATE_HOSTS,
    PUBLIC_HOSTS,
    SiteBuilder,
    SyntheticSpec,
    VlanPlan,
    attach_firewall,
    build_ens_lyon,
    expected_effective_groups,
    generate_constellation,
    generate_single_site,
    ground_truth_groups,
    ping_rtt,
    platform_allows,
    traceroute,
)


class TestTraceroute:
    def test_layer2_devices_invisible(self, ens_lyon):
        result = traceroute(ens_lyon, "sci1", "sci2")
        assert all("switch" not in hop.address for hop in result.hops)
        # only the destination host appears (switch is transparent)
        assert result.hops[-1].node == "sci2"

    def test_public_host_path_matches_figure2(self, ens_lyon):
        result = traceroute(ens_lyon, "canaria")
        assert result.reported_addresses() == ["140.77.13.1", "192.168.254.1"]

    def test_gateway_path_matches_figure2(self, ens_lyon):
        result = traceroute(ens_lyon, "myri0")
        assert result.reported_addresses() == ["140.77.12.1", "140.77.161.1",
                                               "192.168.254.1"]

    def test_firewalled_host_cannot_reach_outside(self, ens_lyon):
        result = traceroute(ens_lyon, "sci3")
        assert not result.reached
        assert result.hops == []

    def test_silent_router_reports_anonymous_hop(self):
        p = Platform()
        p.add_host("a", "10.0.1.1")
        p.add_host("b", "10.0.2.1")
        p.add_router("silent", "10.0.0.1", answers_traceroute=False)
        p.add_link("a", "silent", 100.0)
        p.add_link("silent", "b", 100.0)
        result = traceroute(p, "a", "b")
        assert result.hops[0].address == ANONYMOUS_HOP
        assert result.hops[0].responded is False

    def test_per_interface_addresses(self):
        p = Platform()
        p.add_host("a", "10.0.1.1")
        p.add_host("b", "10.0.2.1")
        p.add_router("r", "10.0.0.1",
                     interface_ips={"a": "10.0.1.254", "b": "10.0.2.254"})
        p.add_link("a", "r", 100.0)
        p.add_link("r", "b", 100.0)
        assert traceroute(p, "a", "b").hops[0].address == "10.0.1.254"
        assert traceroute(p, "b", "a").hops[0].address == "10.0.2.254"

    def test_ping_rtt_sums_both_directions(self, ens_lyon):
        rtt = ping_rtt(ens_lyon, "the-doors", "canaria")
        assert rtt == pytest.approx(2 * ens_lyon.route("the-doors", "canaria").latency)

    def test_external_destination_requires_external_node(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        with pytest.raises(ValueError):
            traceroute(p, "a")


class TestFirewall:
    def test_isolated_domain_blocks_non_gateways(self, ens_lyon):
        assert not platform_allows(ens_lyon, "sci1", "canaria")
        assert not platform_allows(ens_lyon, "canaria", "myri2")

    def test_gateways_cross_the_firewall(self, ens_lyon):
        assert platform_allows(ens_lyon, "popc0", "the-doors")
        assert platform_allows(ens_lyon, "the-doors", "sci0")

    def test_intra_domain_always_allowed(self, ens_lyon):
        assert platform_allows(ens_lyon, "sci1", "myri1")
        assert platform_allows(ens_lyon, "moby", "canaria")

    def test_explicit_deny_pairs(self):
        fw = Firewall()
        fw.deny("a", "b")
        p = Platform()
        p.add_host("a", "10.0.0.1")
        p.add_host("b", "10.0.0.2")
        p.add_link("a", "b", 100.0)
        attach_firewall(p, fw)
        assert not platform_allows(p, "a", "b")
        assert not platform_allows(p, "b", "a")

    def test_platform_without_firewall_allows_everything(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        p.add_host("b", "10.0.0.2")
        assert platform_allows(p, "a", "b")


class TestVlan:
    def test_members_and_groups(self, ens_lyon):
        plan = VlanPlan()
        plan.assign("moby", "staff")
        plan.assign("canaria", "staff")
        plan.assign("sci1", "laptops")
        plan.apply(ens_lyon)
        assert plan.members("staff") == ["canaria", "moby"]
        groups = plan.logical_groups(ens_lyon)
        assert "staff" in groups and "laptops" in groups

    def test_mismatch_detection(self, ens_lyon):
        plan = VlanPlan()
        # moby and sci1 share no physical segment, yet same VLAN
        plan.assign("moby", "mixed")
        plan.assign("sci1", "mixed")
        assert "sci1" in plan.mismatches_physical(ens_lyon) or \
               "moby" in plan.mismatches_physical(ens_lyon)


class TestBuilders:
    def test_hub_cluster_construction(self):
        b = SiteBuilder(name="t")
        b.platform.add_external("net")
        b.add_router("r", "10.0.0.1")
        b.connect("r", "net", 100.0)
        hosts = b.add_cluster(ClusterSpec(name="c0", kind="hub",
                                          hosts=["h0", "h1", "h2"],
                                          bandwidth_mbps=100.0),
                              subnet="10.0.1", attach_to="r")
        platform = b.build()
        assert [h.name for h in hosts] == ["h0", "h1", "h2"]
        keys = platform.route("h0", "h1").constraint_keys(platform)
        assert any(k[0] == "hub" for k in keys)

    def test_switch_cluster_has_no_hub_key(self):
        b = SiteBuilder(name="t")
        b.platform.add_external("net")
        b.add_router("r", "10.0.0.1")
        b.connect("r", "net", 100.0)
        b.add_cluster(ClusterSpec(name="c0", kind="switch", hosts=["h0", "h1"]),
                      subnet="10.0.1", attach_to="r")
        platform = b.build()
        keys = platform.route("h0", "h1").constraint_keys(platform)
        assert not any(k[0] == "hub" for k in keys)

    def test_unknown_cluster_kind_rejected(self):
        b = SiteBuilder()
        with pytest.raises(ValueError):
            b.add_cluster(ClusterSpec(name="x", kind="ring", hosts=["h"]),
                          subnet="10.0.9")

    def test_subnet_exhaustion(self):
        b = SiteBuilder()
        with pytest.raises(ValueError):
            for i in range(300):
                b.add_host(f"h{i}", subnet="10.0.1")


class TestGenerators:
    def test_constellation_is_deterministic(self):
        spec = SyntheticSpec(sites=2, seed=11)
        a = generate_constellation(spec)
        b = generate_constellation(spec)
        assert a.host_names() == b.host_names()
        assert sorted(a.links) == sorted(b.links)

    def test_ground_truth_covers_all_hosts(self):
        platform = generate_constellation(SyntheticSpec(sites=3, seed=5))
        truth = ground_truth_groups(platform)
        covered = set()
        for spec in truth.values():
            covered |= set(spec["hosts"])
        assert covered == set(platform.host_names())

    def test_ground_truth_kinds_match_topology(self):
        platform = generate_constellation(SyntheticSpec(sites=2, seed=7))
        truth = ground_truth_groups(platform)
        for segment, spec in truth.items():
            hosts = sorted(spec["hosts"])
            if len(hosts) < 2:
                continue
            keys = platform.route(hosts[0], hosts[1]).constraint_keys(platform)
            has_hub = any(k[0] == "hub" for k in keys)
            assert has_hub == (spec["kind"] == "shared")

    def test_single_site_generator_shapes(self):
        platform = generate_single_site(n_hub_clusters=2, n_switch_clusters=1,
                                        hosts_per_cluster=3)
        truth = ground_truth_groups(platform)
        kinds = sorted(spec["kind"] for spec in truth.values())
        assert kinds == ["shared", "shared", "switched"]
        assert len(platform.host_names()) == 9

    def test_missing_ground_truth_raises(self):
        with pytest.raises(ValueError):
            ground_truth_groups(Platform())


class TestEnsLyon:
    def test_host_inventory(self, ens_lyon):
        names = ens_lyon.host_names()
        assert set(PUBLIC_HOSTS) <= set(names)
        assert set(PRIVATE_HOSTS) <= set(names)
        assert len(names) == 14

    def test_asymmetric_route_bandwidths(self, ens_lyon):
        from repro.netsim import FlowModel
        from repro.simkernel import Engine
        fm = FlowModel(Engine(), ens_lyon)
        assert fm.single_flow_mbps("the-doors", "popc0") == pytest.approx(10.0)
        assert fm.single_flow_mbps("popc0", "the-doors") == pytest.approx(100.0)

    def test_hub_sharing_inside_clusters(self, ens_lyon):
        from repro.netsim import FlowModel
        from repro.simkernel import Engine
        fm = FlowModel(Engine(), ens_lyon)
        shared = fm.steady_state_mbps([("myri1", "myri0"), ("myri2", "myri0")])
        assert shared[0] == pytest.approx(50.0)
        switched = fm.steady_state_mbps([("sci1", "sci0"), ("sci2", "sci3")])
        assert switched[0] == pytest.approx(100.0)

    def test_gateway_aliases_resolve(self, ens_lyon):
        for private, public in GATEWAY_ALIASES.items():
            assert str(ens_lyon.resolver.resolve(public)) == \
                str(ens_lyon.nodes[private].ip)

    def test_expected_groups_partition_non_master_hosts(self):
        groups = expected_effective_groups()
        all_hosts = set()
        for spec in groups.values():
            assert not (all_hosts & spec["hosts"])
            all_hosts |= spec["hosts"]
        assert "sci1" in all_hosts and "canaria" in all_hosts

    def test_variant_without_firewall(self):
        p = build_ens_lyon(with_firewall=False)
        assert platform_allows(p, "sci1", "canaria")

    def test_variant_with_symmetric_routes(self):
        from repro.netsim import FlowModel
        from repro.simkernel import Engine
        p = build_ens_lyon(asymmetric_routes=False)
        fm = FlowModel(Engine(), p)
        assert fm.single_flow_mbps("popc0", "the-doors") == pytest.approx(10.0)
