"""Traceroute and ping simulation.

ENV's structural phase has every host run a traceroute towards a well-known
destination *outside* the mapped network and keeps the part of the path that
lies within it (paper §4.2.1.3).  The simulation reproduces the quirks the
paper discusses:

* routers may report a *different address per interface* (which makes path
  combination non-trivial, §3.2);
* some routers silently *drop* traceroute probes and appear as anonymous hops
  (§4.3 "Dropped traceroute");
* hubs and switches are layer-2 devices and never appear in a traceroute;
* unnamed hosts resolve to bare IP addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .address import IPv4Address
from .topology import NodeKind, Platform

__all__ = ["TracerouteHop", "TracerouteResult", "traceroute", "ping_rtt"]

#: Marker used for routers that do not answer traceroute probes.
ANONYMOUS_HOP = "*"


@dataclass(frozen=True)
class TracerouteHop:
    """One hop of a traceroute: the address the router reported (or ``*``)."""

    address: str
    node: Optional[str] = None      # ground-truth node name (None if anonymous)
    responded: bool = True


@dataclass
class TracerouteResult:
    """A full traceroute from ``src`` towards ``dst``."""

    src: str
    dst: str
    hops: List[TracerouteHop] = field(default_factory=list)
    reached: bool = True

    def reported_addresses(self) -> List[str]:
        """The address strings as a user of the tool would see them."""
        return [hop.address for hop in self.hops]

    def responding_addresses(self) -> List[str]:
        """Addresses of hops that actually answered (anonymous hops skipped)."""
        return [hop.address for hop in self.hops if hop.responded]


def _router_reported_address(platform: Platform, router: str, next_node: str) -> str:
    """The address a router reports for probes forwarded towards ``next_node``.

    Routers answer with the address of the *incoming* interface in real life;
    we model per-interface addresses through ``Node.interface_ips`` keyed by
    the name of the neighbouring node (falling back to the primary address).
    """
    node = platform.nodes[router]
    iface = node.interface_ips.get(next_node)
    if iface is not None:
        return str(iface)
    if node.ip is not None:
        return str(node.ip)
    return router


def traceroute(platform: Platform, src: str, dst: Optional[str] = None) -> TracerouteResult:
    """Simulate ``traceroute`` from host ``src`` towards ``dst``.

    ``dst=None`` targets the platform's external node (the "well known
    external destination" of the ENV structural phase).  Only layer-3
    elements (routers and the final host) appear as hops; switches and hubs
    are invisible.
    """
    if dst is None:
        if platform.external_node is None:
            raise ValueError("platform has no external node; pass dst explicitly")
        dst = platform.external_node
    from .firewall import platform_allows

    if not platform_allows(platform, src, dst):
        return TracerouteResult(src=src, dst=dst, hops=[], reached=False)
    route = platform.route(src, dst)
    result = TracerouteResult(src=src, dst=dst)
    nodes = route.nodes
    for idx, name in enumerate(nodes[1:-1], start=1):
        node = platform.nodes[name]
        if node.kind in (NodeKind.SWITCH, NodeKind.HUB):
            continue  # layer-2: invisible to TTL probing
        if node.kind is NodeKind.ROUTER:
            if not node.answers_traceroute:
                result.hops.append(TracerouteHop(address=ANONYMOUS_HOP, node=name,
                                                 responded=False))
            else:
                prev = nodes[idx - 1]
                addr = _router_reported_address(platform, name, prev)
                result.hops.append(TracerouteHop(address=addr, node=name))
        elif node.kind is NodeKind.HOST:
            # A host acting as a gateway (dual-homed machine).
            addr = str(node.ip) if node.ip is not None else name
            result.hops.append(TracerouteHop(address=addr, node=name))
    # Final hop: the destination itself (unless external, which terminates the
    # portion of the path within the mapped network).
    dst_node = platform.nodes[dst]
    if dst_node.kind is not NodeKind.EXTERNAL:
        addr = str(dst_node.ip) if dst_node.ip is not None else dst
        result.hops.append(TracerouteHop(address=addr, node=dst))
    return result


def ping_rtt(platform: Platform, src: str, dst: str) -> float:
    """The ICMP round-trip time between two hosts (seconds)."""
    return platform.route(src, dst).latency + platform.route(dst, src).latency
