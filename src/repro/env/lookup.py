"""ENV phase 1: lookup and extra information gathering (paper §4.2.1.1–2).

The lookup phase records, for every host taking part in the mapping, its IP
address, aliases, DNS domain and any host properties the deployment might
care about (CPU model/clock, OS, kflops, ...).  When reverse resolution
fails, the host is identified by its bare IP address and grouped by classful
network (§4.3 "Machines without hostname"); non-routable (RFC 1918)
addresses are kept since they are local by definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netsim.address import IPv4Address
from .envtree import MachineInfo
from .probes import ProbeDriver

__all__ = ["lookup_machines", "site_domain_of"]


def lookup_machines(driver: ProbeDriver, hosts: Sequence[str]) -> Dict[str, MachineInfo]:
    """Collect :class:`MachineInfo` for every host in ``hosts``.

    Hosts whose address cannot be determined are skipped (they cannot be
    probed anyway); unnamed hosts are kept under their IP-derived identity.
    """
    machines: Dict[str, MachineInfo] = {}
    for host in hosts:
        ip = driver.host_ip(host)
        domain = driver.host_domain(host)
        aliases: List[str] = []
        if ip is not None:
            resolved = driver.resolve_name(ip)
            if resolved is not None and resolved != host:
                aliases.append(resolved)
            elif resolved is None:
                # Reverse resolution failed: identify the machine by address,
                # noting its classful network so the structural phase can still
                # group it (paper §4.3).
                addr = IPv4Address.parse(ip)
                domain = domain or f"net-{addr.classful_network}"
        info = MachineInfo(
            name=host,
            ip=ip,
            domain=domain,
            aliases=aliases,
            properties=driver.host_properties(host),
        )
        machines[host] = info
    return machines


def site_domain_of(machines: Dict[str, MachineInfo]) -> str:
    """The most common DNS domain among the mapped machines (the SITE domain)."""
    counts: Dict[str, int] = {}
    for info in machines.values():
        if info.domain:
            counts[info.domain] = counts.get(info.domain, 0) + 1
    if not counts:
        return ""
    return max(sorted(counts), key=lambda d: counts[d])
