"""Tests of the perf plumbing: counter atomicity and the fast-path switch."""

import threading

from repro import perf


class TestCounterThreadSafety:
    def test_add_and_snapshot_are_mutually_atomic(self):
        """A snapshot must never observe half of a multi-field update.

        Regression for the serving layer: ``GET /metrics`` snapshots the
        counters from the event loop while job/sweep threads bump them.
        ``add`` commits its deltas under the counter lock, so the paired
        fields below can never drift apart in any observed snapshot.
        """
        perf.reset_counters()
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                perf.COUNTERS.add(events=1, allocations=1)

        def reader():
            while not stop.is_set():
                snap = perf.counters_snapshot()
                if snap["events"] != snap["allocations"]:
                    torn.append(snap)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.4, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        perf.reset_counters()
        assert torn == [], f"snapshot observed torn updates: {torn[:3]}"

    def test_reset_is_atomic_under_concurrent_snapshots(self):
        """Concurrent resets never expose a half-zeroed counter set."""
        stop = threading.Event()
        torn = []

        def resetter():
            while not stop.is_set():
                perf.COUNTERS.add(**{name: 5
                                     for name in perf.PerfCounters.__slots__})
                perf.reset_counters()

        def reader():
            while not stop.is_set():
                values = set(perf.counters_snapshot().values())
                # All fields move together (all 0 or all 5); a mixture means
                # the snapshot interleaved a reset.
                if len(values) != 1:
                    torn.append(values)

        threads = [threading.Thread(target=resetter),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.4, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()
        perf.reset_counters()
        assert torn == [], f"reset interleaved with snapshot: {torn[:3]}"

    def test_snapshot_shape_and_reset(self):
        perf.reset_counters()
        snap = perf.counters_snapshot()
        assert set(snap) == set(perf.PerfCounters.__slots__)
        assert all(value == 0 for value in snap.values())
        perf.COUNTERS.add(events=3)
        assert perf.counters_snapshot()["events"] == 3
        perf.reset_counters()
        assert perf.counters_snapshot()["events"] == 0


class TestFastPathSwitch:
    def test_context_manager_restores_previous_state(self):
        assert perf.fast_path_enabled()
        with perf.fast_path(False):
            assert not perf.fast_path_enabled()
            with perf.fast_path(True):
                assert perf.fast_path_enabled()
            assert not perf.fast_path_enabled()
        assert perf.fast_path_enabled()
