"""GridML: the XML dialect ENV uses to describe Grid resources and networks."""

from .merge import build_alias_table, merge_documents
from .model import GridDocument, GridProperty, MachineEntry, NetworkEntry, SiteEntry
from .parser import GridMLParseError, from_element, from_xml, read_gridml
from .writer import to_element, to_xml, write_gridml

__all__ = [
    "GridDocument",
    "SiteEntry",
    "MachineEntry",
    "NetworkEntry",
    "GridProperty",
    "to_element",
    "to_xml",
    "write_gridml",
    "from_element",
    "from_xml",
    "read_gridml",
    "GridMLParseError",
    "merge_documents",
    "build_alias_table",
]
