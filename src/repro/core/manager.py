"""NWS manager: applying a deployment plan (paper §5.2).

The official NWS offers little process-management support: every daemon must
be started by hand on the right host with the right options.  The paper's
authors wrote a small manager driven by a single configuration file shared by
all hosts; each host reads the file and starts its local processes.

This module reproduces that workflow: :func:`build_host_configs` derives,
from a :class:`~repro.core.plan.DeploymentPlan`, which NWS processes each
host must run (name server, memory server, sensor, forecaster) and with which
options (clique memberships, periods, name-server address), and
:func:`render_config` / :func:`parse_config` serialise that shared
configuration file.  The NWS simulator consumes the same configs to
instantiate its daemons, closing the loop from ENV output to a running
(simulated) monitoring system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .plan import Clique, DeploymentPlan

__all__ = ["ProcessSpec", "HostConfig", "build_host_configs", "render_config",
           "parse_config"]


@dataclass(frozen=True)
class ProcessSpec:
    """One NWS process to start on a host."""

    kind: str                     # "nameserver" | "memory" | "sensor" | "forecaster"
    options: Dict[str, str] = field(default_factory=dict)

    def command_line(self) -> str:
        """The equivalent NWS command line (documentation / debugging aid)."""
        binary = {
            "nameserver": "nws_nameserver",
            "memory": "nws_memory",
            "sensor": "nws_sensor",
            "forecaster": "nws_forecast",
        }[self.kind]
        opts = " ".join(f"--{key} {value}" for key, value in sorted(self.options.items()))
        return f"{binary} {opts}".strip()


@dataclass
class HostConfig:
    """All NWS processes one host must run."""

    host: str
    processes: List[ProcessSpec] = field(default_factory=list)

    def kinds(self) -> List[str]:
        return [proc.kind for proc in self.processes]


def build_host_configs(plan: DeploymentPlan,
                       memory_hosts: Optional[Sequence[str]] = None
                       ) -> Dict[str, HostConfig]:
    """Derive per-host process configurations from a deployment plan.

    * the plan's ``nameserver_host`` runs the name server and the forecaster;
    * each clique's first host runs a memory server storing that clique's
      series (unless ``memory_hosts`` overrides the placement);
    * every monitored host runs one sensor, configured with the list of
      cliques it belongs to.
    """
    configs: Dict[str, HostConfig] = {}

    def config_of(host: str) -> HostConfig:
        cfg = configs.get(host)
        if cfg is None:
            cfg = HostConfig(host=host)
            configs[host] = cfg
        return cfg

    nameserver = plan.nameserver_host or (plan.hosts[0] if plan.hosts else None)
    if nameserver is None:
        return configs
    ns_cfg = config_of(nameserver)
    ns_cfg.processes.append(ProcessSpec(kind="nameserver", options={}))
    ns_cfg.processes.append(ProcessSpec(kind="forecaster",
                                        options={"nameserver": nameserver}))

    memory_cycle = list(memory_hosts) if memory_hosts else []
    for idx, clique in enumerate(plan.cliques):
        if memory_cycle:
            memory_host = memory_cycle[idx % len(memory_cycle)]
        else:
            memory_host = clique.hosts[0]
        config_of(memory_host).processes.append(ProcessSpec(
            kind="memory",
            options={"nameserver": nameserver, "clique": clique.name},
        ))

    for host in sorted(plan.monitored_hosts()):
        cliques = plan.cliques_of(host)
        config_of(host).processes.append(ProcessSpec(
            kind="sensor",
            options={
                "nameserver": nameserver,
                "cliques": ",".join(sorted(c.name for c in cliques)),
            },
        ))
    return configs


def render_config(plan: DeploymentPlan) -> str:
    """Render the shared configuration file applied by the manager (§5.2)."""
    lines: List[str] = ["# NWS deployment configuration (generated)", ""]
    lines.append(f"nameserver {plan.nameserver_host}")
    lines.append("")
    for clique in plan.cliques:
        lines.append(f"clique {clique.name} kind={clique.kind} "
                     f"period={clique.period_s:g} network={clique.network_label}")
        lines.append("  hosts " + " ".join(clique.hosts))
    if plan.representatives:
        lines.append("")
        for pair, rep in sorted(plan.representatives.items(),
                                key=lambda item: sorted(item[0])):
            a, b = sorted(pair)
            ra, rb = sorted(rep)
            lines.append(f"represent {a} {b} by {ra} {rb}")
    return "\n".join(lines) + "\n"


def parse_config(text: str) -> DeploymentPlan:
    """Parse a configuration file back into a :class:`DeploymentPlan`."""
    nameserver: Optional[str] = None
    cliques: List[Clique] = []
    representatives = {}
    hosts: set = set()
    pending: Optional[Dict[str, object]] = None

    def flush() -> None:
        nonlocal pending
        if pending is None:
            return
        clique_hosts = tuple(pending["hosts"])  # type: ignore[arg-type]
        cliques.append(Clique(name=str(pending["name"]), hosts=clique_hosts,
                              network_label=str(pending["network"]),
                              kind=str(pending["kind"]),
                              period_s=float(pending["period"])))
        hosts.update(clique_hosts)
        pending = None

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "nameserver":
            nameserver = parts[1]
        elif parts[0] == "clique":
            flush()
            options = dict(item.split("=", 1) for item in parts[2:])
            pending = {"name": parts[1], "kind": options.get("kind", "switched"),
                       "period": options.get("period", "60"),
                       "network": options.get("network", ""), "hosts": []}
        elif parts[0] == "hosts" and pending is not None:
            pending["hosts"] = parts[1:]
        elif parts[0] == "represent":
            a, b, _by, ra, rb = parts[1:6]
            representatives[frozenset((a, b))] = frozenset((ra, rb))
            hosts.update((a, b, ra, rb))
    flush()
    plan = DeploymentPlan(hosts=sorted(hosts), cliques=cliques,
                          representatives=representatives,
                          nameserver_host=nameserver)
    plan.notes["planner"] = "parsed"
    return plan
