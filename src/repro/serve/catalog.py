"""Registry serialization shared by the HTTP catalog endpoint and the CLI.

``GET /scenarios``, ``repro scenarios --format json`` and ``repro dynamics
list --format json`` all emit the same schema, produced here — one place to
evolve the wire format, and a guarantee that scripting against the CLI and
against the server sees identical records.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence

from ..dynamics.scenarios import DynamicScenario
from ..scenarios.registry import Scenario
from ..sweep.runner import code_version

__all__ = ["scenario_record", "catalog_payload", "catalog_etag",
           "catalog_json"]


def scenario_record(scenario: Scenario) -> Dict[str, object]:
    """One scenario as a flat JSON-compatible record."""
    record: Dict[str, object] = {
        "name": scenario.name,
        "family": scenario.family,
        "description": scenario.description,
        "tags": list(scenario.tags),
        "params": scenario.param_dict,
        "content_hash": scenario.content_hash,
        "dynamic": isinstance(scenario, DynamicScenario),
    }
    if isinstance(scenario, DynamicScenario):
        record["base"] = scenario.base
    return record


def catalog_payload(scenarios: Sequence[Scenario]) -> Dict[str, object]:
    """The full catalog document (scenarios sorted by name)."""
    ordered = sorted(scenarios, key=lambda s: s.name)
    return {
        "schema": 1,
        "code_version": code_version(),
        "count": len(ordered),
        "scenarios": [scenario_record(s) for s in ordered],
    }


def catalog_etag(scenarios: Sequence[Scenario]) -> str:
    """A strong ETag over the catalog's content.

    Covers every scenario's content hash plus the code version, so the tag
    changes exactly when the catalog payload can — imports, re-imports and
    code changes all roll it.
    """
    digest = hashlib.sha256()
    for scenario in sorted(scenarios, key=lambda s: s.name):
        digest.update(scenario.name.encode("utf-8"))
        digest.update(scenario.content_hash.encode("utf-8"))
    return f'"{digest.hexdigest()[:20]}+{code_version()[:12]}"'


def catalog_json(scenarios: Sequence[Scenario], indent: Optional[int] = 2
                 ) -> str:
    """The catalog document as deterministic JSON text."""
    return json.dumps(catalog_payload(scenarios), sort_keys=True,
                      indent=indent)
