"""Flight recorder: crash forensics bundles written at the moment of pain.

When something goes wrong in a long-lived serve process — an SLO starts
burning, a circuit breaker opens, the store degrades to its in-memory
fallback, SIGTERM arrives mid-drain — the evidence (recent spans, the
metrics-history window, the health snapshot, any armed profile) lives in
process memory and dies with it.  :class:`FlightRecorder` dumps that
state to disk *at the trigger*, so every chaos-suite failure and every
production incident leaves forensics behind.

Triggers (all funnel into :meth:`FlightRecorder.maybe_dump`):

* ``slo-breach`` — the history thread's snapshot hook sees a breach;
* ``breaker-open`` — ``serve/breaker.py`` transitions a breaker to OPEN;
* ``persist-fallback`` — a store write failed and the record was parked
  in memory (``serve/app.py``);
* ``sigterm`` — the drain path dumps synchronously before teardown;
* ``manual`` — ``repro obs dump`` / ``POST /debug/dump``.

Bundles are single JSON files written through
:func:`repro.ioutils.write_atomic` (RC003 — a crash mid-dump never
leaves a torn bundle), pruned to ``max_bundles`` oldest-first, and
rate-limited per reason by ``cooldown_s`` so a flapping breaker cannot
fill the disk.  ``maybe_dump`` hands the write to a daemon thread — it
is safe to call from event-loop call stacks (RC004).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Callable, Dict, Optional

from ..ioutils import write_atomic
from .logs import get_logger, kv
from .metrics import REGISTRY
from .profile import PROFILER
from .runtime import RUNTIME
from .trace import TRACER

_LOG = get_logger("obs.flightrec")

__all__ = ["FlightRecorder", "FLIGHT"]

#: Bundle format version (bumped when the layout changes).
BUNDLE_SCHEMA = 1
#: Spans per bundle — the tail of the tracer ring, newest last.
MAX_SPANS = 512
DEFAULT_MAX_BUNDLES = 16
DEFAULT_COOLDOWN_S = 30.0
#: The metrics-history window captured into a bundle.
DEFAULT_WINDOW_S = 600.0

_UNSET = object()

_BUNDLES = REGISTRY.counter(
    "repro_flight_bundles_total",
    "Flight bundles written, by trigger reason.", labels=("reason",))
_DUMP_ERRORS = REGISTRY.counter(
    "repro_flight_dump_errors_total",
    "Flight bundle writes that failed (ENOSPC, bad dir).")


class FlightRecorder:
    """Writes forensics bundles on demand (see the module docstring).

    Disabled (``flight_dir`` unset) every call is a cheap no-op — the
    disabled-path cost is gated by the runtime-overhead benchmark.
    """

    def __init__(self, flight_dir: Optional[str] = None,
                 max_bundles: int = DEFAULT_MAX_BUNDLES,
                 cooldown_s: float = DEFAULT_COOLDOWN_S,
                 window_s: float = DEFAULT_WINDOW_S) -> None:
        self._lock = threading.Lock()
        self.flight_dir = flight_dir
        self.max_bundles = int(max_bundles)
        self.cooldown_s = float(cooldown_s)
        self.window_s = float(window_s)
        self.history = None
        self.health_fn: Optional[Callable[[], Dict[str, object]]] = None
        self._seq = 0
        self._last_dump: Dict[str, float] = {}

    def configure(self, flight_dir=_UNSET, max_bundles=_UNSET,
                  cooldown_s=_UNSET, window_s=_UNSET, history=_UNSET,
                  health_fn=_UNSET) -> None:
        """Partial reconfiguration; omitted arguments keep their value."""
        with self._lock:
            if flight_dir is not _UNSET:
                self.flight_dir = flight_dir
            if max_bundles is not _UNSET:
                self.max_bundles = int(max_bundles)
            if cooldown_s is not _UNSET:
                self.cooldown_s = float(cooldown_s)
            if window_s is not _UNSET:
                self.window_s = float(window_s)
            if history is not _UNSET:
                self.history = history
            if health_fn is not _UNSET:
                self.health_fn = health_fn

    @property
    def enabled(self) -> bool:
        return bool(self.flight_dir)

    # -- bundle assembly -----------------------------------------------------

    def _bundle(self, reason: str) -> Dict[str, object]:
        healthz = None
        if self.health_fn is not None:
            try:
                healthz = self.health_fn()
            except Exception as exc:   # noqa: BLE001 — a sick health
                # probe is itself evidence; record the failure instead.
                healthz = {"error": type(exc).__name__}
        metrics_history = None
        if self.history is not None:
            try:
                self.history.snap()    # the freshest possible last point
                metrics_history = self.history.window(self.window_s)
            except Exception as exc:   # noqa: BLE001 — same rationale
                metrics_history = {"error": type(exc).__name__}
        profile_stacks = PROFILER.stacks()
        return {
            "schema": BUNDLE_SCHEMA,
            "reason": reason,
            "created_at": time.time(),
            "pid": os.getpid(),
            "healthz": healthz,
            "spans": TRACER.spans()[-MAX_SPANS:],
            "metrics_history": metrics_history,
            "profile": profile_stacks or None,
            "profile_armed": PROFILER.armed,
            "runtime": RUNTIME.state(),
        }

    def _prune(self, directory: str) -> None:
        try:
            bundles = sorted(
                name for name in os.listdir(directory)
                if name.startswith("flight-") and name.endswith(".json"))
        except OSError:
            return
        for name in bundles[:-self.max_bundles or None]:
            try:
                os.remove(os.path.join(directory, name))
            except OSError as exc:
                _LOG.debug("event=flight_prune_failed %s",
                           kv(bundle=name, error=type(exc).__name__))

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str = "manual") -> Optional[str]:
        """Write one bundle now; returns its path, or ``None`` on failure
        (counted in ``repro_flight_dump_errors_total``) or when disabled.
        """
        directory = self.flight_dir
        if not directory:
            return None
        with self._lock:
            self._seq += 1
            seq = self._seq
        path = os.path.join(
            directory, f"flight-{reason}-{seq:04d}-"
            f"{int(time.time() * 1000)}.json")
        bundle = self._bundle(reason)
        try:
            os.makedirs(directory, exist_ok=True)
            write_atomic(path, json.dumps(bundle) + "\n")
        except (OSError, TypeError, ValueError) as exc:
            _DUMP_ERRORS.inc()
            _LOG.warning("event=flight_dump_failed %s",
                         kv(reason=reason, error=type(exc).__name__))
            return None
        _BUNDLES.labels(reason=reason).inc()
        _LOG.warning("event=flight_bundle_written %s",
                     kv(reason=reason, path=path,
                        spans=len(bundle["spans"])))
        self._prune(directory)
        return path

    def maybe_dump(self, reason: str) -> bool:
        """Trigger an async dump unless disabled or inside the per-reason
        cooldown; returns whether a dump was scheduled.  Never blocks —
        safe from event-loop call stacks and breaker transitions."""
        if not self.flight_dir:
            return False
        now = time.monotonic()
        with self._lock:
            last = self._last_dump.get(reason)
            if last is not None and now - last < self.cooldown_s:
                return False
            self._last_dump[reason] = now
        threading.Thread(target=self.dump, args=(reason,),
                         name=f"repro-flight-{reason}",
                         daemon=True).start()
        return True

    def reset_cooldowns(self) -> None:
        """Forget per-reason cooldowns — test hook."""
        with self._lock:
            self._last_dump.clear()


#: The process-wide recorder; disabled until serve (``--flight-dir``) or
#: the CLI (``repro obs dump --flight-dir``) configures a directory.
FLIGHT = FlightRecorder()
