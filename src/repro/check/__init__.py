"""``repro.check`` — the repo's AST invariant checker.

The reproduction rests on invariants that tests only catch *after* they are
violated: scenario content hashes must be deterministic or the sweep cache
silently serves stale results, every :class:`~repro.netsim.topology.Platform`
mutator must bump the topology version counters or ``ProbeMemo`` serves
stale measurements, persistence must flow through :mod:`repro.ioutils` or
fault injection and torn-write healing are bypassed, and the serving
layer's event loop must never block.  ``repro check`` walks the source tree
with a small :mod:`ast` engine and enforces them *statically*, before the
code runs.

Rules (see :mod:`repro.check.rules` for the precise semantics):

========  ==================================================================
RC001     determinism — no wall-clock / unseeded randomness / set-iteration
          order in modules feeding content hashes
RC002     version-bump — every ``Platform`` method that writes topology
          state must bump a version counter (attribute-write analysis)
RC003     atomic-write — persistence goes through ``ioutils``, never raw
          ``open(..., "w")`` / ``os.replace``
RC004     async-blocking — no blocking calls inside ``async def`` under
          ``serve/``
RC005     silent-except — no exception handler whose body is only ``pass``
RC006     pool-boundary — pool dispatch takes module-level callables, never
          lambdas or closures
========  ==================================================================

Suppress one finding with an inline ``# repro: noqa[RC00X]`` on the flagged
line; grandfather existing findings into a committed JSON baseline
(``repro check --update-baseline``).  The CLI exits 1 on any finding that
is neither suppressed nor baselined.
"""

from .engine import (
    ALL_RULES,
    BaselineStatus,
    CheckResult,
    Finding,
    load_baseline,
    render_json,
    render_text,
    run_check,
    write_baseline,
)
from . import rules as _rules        # noqa: F401  (registers ALL_RULES)

__all__ = [
    "ALL_RULES",
    "BaselineStatus",
    "CheckResult",
    "Finding",
    "load_baseline",
    "render_json",
    "render_text",
    "run_check",
    "write_baseline",
]
