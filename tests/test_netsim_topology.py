"""Unit tests for addresses, DNS, topology and routing."""

import pytest

from repro.netsim import (
    IPv4Address,
    NodeKind,
    Platform,
    Resolver,
    ResolutionError,
    classful_network,
    is_private_ip,
    mbps_to_bytes_per_s,
    bytes_per_s_to_mbps,
)


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        assert str(IPv4Address.parse("140.77.13.229")) == "140.77.13.229"

    @pytest.mark.parametrize("text", ["1.2.3", "256.1.1.1", "a.b.c.d", "1.2.3.4.5"])
    def test_invalid_addresses_rejected(self, text):
        with pytest.raises(ValueError):
            IPv4Address.parse(text)

    @pytest.mark.parametrize("text,cls", [
        ("10.0.0.1", "A"), ("140.77.13.1", "B"), ("192.168.81.50", "C"),
        ("224.0.0.1", "D"), ("250.0.0.1", "E"),
    ])
    def test_address_class(self, text, cls):
        assert IPv4Address.parse(text).address_class == cls

    def test_classful_network(self):
        assert classful_network("140.77.13.229") == "140.77.0.0"
        assert classful_network("192.168.81.50") == "192.168.81.0"
        assert classful_network("10.1.2.3") == "10.0.0.0"

    @pytest.mark.parametrize("text,private", [
        ("10.1.2.3", True), ("172.16.0.1", True), ("172.32.0.1", False),
        ("192.168.254.1", True), ("140.77.13.1", False),
    ])
    def test_private_ranges(self, text, private):
        assert is_private_ip(text) is private

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("1.0.0.2")

    def test_same_subnet_24(self):
        a = IPv4Address.parse("192.168.83.1")
        b = IPv4Address.parse("192.168.83.200")
        c = IPv4Address.parse("192.168.84.1")
        assert a.same_subnet_24(b)
        assert not a.same_subnet_24(c)

    def test_bandwidth_unit_conversions(self):
        assert mbps_to_bytes_per_s(8.0) == pytest.approx(1e6)
        assert bytes_per_s_to_mbps(1e6) == pytest.approx(8.0)


class TestResolver:
    def test_forward_and_reverse(self):
        res = Resolver()
        res.register("host.example.org", "10.0.0.1", aliases=["host"])
        assert str(res.resolve("host.example.org")) == "10.0.0.1"
        assert str(res.resolve("host")) == "10.0.0.1"
        assert res.reverse("10.0.0.1") == "host.example.org"

    def test_unnamed_host_fails_reverse(self):
        res = Resolver()
        res.register(None, "10.0.0.9")
        assert res.try_reverse("10.0.0.9") is None
        with pytest.raises(ResolutionError):
            res.reverse("10.0.0.9")

    def test_unknown_name_raises(self):
        with pytest.raises(ResolutionError):
            Resolver().resolve("nope")

    def test_alias_canonicalisation(self):
        res = Resolver()
        res.register("gw.private", "192.168.0.1")
        res.add_alias("gw.public", "gw.private")
        assert res.canonical("gw.public") == "gw.private"
        assert "gw.public" in res.aliases_of("gw.private")

    def test_domain_of(self):
        assert Resolver.domain_of("canaria.ens-lyon.fr") == "ens-lyon.fr"
        assert Resolver.domain_of("bare") == ""


def small_platform() -> Platform:
    p = Platform("small")
    p.add_host("a", "10.0.1.1")
    p.add_host("b", "10.0.1.2")
    p.add_host("c", "10.0.2.1")
    p.add_hub("hub", 100.0)
    p.add_switch("sw")
    p.add_router("r", "10.0.0.1")
    p.add_link("a", "hub", 100.0, duplex=False)
    p.add_link("b", "hub", 100.0, duplex=False)
    p.add_link("hub", "r", 100.0)
    p.add_link("r", "sw", 100.0)
    p.add_link("sw", "c", 100.0)
    return p


class TestPlatform:
    def test_duplicate_node_rejected(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        with pytest.raises(ValueError):
            p.add_host("a", "10.0.0.2")

    def test_link_to_unknown_node_rejected(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        with pytest.raises(KeyError):
            p.add_link("a", "missing", 100.0)

    def test_route_hops_and_latency(self):
        p = small_platform()
        route = p.route("a", "c")
        assert route.nodes == ["a", "hub", "r", "sw", "c"]
        assert route.hop_count == 4
        assert route.latency == pytest.approx(4e-4)

    def test_route_same_host_is_empty(self):
        p = small_platform()
        route = p.route("a", "a")
        assert route.links == [] and route.nodes == ["a"]

    def test_route_constraint_keys_include_hub(self):
        p = small_platform()
        keys = p.route("a", "b").constraint_keys(p)
        assert ("hub", "hub") in keys

    def test_duplex_link_has_per_direction_keys(self):
        p = small_platform()
        fwd = p.route("r", "c").constraint_keys(p)
        rev = p.route("c", "r").constraint_keys(p)
        assert set(fwd) != set(rev)

    def test_half_duplex_link_has_single_key(self):
        p = small_platform()
        link = p.link_between("a", "hub")
        assert link.direction_key("a", "hub") == link.direction_key("hub", "a")

    def test_bottleneck(self):
        p = small_platform()
        assert p.route("a", "c").bottleneck_mbps(p) == pytest.approx(100.0)

    def test_route_override_changes_path(self):
        p = Platform()
        p.add_host("x", "10.0.0.1")
        p.add_host("y", "10.0.0.2")
        p.add_router("r1", "10.0.0.3")
        p.add_router("r2", "10.0.0.4")
        p.add_link("x", "r1", 100.0)
        p.add_link("r1", "y", 100.0)
        p.add_link("x", "r2", 10.0)
        p.add_link("r2", "y", 10.0)
        p.set_route("x", "y", ["x", "r2", "y"])
        assert p.route("x", "y").nodes == ["x", "r2", "y"]
        # the reverse direction keeps the shortest path
        assert p.route("y", "x").nodes in (["y", "r1", "x"], ["y", "r2", "x"])
        assert not p.routes_are_symmetric("x", "y") or \
            p.route("y", "x").nodes == ["y", "r2", "x"]

    def test_route_override_must_use_existing_edges(self):
        p = small_platform()
        with pytest.raises(ValueError):
            p.set_route("a", "c", ["a", "c"])

    def test_shared_elements_detects_collisions(self):
        p = small_platform()
        shared = p.shared_elements(("a", "c"), ("b", "c"))
        assert shared  # both cross the hub and the hub-r link
        assert ("hub", "hub") in shared

    def test_no_path_raises(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        p.add_host("b", "10.0.0.2")
        with pytest.raises(KeyError):
            p.route("a", "b")

    def test_validate_flags_bad_bandwidth(self):
        p = Platform()
        p.add_host("a", "10.0.0.1")
        p.add_host("b", "10.0.0.2")
        p.add_link("a", "b", 100.0)
        p.links["a--b"].bandwidth_mbps = 0.0
        assert any("bandwidth" in msg for msg in p.validate())

    def test_hosts_sorted(self):
        p = small_platform()
        assert [n.name for n in p.hosts()] == ["a", "b", "c"]

    def test_capacities_cover_all_keys(self):
        p = small_platform()
        caps = p.capacities()
        for key in p.route("a", "c").constraint_keys(p):
            assert key in caps
