"""Clean fixture: no rule fires here."""
import time


def elapsed(start):
    return time.monotonic() - start


def ordered(items):
    return sorted(set(items))
