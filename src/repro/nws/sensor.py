"""NWS sensors.

A sensor runs on every monitored host; in the real system it is the process
that conducts the experiments when its host holds a clique token.  In the
simulation the clique protocol (:mod:`repro.nws.clique`) drives the
experiments, and the :class:`Sensor` keeps the per-host state the rest of the
system cares about: which cliques it belongs to, whether the host is up, and
how many experiments it initiated (used for the intrusiveness accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

__all__ = ["Sensor"]


@dataclass
class Sensor:
    """Per-host sensor state."""

    host: str
    cliques: Set[str] = field(default_factory=set)
    alive: bool = True
    experiments_started: int = 0
    experiments_completed: int = 0
    last_experiment_time: float = -1.0

    def join_clique(self, clique_name: str) -> None:
        self.cliques.add(clique_name)

    def record_start(self) -> None:
        self.experiments_started += 1

    def record_completion(self, time: float) -> None:
        self.experiments_completed += 1
        self.last_experiment_time = time

    def fail(self) -> None:
        """Mark the host as down (failure injection)."""
        self.alive = False

    def recover(self) -> None:
        """Bring the host back up."""
        self.alive = True
