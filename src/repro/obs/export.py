"""Span export (Chrome trace event / Perfetto) and the `repro top` view.

Two pure rendering surfaces, deliberately free of I/O so both are
golden-file testable:

* :func:`chrome_trace` converts span dicts (the tracer ring or a JSONL
  span log) into the Chrome trace event format — load the JSON at
  ``ui.perfetto.dev`` or ``chrome://tracing`` and every sweep worker
  becomes its own process track (``pid`` from the worker-stamped span
  attr, one ``tid`` lane per trace within a pid).
* :func:`render_dashboard` turns a ``/metrics/history`` window document
  plus a ``/healthz`` snapshot into the ANSI dashboard ``repro top``
  repaints: req/s, per-route p95, pool saturation, RSS, loop lag and
  breaker states, with unicode sparklines for the trended series.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["chrome_trace", "chrome_trace_json", "sparkline",
           "render_dashboard"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# Chrome trace event export


def _span_pid(span: Dict[str, object]) -> int:
    attrs = span.get("attrs") or {}
    try:
        return int(attrs.get("pid", 0))
    except (TypeError, ValueError):
        return 0


def chrome_trace(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Span dicts → a Chrome trace event document (Perfetto-loadable).

    Spans are complete events (``ph: "X"``); timestamps are microseconds
    of wall clock (``start_ts`` is wall seconds).  Worker spans carry a
    ``pid`` attr stamped at capture time; anything unstamped renders as
    pid 0 (the submitting process).  Within a pid each trace id gets its
    own small-integer ``tid`` lane so concurrent traces do not overlap.
    """
    tids: Dict[Tuple[int, str], int] = {}
    next_tid: Dict[int, int] = {}
    events: List[Dict[str, object]] = []
    for span in spans:
        if not isinstance(span, dict) or "start_ts" not in span:
            continue
        pid = _span_pid(span)
        trace_id = str(span.get("trace_id", ""))
        lane = (pid, trace_id)
        if lane not in tids:
            next_tid[pid] = next_tid.get(pid, 0) + 1
            tids[lane] = next_tid[pid]
        args = dict(span.get("attrs") or {})
        args.update(trace_id=trace_id,
                    span_id=span.get("span_id"),
                    parent_id=span.get("parent_id"))
        events.append({
            "ph": "X",
            "name": str(span.get("name", "?")),
            "cat": "repro",
            "ts": float(span.get("start_ts", 0.0)) * 1e6,
            "dur": max(0.0, float(span.get("duration_s") or 0.0) * 1e6),
            "pid": pid,
            "tid": tids[lane],
            "args": args,
        })
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    meta: List[Dict[str, object]] = []
    for pid in sorted(next_tid):
        name = "repro" if pid == 0 else f"worker-{pid}"
        meta.append({"ph": "M", "name": "process_name", "pid": pid,
                     "tid": 0, "args": {"name": name}})
    for (pid, trace_id), tid in sorted(tids.items(),
                                       key=lambda item: item[1]):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tid,
                     "args": {"name": f"trace-{trace_id[:8] or '?'}"}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Sequence[Dict[str, object]]) -> str:
    return json.dumps(chrome_trace(spans), indent=None,
                      separators=(",", ":")) + "\n"


# ---------------------------------------------------------------------------
# dashboard rendering


def sparkline(values: Sequence[Optional[float]], width: int = 24) -> str:
    """Render a numeric series as a unicode sparkline (gaps as spaces)."""
    tail = list(values)[-width:]
    present = [v for v in tail if v is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    spread = high - low
    chars = []
    for value in tail:
        if value is None:
            chars.append(" ")
        elif spread <= 0:
            chars.append(_SPARK_BLOCKS[0])
        else:
            index = int((value - low) / spread * (len(_SPARK_BLOCKS) - 1))
            chars.append(_SPARK_BLOCKS[index])
    return "".join(chars)


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None:
        return "–"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" \
                else f"{int(value)}{unit}"
        value /= 1024.0
    return "?"


def _fmt(value: Optional[float], spec: str = ".2f",
         suffix: str = "") -> str:
    if value is None:
        return "–"
    return f"{value:{spec}}{suffix}"


def _series(doc: Dict[str, object], key: str) -> Dict[str, object]:
    return (doc.get("series") or {}).get(key) or {}


def _series_matching(doc: Dict[str, object],
                     name: str) -> Dict[str, Dict[str, object]]:
    prefix = name + "{"
    return {key: value for key, value in (doc.get("series") or {}).items()
            if key == name or key.startswith(prefix)}


def _gauge_points(series: Dict[str, object]) -> List[Optional[float]]:
    return [p[1] for p in series.get("points") or []]


def _rate_points(series: Dict[str, object]) -> List[Optional[float]]:
    """Per-snapshot rates derived from a counter's cumulative points."""
    points = series.get("points") or []
    rates: List[Optional[float]] = []
    previous: Optional[Tuple[float, float]] = None
    for ts, value in points:
        if value is None:
            rates.append(None)
            continue
        if previous is not None and ts > previous[0]:
            rates.append(max(0.0, value - previous[1])
                         / (ts - previous[0]))
        previous = (ts, value)
    return rates


def render_dashboard(history: Dict[str, object],
                     healthz: Dict[str, object],
                     url: str = "", width: int = 78) -> str:
    """One full dashboard frame (plain text; `repro top` adds the ANSI
    clear).  Pure function of the two documents — golden-file friendly.
    """
    lines: List[str] = []
    title = "repro top"
    if url:
        title += f" — {url}"
    status = healthz.get("status", "?")
    uptime = healthz.get("uptime_s")
    lines.append(f"{title:<{width - 20}}{'status: ' + str(status):>20}")
    lines.append("─" * width)

    # Requests: total rate across status classes + per-class split.
    resp = _series_matching(history, "repro_http_responses_total")
    total_rate = 0.0
    any_rate = False
    per_class = []
    combined: List[Optional[float]] = []
    for key, series in sorted(resp.items()):
        rate = series.get("rate_per_s")
        label = key.partition("code=")[2].rstrip("}") or key
        per_class.append(f"{label}:{_fmt(rate, '.2f', '/s')}")
        if rate is not None:
            total_rate += rate
            any_rate = True
        rates = _rate_points(series)
        if len(rates) > len(combined):
            combined += [None] * (len(rates) - len(combined))
        for i, r in enumerate(rates):
            if r is not None:
                combined[i] = (combined[i] or 0.0) + r
    lines.append(
        f"req/s    {_fmt(total_rate if any_rate else None, '.2f'):>8}  "
        f"{sparkline(combined)}  {' '.join(per_class)}")

    # Per-route p95 (slowest first, top 4 routes by window count).
    routes = _series_matching(history, "repro_http_request_seconds")
    ranked = sorted(routes.items(),
                    key=lambda item: -(item[1].get("count_delta") or 0))
    for key, series in ranked[:4]:
        route = key.partition("route=")[2].rstrip("}") or key
        lines.append(
            f"  {route:<28} p95 {_fmt(series.get('p95'), '.3f', 's'):>9}"
            f"  p50 {_fmt(series.get('p50'), '.3f', 's'):>9}"
            f"  n={series.get('count_delta') or 0}")

    # Pool saturation.
    busy = _series(history, "repro_pool_busy_workers")
    queue = _series(history, "repro_pool_queue_depth")
    pending = _series(history, "repro_jobs_pending")
    lines.append(
        f"pool     busy {_fmt(busy.get('last'), '.0f'):>4}  "
        f"queue {_fmt(queue.get('last'), '.0f'):>4}  "
        f"pending {_fmt(pending.get('last'), '.0f'):>4}  "
        f"{sparkline(_gauge_points(busy))}")

    # Process: RSS trend + loop lag.
    rss = _series(history, "process_resident_memory_bytes")
    lag = _series(history, "repro_loop_lag_seconds")
    lines.append(
        f"rss      {_fmt_bytes(rss.get('last')):>10}  "
        f"{sparkline(_gauge_points(rss))}  "
        f"loop lag {_fmt(lag.get('max'), '.4f', 's')}")

    # Breakers (from /healthz — states are not a history series).
    breakers = healthz.get("breakers") or {}
    if breakers:
        rendered = "  ".join(
            f"{name}:{info.get('state', '?')}"
            for name, info in sorted(breakers.items()))
        lines.append(f"breakers {rendered}")
    else:
        lines.append("breakers (none tripped)")

    lines.append("─" * width)
    lines.append(
        f"window {history.get('window_s', '?')}s · "
        f"{history.get('snapshots', 0)} snapshots · "
        f"uptime {_fmt(uptime, '.0f', 's')}")
    return "\n".join(lines) + "\n"
