"""Tests of the deployment plan model, the ENV planner and the NWS manager."""

import pytest

from repro.core import (
    Clique,
    DeploymentPlan,
    build_host_configs,
    host_pair,
    parse_config,
    plan_from_view,
    render_config,
)
from repro.env import map_platform
from repro.netsim import generate_single_site


class TestCliqueAndPlan:
    def test_clique_requires_two_hosts(self):
        with pytest.raises(ValueError):
            Clique(name="x", hosts=("a",))

    def test_clique_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Clique(name="x", hosts=("a", "a"))

    def test_pair_enumeration(self):
        clique = Clique(name="x", hosts=("a", "b", "c"))
        assert len(clique.unordered_pairs()) == 3
        assert len(clique.ordered_pairs()) == 6
        assert "a" in clique and "z" not in clique

    def test_host_pair_requires_distinct(self):
        with pytest.raises(ValueError):
            host_pair("a", "a")

    def test_plan_queries(self):
        plan = DeploymentPlan(hosts=["a", "b", "c", "d"])
        plan.cliques.append(Clique(name="c1", hosts=("a", "b")))
        plan.cliques.append(Clique(name="c2", hosts=("b", "c")))
        plan.representatives[host_pair("a", "c")] = host_pair("a", "b")
        assert plan.clique("c1").hosts == ("a", "b")
        assert [c.name for c in plan.cliques_of("b")] == ["c1", "c2"]
        assert plan.monitored_hosts() == {"a", "b", "c"}
        assert plan.pair_source("a", "b") == host_pair("a", "b")
        assert plan.pair_source("a", "c") == host_pair("a", "b")
        assert plan.pair_source("a", "d") is None
        assert plan.largest_clique_size() == 2

    def test_structure_validation_catches_unknown_hosts(self):
        plan = DeploymentPlan(hosts=["a", "b"])
        plan.cliques.append(Clique(name="c1", hosts=("a", "z")))
        assert any("unknown hosts" in p for p in plan.validate_structure())

    def test_structure_validation_catches_dangling_representative(self):
        plan = DeploymentPlan(hosts=["a", "b", "c"])
        plan.cliques.append(Clique(name="c1", hosts=("a", "b")))
        plan.representatives[host_pair("a", "c")] = host_pair("b", "c")
        assert any("not itself measured" in p for p in plan.validate_structure())

    def test_missing_clique_raises(self):
        with pytest.raises(KeyError):
            DeploymentPlan(hosts=[]).clique("nope")


class TestEnvPlannerOnEnsLyon:
    """The plan of Figure 3, clique by clique."""

    def clique_host_sets(self, plan):
        return {frozenset(c.hosts) for c in plan.cliques}

    def test_five_cliques(self, ens_plan):
        assert len(ens_plan.cliques) == 5

    def test_hub1_pair_is_canaria_moby(self, ens_plan):
        assert frozenset(("canaria", "moby")) in self.clique_host_sets(ens_plan)

    def test_hub2_pair_is_myri0_popc0(self, ens_plan):
        assert frozenset(("myri0", "popc0")) in self.clique_host_sets(ens_plan)

    def test_myri_cluster_pair_is_myri1_myri2(self, ens_plan):
        assert frozenset(("myri1", "myri2")) in self.clique_host_sets(ens_plan)

    def test_sci_clique_contains_all_sci_hosts_and_gateway(self, ens_plan):
        expected = frozenset({"sci0", "sci1", "sci2", "sci3", "sci4", "sci5", "sci6"})
        assert expected in self.clique_host_sets(ens_plan)

    def test_inter_hub_clique_is_canaria_popc0(self, ens_plan):
        inter = [c for c in ens_plan.cliques if c.kind == "inter"]
        assert len(inter) == 1
        assert set(inter[0].hosts) == {"canaria", "popc0"}

    def test_shared_cliques_have_two_hosts(self, ens_plan):
        for clique in ens_plan.cliques:
            if clique.kind == "shared":
                assert clique.size == 2

    def test_representatives_cover_shared_pairs(self, ens_plan):
        # any pair on hub2 must map to the measured (myri0, popc0) pair
        assert ens_plan.pair_source("sci0", "popc0") == host_pair("myri0", "popc0")
        assert ens_plan.pair_source("the-doors", "moby") == host_pair("canaria", "moby")
        # the gateway of a shared cluster is covered too
        assert ens_plan.pair_source("myri0", "myri1") == host_pair("myri1", "myri2")

    def test_nameserver_is_the_master(self, ens_plan):
        assert ens_plan.nameserver_host == "the-doors"

    def test_plan_is_internally_consistent(self, ens_plan):
        assert ens_plan.validate_structure() == []

    def test_gateways_not_chosen_as_shared_representatives(self, ens_plan):
        hub2 = next(c for c in ens_plan.cliques
                    if frozenset(c.hosts) == frozenset(("myri0", "popc0")))
        # popc0 (the only non-gateway of hub2) must be part of the pair
        assert "popc0" in hub2.hosts


class TestPlannerOnSyntheticPlatforms:
    def test_switched_network_gets_full_clique(self):
        platform = generate_single_site(n_hub_clusters=0, n_switch_clusters=1,
                                        hosts_per_cluster=5)
        master = platform.host_names()[0]
        view = map_platform(platform, master)
        plan = plan_from_view(view)
        switched = [c for c in plan.cliques if c.kind == "switched"]
        assert switched and switched[0].size >= 4

    def test_shared_network_gets_pair_clique(self):
        platform = generate_single_site(n_hub_clusters=1, n_switch_clusters=0,
                                        hosts_per_cluster=5)
        master = platform.host_names()[0]
        view = map_platform(platform, master)
        plan = plan_from_view(view)
        shared = [c for c in plan.cliques if c.kind == "shared"]
        assert shared and all(c.size == 2 for c in shared)

    def test_multi_cluster_site_gets_inter_clique(self):
        platform = generate_single_site(n_hub_clusters=1, n_switch_clusters=1,
                                        hosts_per_cluster=3)
        master = platform.host_names()[0]
        view = map_platform(platform, master)
        plan = plan_from_view(view)
        kinds = {c.kind for c in plan.cliques}
        assert "inter" in kinds or len(plan.cliques) >= 2

    def test_period_propagates_to_cliques(self, merged_view):
        plan = plan_from_view(merged_view, period_s=42.0)
        assert all(c.period_s == 42.0 for c in plan.cliques)


class TestManager:
    def test_host_configs_roles(self, ens_plan):
        configs = build_host_configs(ens_plan)
        ns = configs["the-doors"]
        assert "nameserver" in ns.kinds() and "forecaster" in ns.kinds()
        # every monitored host runs a sensor
        for host in ens_plan.monitored_hosts():
            assert "sensor" in configs[host].kinds()
        # one memory server per clique
        memory_count = sum(cfg.kinds().count("memory") for cfg in configs.values())
        assert memory_count == len(ens_plan.cliques)

    def test_sensor_options_list_cliques(self, ens_plan):
        configs = build_host_configs(ens_plan)
        sensor = next(p for p in configs["canaria"].processes if p.kind == "sensor")
        assert "clique-canaria" in sensor.options["cliques"]

    def test_command_lines_render(self, ens_plan):
        configs = build_host_configs(ens_plan)
        line = configs["the-doors"].processes[0].command_line()
        assert line.startswith("nws_")

    def test_config_file_roundtrip(self, ens_plan):
        text = render_config(ens_plan)
        parsed = parse_config(text)
        assert parsed.nameserver_host == ens_plan.nameserver_host
        assert {frozenset(c.hosts) for c in parsed.cliques} == \
            {frozenset(c.hosts) for c in ens_plan.cliques}
        assert parsed.representatives == ens_plan.representatives

    def test_memory_placement_override(self, ens_plan):
        configs = build_host_configs(ens_plan, memory_hosts=["the-doors"])
        kinds = configs["the-doors"].kinds()
        assert kinds.count("memory") == len(ens_plan.cliques)
