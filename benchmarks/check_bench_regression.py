#!/usr/bin/env python
"""Gate CI on the tracked end-to-end benchmark's perf trajectory.

Compares the ``BENCH_results.json`` written by ``make bench`` against the
committed baseline (``benchmarks/BENCH_baseline.json``) and exits non-zero
when the tracked benchmark regressed by more than the tolerance (default
25 %).  Two metrics are checked:

* ``counters`` — deterministic hot-path work (simulation events, max-min
  allocations); any growth beyond the tolerance is a real regression and
  always fails.
* ``wall_s`` — wall-clock time; inherently machine-dependent, so the check
  can be skipped with ``--no-wall`` (or widened via ``--tolerance``) on
  hardware that is not comparable to the baseline machine.

Refresh the baseline after an intentional perf change::

    make bench
    python benchmarks/check_bench_regression.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")
RESULTS_PATH = "BENCH_results.json"
#: The end-to-end benchmark whose trajectory gates CI.
TRACKED = ("benchmarks/test_bench_fastpath.py::"
           "test_bench_fastpath_speedup_on_largest_wan_grid")
#: Counters that measure deterministic work (others, like cache hits, are
#: diagnostics rather than cost).
WORK_COUNTERS = ("events", "allocations")


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _tracked_result(payload: dict, benchmark: str) -> dict:
    for result in payload.get("results", []):
        if result["benchmark"] == benchmark:
            return result
    raise SystemExit(f"tracked benchmark {benchmark!r} missing from results")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default=RESULTS_PATH,
                        help=f"BENCH results file (default: {RESULTS_PATH})")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="committed baseline file")
    parser.add_argument("--benchmark", default=TRACKED,
                        help="node id of the tracked benchmark")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default: 0.25)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip the machine-dependent wall-clock check")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current results")
    args = parser.parse_args(argv)

    results = _load(args.results)
    current = _tracked_result(results, args.benchmark)

    if args.update:
        baseline = {
            "schema": results.get("schema", 1),
            "benchmark": args.benchmark,
            "wall_s": current["wall_s"],
            "counters": {key: current["counters"][key]
                         for key in WORK_COUNTERS},
            "code_version": results.get("code_version", ""),
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = _load(args.baseline)
    # A missing key means the file predates versioning: treat as schema 1.
    results_schema = results.get("schema", 1)
    baseline_schema = baseline.get("schema", 1)
    if results_schema != baseline_schema:
        raise SystemExit(
            f"schema mismatch: results are schema {results_schema} but the "
            f"committed baseline is schema {baseline_schema} — the result "
            f"format changed and comparing across versions would be "
            f"meaningless; refresh the baseline with:\n"
            f"    make bench && python benchmarks/check_bench_regression.py "
            f"--update")
    if baseline["benchmark"] != args.benchmark:
        raise SystemExit("baseline tracks a different benchmark; "
                         "re-run with --update")

    failures = []
    for key in WORK_COUNTERS:
        before = baseline["counters"].get(key, 0)
        after = current["counters"].get(key, 0)
        # A zero baseline means the tracked benchmark does no such work at
        # all; allow only a small absolute amount to appear before failing,
        # otherwise a 0 -> millions regression would pass a relative check.
        limit = before * (1.0 + args.tolerance) if before else 1000
        status = "ok" if after <= limit else "REGRESSED"
        print(f"{key:12s} baseline {before:>12d}  current {after:>12d}  "
              f"{status}")
        if status != "ok":
            failures.append(key)
    if not args.no_wall:
        before_s = baseline["wall_s"]
        after_s = current["wall_s"]
        limit = before_s * (1.0 + args.tolerance)
        status = "ok" if after_s <= limit else "REGRESSED"
        print(f"{'wall_s':12s} baseline {before_s:>12.4f}  "
              f"current {after_s:>12.4f}  {status}")
        if status != "ok":
            failures.append("wall_s")
    if failures:
        print(f"perf regression (> {args.tolerance:.0%}) in: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print("no perf regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
