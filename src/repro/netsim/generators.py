"""Synthetic platform generators.

The paper's quantitative arguments (naive-mapping cost, clique frequency,
plan quality) deserve evaluation beyond the single ENS-Lyon case study, so
the benchmark suite sweeps over synthetic platforms shaped like the ones the
paper targets: "a WAN constellation of LAN resources" (§5) — several sites
joined by a backbone, each site holding a mix of hub segments and switched
clusters behind routers, optionally with firewalled private sub-domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .address import IPv4Address
from .builders import SiteBuilder
from .firewall import Firewall, attach_firewall
from .topology import Platform
from .vlan import VlanPlan

__all__ = ["SyntheticSpec", "generate_constellation", "generate_single_site",
           "ground_truth_groups", "attach_cluster", "finish_platform",
           "WanGridSpec", "generate_wan_grid",
           "CampusSpec", "generate_campus",
           "FatTreeSpec", "generate_fat_tree",
           "StarSpec", "generate_star",
           "RingSpec", "generate_ring",
           "DegradedSpec", "generate_degraded"]


@dataclass
class SyntheticSpec:
    """Parameters of a synthetic Grid constellation."""

    sites: int = 2
    clusters_per_site: Tuple[int, int] = (1, 3)        # inclusive range
    hosts_per_cluster: Tuple[int, int] = (2, 6)        # inclusive range
    hub_probability: float = 0.5                       # else switched
    lan_bandwidth_mbps: Tuple[float, ...] = (100.0, 1000.0)
    wan_bandwidth_mbps: float = 10.0
    lan_latency_s: float = 1e-4
    wan_latency_s: float = 5e-3
    firewall_probability: float = 0.0
    seed: int = 0


def _site_subnet(site_idx: int, cluster_idx: int) -> str:
    return f"10.{site_idx + 1}.{cluster_idx + 1}"


def generate_constellation(spec: SyntheticSpec) -> Platform:
    """Generate a multi-site platform according to ``spec``.

    The ground-truth grouping (which hosts share a segment and of which kind)
    is recorded on the platform as ``platform.ground_truth`` for scoring.
    """
    rng = np.random.default_rng(spec.seed)
    b = SiteBuilder(name=f"synthetic-{spec.seed}")
    platform = b.platform
    platform.add_external("internet")

    ground_truth: Dict[str, Dict[str, object]] = {}
    backbone_name = "backbone"
    b.add_router(backbone_name, ip="192.168.254.1")
    b.connect(backbone_name, "internet", spec.wan_bandwidth_mbps * 10,
              latency_s=spec.wan_latency_s)

    firewall = Firewall()
    any_firewalled = False

    for s in range(spec.sites):
        site_router = f"site{s}-router"
        b.add_router(site_router, ip=f"10.{s + 1}.0.1")
        b.connect(site_router, backbone_name, spec.wan_bandwidth_mbps,
                  latency_s=spec.wan_latency_s)
        domain = f"site{s}.example.org"
        n_clusters = int(rng.integers(spec.clusters_per_site[0],
                                      spec.clusters_per_site[1] + 1))
        for c in range(n_clusters):
            n_hosts = int(rng.integers(spec.hosts_per_cluster[0],
                                       spec.hosts_per_cluster[1] + 1))
            kind = "hub" if rng.random() < spec.hub_probability else "switch"
            bw = float(rng.choice(spec.lan_bandwidth_mbps))
            host_names = [f"s{s}c{c}h{h}" for h in range(n_hosts)]
            subnet = _site_subnet(s, c)
            segment = f"s{s}c{c}-{kind}"
            # Up-link: the cluster's first host is a dual-homed gateway (a
            # traceroute hop, enough structural separation) half the time,
            # otherwise the segment connects straight to the site router,
            # which then reports a per-subnet interface address (as real
            # routers do) so traceroutes separate the clusters structurally.
            gateway = (host_names[0]
                       if n_hosts >= 2 and rng.random() < 0.5 else None)
            attach_cluster(b, segment=segment, kind=kind, host_names=host_names,
                         subnet=subnet, domain=domain, bandwidth_mbps=bw,
                         latency_s=spec.lan_latency_s, attach_to=site_router,
                         site=s, ground_truth=ground_truth, gateway=gateway)
            if spec.firewall_probability > 0 and rng.random() < spec.firewall_probability:
                private_domain = f"private-s{s}c{c}"
                for name in host_names:
                    platform.nodes[name].domain = private_domain
                gateways = [gateway] if gateway else [host_names[0]]
                firewall.isolate_domain(private_domain, gateways=gateways)
                any_firewalled = True

    if any_firewalled:
        attach_firewall(platform, firewall)

    platform.ground_truth = ground_truth  # type: ignore[attr-defined]
    problems = platform.validate()
    if problems:
        raise AssertionError("synthetic platform failed validation: "
                             + "; ".join(problems))
    return platform


def generate_single_site(n_hub_clusters: int = 1, n_switch_clusters: int = 1,
                         hosts_per_cluster: int = 4,
                         bandwidth_mbps: float = 100.0,
                         seed: int = 0) -> Platform:
    """A deterministic single-site platform (useful for unit tests)."""
    spec = SyntheticSpec(sites=1,
                         clusters_per_site=(n_hub_clusters + n_switch_clusters,
                                            n_hub_clusters + n_switch_clusters),
                         hosts_per_cluster=(hosts_per_cluster, hosts_per_cluster),
                         hub_probability=1.0,
                         lan_bandwidth_mbps=(bandwidth_mbps,),
                         seed=seed)
    # Build manually so the hub/switch split is exact rather than probabilistic.
    b = SiteBuilder(name=f"single-site-{seed}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("site-router", ip="10.1.0.1")
    b.connect("site-router", "internet", 100.0, latency_s=5e-3)
    ground_truth: Dict[str, Dict[str, object]] = {}
    cluster_idx = 0
    for kind, count in (("hub", n_hub_clusters), ("switch", n_switch_clusters)):
        for _ in range(count):
            host_names = [f"c{cluster_idx}h{h}" for h in range(hosts_per_cluster)]
            attach_cluster(b, segment=f"c{cluster_idx}-{kind}", kind=kind,
                         host_names=host_names,
                         subnet=_site_subnet(0, cluster_idx),
                         domain="site0.example.org",
                         bandwidth_mbps=bandwidth_mbps, latency_s=1e-4,
                         attach_to="site-router", site=0,
                         ground_truth=ground_truth)
            cluster_idx += 1
    platform.ground_truth = ground_truth  # type: ignore[attr-defined]
    return platform


def ground_truth_groups(platform: Platform) -> Dict[str, Dict[str, object]]:
    """The recorded ground-truth grouping of a generated platform."""
    truth = getattr(platform, "ground_truth", None)
    if truth is None:
        raise ValueError("platform has no recorded ground truth")
    return truth


# ---------------------------------------------------------------------------
# Scenario-suite generators
#
# The generators below parameterise the platform families the scenario
# registry (:mod:`repro.scenarios`) sweeps over: multi-site WAN grids with a
# heterogeneous backbone, firewalled campus networks, fat-tree / star / ring
# LAN variants and degraded platforms (asymmetric routes, lossy VLANs).
# Every generator records ``platform.ground_truth`` and validates the result.
# ---------------------------------------------------------------------------


def finish_platform(platform: Platform,
                    ground_truth: Dict[str, Dict[str, object]]) -> Platform:
    """Record the ground truth, validate and return the platform."""
    platform.ground_truth = ground_truth  # type: ignore[attr-defined]
    problems = platform.validate()
    if problems:
        raise AssertionError(f"{platform.name}: generated platform failed "
                             "validation: " + "; ".join(problems))
    return platform


def attach_cluster(b: SiteBuilder, segment: str, kind: str,
                   host_names: List[str], subnet: str, domain: str,
                   bandwidth_mbps: float, latency_s: float,
                   attach_to: str, site: int,
                   ground_truth: Dict[str, Dict[str, object]],
                   gateway: Optional[str] = None,
                   uplink_mbps: Optional[float] = None,
                   create_hosts: bool = True) -> None:
    """One hub/switch cluster attached to ``attach_to`` (router or gateway).

    ``create_hosts=False`` wires up pre-existing hosts (callers that need
    explicit per-host addresses or properties, like the GridML bridge).
    """
    if create_hosts:
        for name in host_names:
            b.add_host(name, subnet=subnet, domain=domain)
    if kind == "hub":
        b.add_hub_segment(segment, host_names, bandwidth_mbps,
                          latency_s=latency_s)
    else:
        b.add_switch_segment(segment, host_names, bandwidth_mbps,
                             latency_s=latency_s)
    uplink = uplink_mbps if uplink_mbps is not None else bandwidth_mbps
    if gateway is not None:
        b.connect(gateway, attach_to, uplink, latency_s=latency_s)
    else:
        b.connect(segment, attach_to, uplink, latency_s=latency_s)
        b.platform.nodes[attach_to].interface_ips[segment] = \
            IPv4Address.parse(f"{subnet}.254")
    ground_truth[segment] = {
        "hosts": set(host_names),
        "kind": "shared" if kind == "hub" else "switched",
        "site": site,
        "gateway": gateway,
        "bandwidth_mbps": bandwidth_mbps,
    }


@dataclass
class WanGridSpec:
    """A rows×cols grid of sites joined by a heterogeneous WAN backbone.

    Each grid point holds one backbone router and one LAN cluster; adjacent
    backbone routers are joined by links whose bandwidth and latency are
    drawn independently from the given ranges, so paths across the grid see
    genuinely heterogeneous WAN conditions.
    """

    rows: int = 2
    cols: int = 2
    hosts_per_site: Tuple[int, int] = (3, 5)           # inclusive range
    hub_probability: float = 0.3                       # else switched
    lan_bandwidth_mbps: Tuple[float, ...] = (100.0, 1000.0)
    backbone_bandwidth_mbps: Tuple[float, float] = (8.0, 100.0)   # range
    backbone_latency_s: Tuple[float, float] = (1e-3, 2e-2)        # range
    lan_latency_s: float = 1e-4
    seed: int = 0


def generate_wan_grid(spec: WanGridSpec) -> Platform:
    """Generate a multi-site WAN grid according to ``spec``."""
    if spec.rows < 1 or spec.cols < 1:
        raise ValueError("a WAN grid needs at least one row and one column")
    rng = np.random.default_rng(spec.seed)
    b = SiteBuilder(name=f"wan-grid-{spec.rows}x{spec.cols}-{spec.seed}")
    platform = b.platform
    platform.add_external("internet")
    ground_truth: Dict[str, Dict[str, object]] = {}

    def router_name(r: int, c: int) -> str:
        return f"bb-r{r}c{c}"

    for r in range(spec.rows):
        for c in range(spec.cols):
            site = r * spec.cols + c
            b.add_router(router_name(r, c), ip=f"192.168.{site + 1}.1")
    b.connect(router_name(0, 0), "internet",
              spec.backbone_bandwidth_mbps[1],
              latency_s=spec.backbone_latency_s[1])

    lo_bw, hi_bw = spec.backbone_bandwidth_mbps
    lo_lat, hi_lat = spec.backbone_latency_s
    for r in range(spec.rows):
        for c in range(spec.cols):
            for dr, dc in ((0, 1), (1, 0)):        # right and down neighbours
                nr, nc = r + dr, c + dc
                if nr >= spec.rows or nc >= spec.cols:
                    continue
                bw = float(rng.uniform(lo_bw, hi_bw))
                lat = float(rng.uniform(lo_lat, hi_lat))
                b.connect(router_name(r, c), router_name(nr, nc), bw,
                          latency_s=lat)

    for r in range(spec.rows):
        for c in range(spec.cols):
            site = r * spec.cols + c
            n_hosts = int(rng.integers(spec.hosts_per_site[0],
                                       spec.hosts_per_site[1] + 1))
            kind = "hub" if rng.random() < spec.hub_probability else "switch"
            bw = float(rng.choice(spec.lan_bandwidth_mbps))
            host_names = [f"g{site}h{h}" for h in range(n_hosts)]
            attach_cluster(b, segment=f"g{site}-{kind}", kind=kind,
                         host_names=host_names, subnet=f"10.{site + 1}.1",
                         domain=f"site{site}.grid.example.org",
                         bandwidth_mbps=bw, latency_s=spec.lan_latency_s,
                         attach_to=router_name(r, c), site=site,
                         ground_truth=ground_truth)
    return finish_platform(platform, ground_truth)


@dataclass
class CampusSpec:
    """A campus network: departments behind a core, some of them firewalled.

    The first ``firewalled_departments`` departments sit behind a NAT-style
    firewall: their hosts live in a private domain and only the dual-homed
    gateway host may talk across the boundary (exercising
    :mod:`repro.netsim.firewall` exactly like the paper's popc.private side).
    """

    departments: int = 3
    firewalled_departments: int = 1
    hosts_per_department: Tuple[int, int] = (3, 5)     # inclusive range
    hub_probability: float = 0.4                       # else switched
    lan_bandwidth_mbps: Tuple[float, ...] = (100.0,)
    core_bandwidth_mbps: float = 1000.0
    uplink_bandwidth_mbps: float = 100.0
    lan_latency_s: float = 1e-4
    core_latency_s: float = 5e-4
    seed: int = 0


def generate_campus(spec: CampusSpec) -> Platform:
    """Generate a firewalled campus topology according to ``spec``."""
    if spec.firewalled_departments > spec.departments:
        raise ValueError("cannot firewall more departments than exist")
    rng = np.random.default_rng(spec.seed)
    b = SiteBuilder(name=f"campus-{spec.departments}-{spec.seed}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("campus-core", ip="172.16.0.1")
    b.connect("campus-core", "internet", spec.uplink_bandwidth_mbps,
              latency_s=5e-3)
    ground_truth: Dict[str, Dict[str, object]] = {}
    firewall = Firewall()

    for d in range(spec.departments):
        dept_router = f"dept{d}-router"
        b.add_router(dept_router, ip=f"172.16.{d + 1}.1")
        b.connect(dept_router, "campus-core", spec.core_bandwidth_mbps,
                  latency_s=spec.core_latency_s)
        n_hosts = int(rng.integers(spec.hosts_per_department[0],
                                   spec.hosts_per_department[1] + 1))
        kind = "hub" if rng.random() < spec.hub_probability else "switch"
        bw = float(rng.choice(spec.lan_bandwidth_mbps))
        host_names = [f"d{d}h{h}" for h in range(n_hosts)]
        firewalled = d < spec.firewalled_departments
        domain = (f"private-d{d}" if firewalled
                  else "campus.example.edu")
        # Firewalled departments reach the core through a dual-homed gateway
        # host (the NAT box); open departments attach their segment directly.
        gateway = host_names[0] if firewalled else None
        attach_cluster(b, segment=f"d{d}-{kind}", kind=kind,
                     host_names=host_names, subnet=f"10.{100 + d}.1",
                     domain=domain, bandwidth_mbps=bw,
                     latency_s=spec.lan_latency_s, attach_to=dept_router,
                     site=d, ground_truth=ground_truth, gateway=gateway,
                     uplink_mbps=spec.uplink_bandwidth_mbps)
        if firewalled:
            firewall.isolate_domain(domain, gateways=[gateway])

    if spec.firewalled_departments:
        attach_firewall(platform, firewall)
    return finish_platform(platform, ground_truth)


@dataclass
class FatTreeSpec:
    """A two-level fat-tree LAN: core router, per-pod routers, edge switches."""

    pods: int = 2
    edges_per_pod: int = 2
    hosts_per_edge: int = 3
    edge_bandwidth_mbps: float = 100.0
    aggregation_bandwidth_mbps: float = 1000.0
    core_bandwidth_mbps: float = 10000.0
    latency_s: float = 5e-5


def generate_fat_tree(spec: FatTreeSpec) -> Platform:
    """Generate a fat-tree LAN according to ``spec``."""
    if min(spec.pods, spec.edges_per_pod, spec.hosts_per_edge) < 1:
        raise ValueError("fat-tree dimensions must be positive")
    b = SiteBuilder(name=f"fat-tree-{spec.pods}x{spec.edges_per_pod}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("ft-core", ip="10.0.0.1")
    b.connect("ft-core", "internet", spec.core_bandwidth_mbps, latency_s=1e-3)
    ground_truth: Dict[str, Dict[str, object]] = {}
    for p in range(spec.pods):
        pod_router = f"pod{p}-agg"
        b.add_router(pod_router, ip=f"10.{p + 1}.0.1")
        b.connect(pod_router, "ft-core", spec.core_bandwidth_mbps,
                  latency_s=spec.latency_s)
        for e in range(spec.edges_per_pod):
            host_names = [f"p{p}e{e}h{h}" for h in range(spec.hosts_per_edge)]
            attach_cluster(b, segment=f"p{p}e{e}-switch", kind="switch",
                         host_names=host_names, subnet=f"10.{p + 1}.{e + 1}",
                         domain="fat-tree.example.org",
                         bandwidth_mbps=spec.edge_bandwidth_mbps,
                         latency_s=spec.latency_s, attach_to=pod_router,
                         site=p, ground_truth=ground_truth,
                         uplink_mbps=spec.aggregation_bandwidth_mbps)
    return finish_platform(platform, ground_truth)


@dataclass
class StarSpec:
    """A single star LAN: every host on one central hub or switch."""

    hosts: int = 8
    kind: str = "switch"                               # or "hub"
    bandwidth_mbps: float = 100.0
    latency_s: float = 1e-4


def generate_star(spec: StarSpec) -> Platform:
    """Generate a star LAN according to ``spec``."""
    if spec.hosts < 2:
        raise ValueError("a star needs at least two hosts")
    if spec.kind not in ("hub", "switch"):
        raise ValueError(f"unknown star kind {spec.kind!r}")
    b = SiteBuilder(name=f"star-{spec.kind}-{spec.hosts}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("star-router", ip="10.9.0.1")
    b.connect("star-router", "internet", spec.bandwidth_mbps, latency_s=5e-3)
    ground_truth: Dict[str, Dict[str, object]] = {}
    host_names = [f"star{h}" for h in range(spec.hosts)]
    attach_cluster(b, segment=f"star-{spec.kind}", kind=spec.kind,
                 host_names=host_names, subnet="10.9.1",
                 domain="star.example.org", bandwidth_mbps=spec.bandwidth_mbps,
                 latency_s=spec.latency_s, attach_to="star-router", site=0,
                 ground_truth=ground_truth)
    return finish_platform(platform, ground_truth)


@dataclass
class RingSpec:
    """Sites on a WAN ring; traffic between sites crosses part of the ring."""

    sites: int = 4
    hosts_per_site: Tuple[int, int] = (2, 4)           # inclusive range
    hub_probability: float = 0.5                       # else switched
    lan_bandwidth_mbps: float = 100.0
    ring_bandwidth_mbps: Tuple[float, float] = (10.0, 60.0)       # range
    ring_latency_s: float = 5e-3
    lan_latency_s: float = 1e-4
    seed: int = 0


def generate_ring(spec: RingSpec) -> Platform:
    """Generate a ring of sites according to ``spec``."""
    if spec.sites < 3:
        raise ValueError("a ring needs at least three sites")
    rng = np.random.default_rng(spec.seed)
    b = SiteBuilder(name=f"ring-{spec.sites}-{spec.seed}")
    platform = b.platform
    platform.add_external("internet")
    ground_truth: Dict[str, Dict[str, object]] = {}
    for s in range(spec.sites):
        b.add_router(f"ring{s}-router", ip=f"192.168.{s + 1}.1")
    b.connect("ring0-router", "internet", spec.ring_bandwidth_mbps[1],
              latency_s=spec.ring_latency_s)
    for s in range(spec.sites):
        bw = float(rng.uniform(*spec.ring_bandwidth_mbps))
        b.connect(f"ring{s}-router", f"ring{(s + 1) % spec.sites}-router",
                  bw, latency_s=spec.ring_latency_s)
    for s in range(spec.sites):
        n_hosts = int(rng.integers(spec.hosts_per_site[0],
                                   spec.hosts_per_site[1] + 1))
        kind = "hub" if rng.random() < spec.hub_probability else "switch"
        host_names = [f"r{s}h{h}" for h in range(n_hosts)]
        attach_cluster(b, segment=f"r{s}-{kind}", kind=kind,
                     host_names=host_names, subnet=f"10.{s + 1}.1",
                     domain=f"site{s}.ring.example.org",
                     bandwidth_mbps=spec.lan_bandwidth_mbps,
                     latency_s=spec.lan_latency_s,
                     attach_to=f"ring{s}-router", site=s,
                     ground_truth=ground_truth)
    return finish_platform(platform, ground_truth)


@dataclass
class DegradedSpec:
    """Two sites with degraded interconnect and a lossy in-site VLAN.

    The inter-site path is asymmetric: the forward direction (site 0 →
    site 1) is forced over a slow detour router while the reverse uses the
    fast direct link (the paper's §4.3 "Asymmetric routes").  Site 1 also
    holds a degraded hub — low bandwidth, high latency — whose hosts are
    spread over VLANs that do not match the physical segments (§3.1).
    """

    hosts_per_cluster: int = 3
    lan_bandwidth_mbps: float = 100.0
    degraded_bandwidth_mbps: float = 10.0
    fast_wan_mbps: float = 100.0
    slow_wan_mbps: float = 10.0
    wan_latency_s: float = 5e-3
    degraded_latency_s: float = 2e-3


def generate_degraded(spec: DegradedSpec) -> Platform:
    """Generate the degraded-link platform described by ``spec``."""
    if spec.hosts_per_cluster < 2:
        raise ValueError("clusters need at least two hosts")
    b = SiteBuilder(name=f"degraded-{spec.hosts_per_cluster}")
    platform = b.platform
    platform.add_external("internet")
    b.add_router("site0-router", ip="10.1.0.1")
    b.add_router("site1-router", ip="10.2.0.1")
    b.add_router("detour-router", ip="10.3.0.1")
    b.connect("site0-router", "internet", spec.fast_wan_mbps,
              latency_s=spec.wan_latency_s)
    # Fast direct link plus a slow detour between the two sites.
    b.connect("site0-router", "site1-router", spec.fast_wan_mbps,
              latency_s=spec.wan_latency_s)
    b.connect("site0-router", "detour-router", spec.fast_wan_mbps,
              latency_s=spec.wan_latency_s)
    b.connect("detour-router", "site1-router", spec.slow_wan_mbps,
              latency_s=spec.wan_latency_s * 2)

    ground_truth: Dict[str, Dict[str, object]] = {}
    clusters = (
        ("a", "switch", "site0-router", spec.lan_bandwidth_mbps, 1e-4, 0),
        ("b", "switch", "site1-router", spec.lan_bandwidth_mbps, 1e-4, 1),
        ("lossy", "hub", "site1-router", spec.degraded_bandwidth_mbps,
         spec.degraded_latency_s, 1),
    )
    for idx, (tag, kind, router, bw, lat, site) in enumerate(clusters):
        host_names = [f"{tag}{h}" for h in range(spec.hosts_per_cluster)]
        attach_cluster(b, segment=f"{tag}-{kind}", kind=kind,
                     host_names=host_names, subnet=f"10.{idx + 1}.1",
                     domain=f"site{site}.degraded.example.org",
                     bandwidth_mbps=bw, latency_s=lat, attach_to=router,
                     site=site, ground_truth=ground_truth)

    # Asymmetric routes: site-0 → site-1 traffic is forced over the detour.
    for dst_segment, dst_spec in ground_truth.items():
        if dst_spec["site"] != 1:
            continue
        for src in sorted(ground_truth["a-switch"]["hosts"]):
            for dst in sorted(dst_spec["hosts"]):
                platform.set_route(src, dst, [
                    src, "a-switch", "site0-router", "detour-router",
                    "site1-router", dst_segment, dst,
                ])

    # Lossy VLAN plan: the logical grouping interleaves the two site-1
    # clusters, so the logical view is a misleading proxy of physical sharing.
    vlans = VlanPlan()
    b_hosts = sorted(ground_truth["b-switch"]["hosts"])
    lossy_hosts = sorted(ground_truth["lossy-hub"]["hosts"])
    for i, host in enumerate(b_hosts + lossy_hosts):
        vlans.assign(host, f"vlan{i % 2}")
    vlans.apply(platform)
    platform.vlan_plan = vlans  # type: ignore[attr-defined]
    return finish_platform(platform, ground_truth)
