"""Tests of the observability layer: tracer, metrics, logs, timeline.

The span concurrency tests mirror the result-store discipline tests: spans
recorded from many threads must survive a simultaneous metrics scrape, and
two processes appending to one JSONL span log must interleave only at line
boundaries.
"""

import json
import logging
import math
import os
import subprocess
import sys
import threading

import pytest

from repro import perf
from repro.cli import main
from repro.obs import (
    NULL_SPAN,
    TRACER,
    MetricsRegistry,
    group_traces,
    kv,
    load_span_log,
    register_perf_counters,
    render_timeline,
    setup_logging,
    to_json_line,
)
from repro.obs.logs import get_logger
from repro.perf import fast_path_enabled, set_fast_path
from repro.sweep.runner import TaskContext, submit_scenario

# ---------------------------------------------------------------------------
# helpers / fixtures


@pytest.fixture(autouse=True)
def _tracer_isolation():
    """Every test starts and ends with the tracer disabled and empty."""
    TRACER.reset()
    yield
    TRACER.reset()


class _ListHandler(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def trace_log_records():
    """Capture records of the tracer's logger without touching handlers of
    the ``repro`` root (setup_logging may or may not have run)."""
    handler = _ListHandler()
    logger = logging.getLogger("repro.obs.trace")
    logger.addHandler(handler)
    yield handler.records
    logger.removeHandler(handler)


# ---------------------------------------------------------------------------
# tracing


class TestTracer:
    def test_disabled_by_default_and_near_free(self):
        assert TRACER.sample_rate == 0.0 and not TRACER.enabled
        assert TRACER.start_trace("root") is NULL_SPAN
        # Outside any trace, span() is the shared null singleton — no
        # allocation, nothing recorded.
        with TRACER.span("child") as span:
            assert span is NULL_SPAN
        assert TRACER.current_context() is None
        assert len(TRACER) == 0

    def test_supplied_trace_id_forces_sampling(self):
        with TRACER.start_trace("serve.request",
                                trace_id="client-chose-this") as root:
            assert root.sampled and root.trace_id == "client-chose-this"
            with TRACER.span("inner"):
                pass
        names = [s["name"] for s in TRACER.trace("client-chose-this")]
        assert names == ["serve.request", "inner"]

    def test_malformed_trace_id_falls_back_to_sampling(self):
        assert TRACER.start_trace("r", trace_id="has spaces") is NULL_SPAN
        assert TRACER.start_trace("r", trace_id="x" * 65) is NULL_SPAN
        TRACER.configure(sample_rate=1.0)
        span = TRACER.start_trace("r", trace_id="bad id")
        assert span.sampled and span.trace_id != "bad id"
        with span:
            pass

    def test_nesting_links_parent_ids_and_orders_spans(self):
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("root", kind="test") as root:
            with TRACER.span("a") as a:
                with TRACER.span("a.1"):
                    pass
            with TRACER.span("b"):
                pass
        spans = {s["name"]: s for s in TRACER.trace(root.trace_id)}
        assert spans["a"]["parent_id"] == root.span_id
        assert spans["a.1"]["parent_id"] == a.span_id
        assert spans["b"]["parent_id"] == root.span_id
        assert spans["root"]["parent_id"] is None
        assert all(s["duration_s"] >= 0.0 for s in spans.values())
        # trace() orders by start time: the root opened first.
        assert [s["name"] for s in TRACER.trace(root.trace_id)][0] == "root"

    def test_perf_counter_deltas_attach_to_spans(self):
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("root"):
            with TRACER.span("work"):
                perf.COUNTERS.add(events=3, allocations=2)
        work = next(s for s in TRACER.spans() if s["name"] == "work")
        assert work["attrs"]["perf"] == {"events": 3, "allocations": 2}
        root = next(s for s in TRACER.spans() if s["name"] == "root")
        # The root saw the same work; untouched counters never appear.
        assert root["attrs"]["perf"]["events"] == 3
        assert "route_cache_hits" not in work["attrs"]["perf"]

    def test_exception_marks_span_and_propagates(self):
        TRACER.configure(sample_rate=1.0)
        with pytest.raises(RuntimeError):
            with TRACER.start_trace("boom"):
                raise RuntimeError("nope")
        span = TRACER.spans()[-1]
        assert span["attrs"]["error"] == "RuntimeError"

    def test_ring_buffer_is_bounded(self):
        TRACER.configure(sample_rate=1.0, capacity=4)
        for i in range(10):
            with TRACER.start_trace(f"s{i}"):
                pass
        spans = TRACER.spans()
        assert len(spans) == 4
        assert [s["name"] for s in spans] == ["s6", "s7", "s8", "s9"]

    def test_configure_validates_sample_rate(self):
        with pytest.raises(ValueError):
            TRACER.configure(sample_rate=1.5)

    def test_capture_adopt_and_ingest_round_trip(self):
        """The pool-worker protocol, in-process: capture spans under an
        adopted context, ship the dicts, ingest them elsewhere."""
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("submitter") as root:
            context = TRACER.current_context()
        assert context == {"trace_id": root.trace_id,
                           "span_id": root.span_id}
        # "Worker side": adopt the shipped context, capture what finishes.
        with TRACER.capture() as captured:
            with TRACER.adopt(context, "sweep.run_scenario", fast_path=True):
                with TRACER.span("pipeline.map"):
                    pass
        assert [s["name"] for s in captured.spans] == \
            ["pipeline.map", "sweep.run_scenario"]
        assert all(s["trace_id"] == root.trace_id for s in captured.spans)
        # "Submitter side": ingestion folds them into the ring (here they
        # are already present; ingest must still accept and append).
        before = len(TRACER)
        TRACER.ingest(captured.spans)
        TRACER.ingest(None)
        TRACER.ingest([{"not-a-span": True}, "junk"])
        assert len(TRACER) == before + 2

    def test_adopt_without_context_is_null(self):
        assert TRACER.adopt(None, "w") is NULL_SPAN
        assert TRACER.adopt({}, "w") is NULL_SPAN

    def test_record_external_spans(self):
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("root") as root:
            context = TRACER.current_context()
        TRACER.record_external("queue_wait", context, start_ts=123.0,
                               duration_s=0.5, job="job-1")
        TRACER.record_external("dropped", None, start_ts=0.0, duration_s=1.0)
        waits = [s for s in TRACER.spans() if s["name"] == "queue_wait"]
        assert len(waits) == 1
        assert waits[0]["parent_id"] == root.span_id
        assert waits[0]["start_ts"] == 123.0
        assert waits[0]["duration_s"] == 0.5
        assert not any(s["name"] == "dropped" for s in TRACER.spans())

    def test_span_log_appends_jsonl(self, tmp_path):
        log = str(tmp_path / "spans.jsonl")
        TRACER.configure(sample_rate=1.0, log_path=log)
        with TRACER.start_trace("root"):
            with TRACER.span("child"):
                pass
        spans = load_span_log(log)
        assert [s["name"] for s in spans] == ["child", "root"]
        assert TRACER.log_errors == 0

    def test_unwritable_span_log_counts_not_raises(self, tmp_path):
        TRACER.configure(sample_rate=1.0, log_path=str(tmp_path))  # a dir
        with TRACER.start_trace("root"):
            pass
        assert TRACER.log_errors == 1

    def test_slow_span_warning(self, trace_log_records):
        TRACER.configure(sample_rate=1.0, slow_span_s=1e-9)
        with TRACER.start_trace("sluggish"):
            pass
        messages = [r.getMessage() for r in trace_log_records]
        assert any("event=slow_span" in m and "name=sluggish" in m
                   for m in messages)


# ---------------------------------------------------------------------------
# metrics


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "a counter")
        counter.inc()
        counter.inc(2)
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = reg.gauge("g", "a gauge")
        gauge.set(4.5)
        hist = reg.histogram("h_seconds", "a histogram",
                             buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(99.0)
        snap = reg.snapshot()
        assert snap["c_total"]["series"][0]["value"] == 3
        assert snap["g"]["series"][0]["value"] == 4.5
        series = snap["h_seconds"]["series"][0]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(99.55)
        # Buckets are cumulative, +Inf last.
        assert series["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_labels_resolve_per_series(self):
        reg = MetricsRegistry()
        metric = reg.histogram("stage_seconds", labels=("stage",),
                               buckets=(1.0,))
        metric.labels(stage="map").observe(0.5)
        metric.labels(stage="map").observe(0.7)
        metric.labels(stage="plan").observe(0.1)
        snap = reg.snapshot()["stage_seconds"]["series"]
        by_stage = {s["labels"]["stage"]: s["count"] for s in snap}
        assert by_stage == {"map": 2, "plan": 1}
        with pytest.raises(ValueError):
            metric.labels(wrong="x")
        with pytest.raises(ValueError):
            metric.observe(1.0)          # labelled: must go through labels()

    def test_registration_is_get_or_create(self):
        reg = MetricsRegistry()
        first = reg.counter("same", "one")
        assert reg.counter("same") is first
        with pytest.raises(ValueError):
            reg.gauge("same")            # kind mismatch
        # A new callback re-binds (app instances re-register idempotently).
        reg.gauge("depth", fn=lambda: 1)
        reg.gauge("depth", fn=lambda: 2)
        assert reg.snapshot()["depth"]["series"][0]["value"] == 2

    def test_kind_mismatch_operations_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").set(1)
        with pytest.raises(ValueError):
            reg.counter("c").observe(1)
        with pytest.raises(ValueError):
            reg.histogram("h").set_callback(lambda: 1)
        with pytest.raises(ValueError):
            reg.histogram("empty", buckets=())

    def test_broken_callback_degrades_to_nan(self):
        reg = MetricsRegistry()

        def broken():
            raise RuntimeError("scrape me anyway")

        reg.gauge("flaky", fn=broken)
        reg.counter("fine", fn=lambda: 7)
        snap = reg.snapshot()
        assert snap["flaky"]["series"][0]["value"] is None
        assert snap["fine"]["series"][0]["value"] == 7
        text = reg.render_prometheus()
        assert "flaky NaN" in text
        assert "fine 7" in text

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests\nserved").inc(5)
        hist = reg.histogram("lat_seconds", "latency", labels=("route",),
                             buckets=(0.1, 1.0))
        hist.labels(route='/x"y').observe(0.05)
        hist.labels(route='/x"y').observe(0.5)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# HELP req_total requests\\nserved" in lines
        assert "# TYPE req_total counter" in lines
        assert "req_total 5" in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{route="/x\\"y",le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{route="/x\\"y",le="1"} 2' in lines
        assert 'lat_seconds_bucket{route="/x\\"y",le="+Inf"} 2' in lines
        assert 'lat_seconds_count{route="/x\\"y"} 2' in lines

    def test_zero_clears_values_but_keeps_handles_live(self):
        reg = MetricsRegistry()
        counter = reg.counter("served_total")
        counter.inc(7)
        hist = reg.histogram("wait_seconds", labels=("q",),
                             buckets=(0.1, 1.0))
        hist.labels(q="a").observe(0.5)
        reg.zero()
        text = reg.render_prometheus()
        assert "served_total 0" in text
        assert 'wait_seconds_count{q="a"} 0' in text
        # The pre-zero handles still feed the same registry.
        counter.inc(2)
        hist.labels(q="a").observe(0.05)
        text = reg.render_prometheus()
        assert "served_total 2" in text
        assert 'wait_seconds_bucket{q="a",le="0.1"} 1' in text

    def test_reset_keeps_perf_counters_exported(self):
        reg = MetricsRegistry()
        register_perf_counters(reg)
        reg.counter("transient").inc()
        reg.reset()
        text = reg.render_prometheus()
        assert "repro_perf_events_total" in text
        assert "transient" not in text

    def test_global_registry_exports_subsystem_metrics(self):
        # Importing the instrumented layers registered their metrics
        # against the process-wide registry.
        from repro.obs import REGISTRY
        import repro.pipeline  # noqa: F401 — registration side effect
        import repro.serve.app  # noqa: F401
        import repro.serve.jobs  # noqa: F401
        text = REGISTRY.render_prometheus()
        assert "# TYPE repro_pipeline_stage_seconds histogram" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "# TYPE repro_job_queue_wait_seconds histogram" in text
        assert "# TYPE repro_perf_events_total counter" in text


# ---------------------------------------------------------------------------
# structured logging


class TestLogs:
    def test_setup_logging_levels_and_format(self):
        import io
        stream = io.StringIO()
        logger = setup_logging("info", stream=stream)
        try:
            get_logger("unit").info("event=test %s", kv(key="value"))
            get_logger("unit").debug("event=hidden")
            line = stream.getvalue().strip()
            assert line.count("\n") == 0
            assert "level=INFO" in line
            assert "logger=repro.unit" in line
            assert "event=test key=value" in line
        finally:
            logger.handlers[:] = []      # detach the test stream

    def test_setup_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            setup_logging("chatty")

    def test_get_logger_prefix(self):
        assert get_logger("serve.access").name == "repro.serve.access"
        assert get_logger("repro.x").name == "repro.x"

    def test_kv_rendering(self):
        assert kv(a=1, b="plain", c="needs space") == \
            'a=1 b=plain c="needs space"'
        assert kv(f=1.25, t=True, n=None) == "f=1.25 t=true n=none"
        assert kv(ms=0.5000001) == "ms=0.5"
        assert kv(empty="") == 'empty=""'

    def test_to_json_line(self):
        line = to_json_line({"b": 1, "a": 2})
        assert line == '{"a":2,"b":1}\n'


# ---------------------------------------------------------------------------
# timelines


class TestTimeline:
    @staticmethod
    def _span(name, span_id, parent_id=None, start=0.0, dur=0.1, **attrs):
        return {"trace_id": "t1", "span_id": span_id,
                "parent_id": parent_id, "name": name,
                "start_ts": 100.0 + start, "duration_s": dur,
                "attrs": attrs}

    def test_render_timeline_tree(self):
        spans = [
            self._span("serve.request", "a", start=0.0, dur=1.0, status=202),
            self._span("serve.queue_wait", "b", parent_id="a",
                       start=0.01, dur=0.02),
            self._span("sweep.run_scenario", "c", parent_id="a",
                       start=0.05, dur=0.9, perf={"allocations": 12}),
        ]
        text = render_timeline(spans, trace_id="t1")
        lines = text.splitlines()
        assert lines[0].startswith("trace t1 — 3 spans")
        assert "serve.request" in lines[1]
        assert lines[2].startswith("  serve.queue_wait")
        assert "perf.allocations=12" in lines[3]
        assert "status=202" in lines[1]

    def test_orphans_render_as_roots(self):
        spans = [self._span("lonely", "z", parent_id="gone")]
        text = render_timeline(spans)
        assert "lonely" in text and "(no spans)" not in text
        assert render_timeline([], trace_id="t1") == "(no spans)"

    def test_load_span_log_skips_bad_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        good = self._span("ok", "s1")
        path.write_text(json.dumps(good) + "\n"
                        "not json\n"
                        '{"no_trace": 1}\n'
                        + json.dumps(good) + "\n")
        with pytest.warns(UserWarning):
            spans = load_span_log(str(path))
        assert len(spans) == 2

    def test_group_traces_orders_by_first_start(self):
        late = dict(self._span("late", "l"), trace_id="t-late",
                    start_ts=200.0)
        early = dict(self._span("early", "e"), trace_id="t-early",
                     start_ts=50.0)
        groups = group_traces([late, early])
        assert list(groups) == ["t-early", "t-late"]

    def test_cli_trace_command(self, tmp_path, capsys):
        log = str(tmp_path / "spans.jsonl")
        TRACER.configure(sample_rate=1.0, log_path=log)
        with TRACER.start_trace("cli.map"):
            with TRACER.span("env.lookup"):
                pass
        trace_id = TRACER.spans()[-1]["trace_id"]
        assert main(["trace", log]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace_id}" in out
        assert "env.lookup" in out
        assert main(["trace", log, "--trace-id", trace_id]) == 0
        assert main(["trace", log, "--trace-id", "missing"]) == 1

    def test_cli_trace_missing_and_empty_logs_diagnose(self, tmp_path,
                                                       capsys):
        """An absent or span-free log is an operator mistake: a pointed
        diagnostic on stderr and exit 1, not a generic error exit."""
        absent = str(tmp_path / "absent.jsonl")
        assert main(["trace", absent]) == 1
        err = capsys.readouterr().err
        assert "cannot read span log" in err
        assert "--trace-log" in err          # the fix is suggested
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "no spans" in err
        assert "--trace-sample" in err

    def test_cli_trace_orphaned_parents_diagnose(self, tmp_path, capsys):
        """Orphaned parent ids mean the log is incomplete: the timeline
        still renders (orphans as extra roots) but the exit is non-zero."""
        log = tmp_path / "spans.jsonl"
        spans = [self._span("root", "s1"),
                 dict(self._span("child", "s2"), parent_id="vanished")]
        log.write_text("".join(json.dumps(s) + "\n" for s in spans))
        assert main(["trace", str(log)]) == 1
        captured = capsys.readouterr()
        assert "child" in captured.out       # still rendered
        assert "orphan" in captured.out      # and marked in the timeline
        assert "orphaned span(s)" in captured.err
        # A complete log keeps exiting 0.
        log.write_text(json.dumps(self._span("root", "s1")) + "\n")
        assert main(["trace", str(log)]) == 0

    def test_cli_root_span_reaches_log(self, tmp_path, capsys):
        log = str(tmp_path / "spans.jsonl")
        assert main(["scenarios", "--filter", "star-hub-8",
                     "--trace-sample", "1.0", "--trace-log", log]) == 0
        names = [s["name"] for s in load_span_log(log)]
        assert "cli.scenarios" in names


# ---------------------------------------------------------------------------
# concurrency: threads into the ring during a scrape, processes into the log


class TestConcurrency:
    N_THREADS = 8
    SPANS_PER_THREAD = 60

    def test_threaded_recording_survives_concurrent_scrape(self):
        from repro.obs import REGISTRY
        TRACER.configure(sample_rate=1.0,
                         capacity=self.N_THREADS * self.SPANS_PER_THREAD + 8)
        errors = []
        start = threading.Barrier(self.N_THREADS + 1)

        def record(index):
            try:
                start.wait()
                context = {"trace_id": f"thread-{index}", "span_id": "root"}
                for i in range(self.SPANS_PER_THREAD):
                    with TRACER.adopt(context, f"work-{i}", thread=index):
                        pass
            except Exception as exc:   # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=record, args=(i,))
                   for i in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        start.wait()
        # Scrape the registry and read the ring while writers are running:
        # a torn read would raise or return malformed rows.
        for _ in range(50):
            text = REGISTRY.render_prometheus()
            assert text.endswith("\n")
            for span in TRACER.spans():
                assert "trace_id" in span
        for thread in threads:
            thread.join()
        assert not errors
        assert len(TRACER) == self.N_THREADS * self.SPANS_PER_THREAD
        for index in range(self.N_THREADS):
            spans = TRACER.trace(f"thread-{index}")
            assert len(spans) == self.SPANS_PER_THREAD

    N_PER_WRITER = 150

    def _spawn_writer(self, log_path, tag):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        script = (
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.obs import TRACER\n"
            f"TRACER.configure(sample_rate=1.0, log_path={log_path!r})\n"
            f"for i in range({self.N_PER_WRITER}):\n"
            f"    with TRACER.start_trace('write', writer={tag!r},\n"
            "                             payload='x' * 200):\n"
            "        pass\n")
        return subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)

    def test_two_process_span_log_appends_stay_line_atomic(self, tmp_path):
        log_path = str(tmp_path / "spans.jsonl")
        writers = [self._spawn_writer(log_path, tag)
                   for tag in ("alpha", "beta")]
        for writer in writers:
            _, err = writer.communicate(timeout=120)
            assert writer.returncode == 0, err.decode()
        # Every span of both writers survived, parseable, no torn lines.
        with open(log_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2 * self.N_PER_WRITER
        spans = [json.loads(line) for line in lines]
        for tag in ("alpha", "beta"):
            mine = [s for s in spans if s["attrs"]["writer"] == tag]
            assert len(mine) == self.N_PER_WRITER
            assert all(s["attrs"]["payload"] == "x" * 200 for s in mine)


# ---------------------------------------------------------------------------
# span-log rotation (size cap, cross-process safety)


class TestSpanLogRotation:
    def test_rotate_if_needed_caps_and_keeps_one_generation(self, tmp_path):
        from repro.ioutils import rotate_if_needed

        path = str(tmp_path / "log.jsonl")
        assert rotate_if_needed(path, 100) is False          # missing file
        with open(path, "w") as handle:
            handle.write("x" * 50)
        assert rotate_if_needed(path, 100) is False          # under the cap
        assert rotate_if_needed(path, 0) is False            # cap disabled
        with open(path, "a") as handle:
            handle.write("y" * 60)
        assert rotate_if_needed(path, 100) is True
        assert not os.path.exists(path)                      # moved aside
        with open(path + ".1") as handle:
            assert handle.read() == "x" * 50 + "y" * 60
        # The next call sees no file again — no cascade of renames.
        assert rotate_if_needed(path, 100) is False

    def test_tracer_rotates_span_log_without_losing_records(self, tmp_path):
        log = str(tmp_path / "spans.jsonl")
        # ~19 KB of ~310-byte lines against a 12 KB cap: exactly one
        # rotation (a second one would overwrite .1 and lose records).
        TRACER.configure(sample_rate=1.0, log_path=log, log_max_bytes=12_000)
        total = 60
        for index in range(total):
            with TRACER.start_trace("rotated", index=index,
                                    payload="x" * 120):
                pass
        assert os.path.exists(log + ".1"), "the cap never triggered"
        spans = load_span_log(log + ".1") + load_span_log(log)
        assert len(spans) == total
        assert sorted(s["attrs"]["index"] for s in spans) == list(
            range(total))

    N_PER_WRITER = 120
    #: 240 records of ~400 bytes ≈ 96 KB — between one and two caps, so
    #: the log rotates exactly once while both writers are racing.
    ROTATE_AT = 64_000

    def _spawn_rotating_writer(self, log_path, tag):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        script = (
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.obs import TRACER\n"
            f"TRACER.configure(sample_rate=1.0, log_path={log_path!r},\n"
            f"                 log_max_bytes={self.ROTATE_AT})\n"
            f"for i in range({self.N_PER_WRITER}):\n"
            f"    with TRACER.start_trace('write', writer={tag!r},\n"
            "                             payload='x' * 200):\n"
            "        pass\n")
        return subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)

    def test_two_process_rotation_loses_no_records(self, tmp_path):
        """Two processes appending across a rotation: every record survives,
        whole, in either the log or its ``.1`` sibling.

        An unserialised rotation would let the race's loser rename the
        fresh, near-empty log over the just-written ``.1`` and silently
        discard it; the flock in ``rotate_if_needed`` makes the loser
        re-check and stand down.  Sized for exactly one rotation: total
        bytes land between one and two caps.
        """
        log_path = str(tmp_path / "spans.jsonl")
        writers = [self._spawn_rotating_writer(log_path, tag)
                   for tag in ("alpha", "beta")]
        for writer in writers:
            _, err = writer.communicate(timeout=120)
            assert writer.returncode == 0, err.decode()
        assert os.path.exists(log_path + ".1"), "the cap never triggered"
        spans = load_span_log(log_path + ".1") + load_span_log(log_path)
        assert len(spans) == 2 * self.N_PER_WRITER
        for tag in ("alpha", "beta"):
            mine = [s for s in spans if s["attrs"]["writer"] == tag]
            assert len(mine) == self.N_PER_WRITER
            assert all(s["attrs"]["payload"] == "x" * 200 for s in mine)


# ---------------------------------------------------------------------------
# per-task context propagation to pool workers (fast_path + trace)


class TestTaskContext:
    def test_current_captures_ambient_state(self):
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("submitter") as root:
            context = TaskContext.current()
        assert context.fast_path is True
        assert context.trace == {"trace_id": root.trace_id,
                                 "span_id": root.span_id}
        assert TaskContext.current().trace is None   # outside the trace

    def test_pool_worker_applies_shipped_context(self):
        """The propagated fast_path value — not the worker's stale global —
        governs the task, and the worker's spans come home with the trace."""
        TRACER.configure(sample_rate=1.0)
        set_fast_path(False)
        try:
            with TRACER.start_trace("submitter") as root:
                async_result = submit_scenario("ring-4", processes=1)
            record, deltas, spans, profile, runtime = \
                async_result.get(timeout=180)
        finally:
            set_fast_path(True)
        assert record.ok, record.error
        assert isinstance(deltas, dict)
        assert profile is None               # no profile_hz requested
        by_name = {s["name"]: s for s in spans}
        worker = by_name["sweep.run_scenario"]
        # Satellite pin: the submitter's fast_path=False rode along and was
        # applied, whatever state the warm worker was forked under.
        assert worker["attrs"]["fast_path"] is False
        assert worker["trace_id"] == root.trace_id
        assert worker["parent_id"] == root.span_id
        # The pipeline stages nested under it, in the worker process.
        for stage in ("pipeline.simulate", "pipeline.map", "pipeline.plan"):
            assert by_name[stage]["trace_id"] == root.trace_id
            assert by_name[stage]["duration_s"] >= 0.0
        assert fast_path_enabled() is True

    def test_pool_worker_ships_profile_when_asked(self):
        """``profile_hz`` in the task context arms the worker's sampler and
        the capture rides home on the result channel."""
        async_result = submit_scenario("wan-grid-3x2", processes=1,
                                       profile_hz=1000)
        record, _deltas, _spans, profile, _runtime = \
            async_result.get(timeout=180)
        assert record.ok, record.error
        assert isinstance(profile, dict)
        assert set(profile) == {"stacks", "samples"}
        assert profile["samples"] == sum(profile["stacks"].values())
        assert profile["samples"] > 0, "no samples from a CPU-bound run"
        assert any("repro." in joined for joined in profile["stacks"])
