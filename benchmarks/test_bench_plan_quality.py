"""CLM-QUALITY — the four deployment constraints, ENV plan vs. baselines (§2.3/§5.1).

For the ENS-Lyon platform and a synthetic constellation, evaluates the
ENV-driven plan against topology-blind baselines (single global clique,
uncoordinated all-pairs, random partition, per-/24-subnet grouping) on the
four constraints: collisions, measurement period (scalability), completeness
and intrusiveness.
"""

import pytest

from repro.analysis import render_table
from repro.core import (
    compare_plans,
    global_clique_plan,
    independent_pairs_plan,
    plan_from_view,
    random_partition_plan,
    subnet_plan,
)
from repro.env import map_platform
from repro.netsim import SyntheticSpec, generate_constellation


def _all_plans(platform, env_plan):
    hosts = sorted(env_plan.hosts)
    return {
        "env (paper)": env_plan,
        "global clique": global_clique_plan(platform, hosts),
        "all pairs": independent_pairs_plan(platform, hosts),
        "random partition": random_partition_plan(platform, hosts, clique_size=4),
        "subnet /24": subnet_plan(platform, hosts),
    }


def test_bench_plan_quality_ens_lyon(benchmark, ens_lyon, merged_view):
    env_plan = plan_from_view(merged_view)
    plans = _all_plans(ens_lyon, env_plan)
    reports = benchmark.pedantic(compare_plans, args=(plans, ens_lyon),
                                 rounds=1, iterations=1)
    rows = [r.as_row() for r in reports]
    print("\n[CLM-QUALITY] deployment quality on ENS-Lyon (lower period / "
          "intrusiveness is better, completeness 1.0 required)")
    print(render_table(rows))

    by_name = {r.planner: r for r in reports}
    env = by_name["env (paper)"]
    # constraint 1: no harmful collisions (unlike all-pairs / random)
    assert env.harmful_collisions == 0
    assert by_name["all pairs"].harmful_collisions > 0
    # constraint 2: much better worst-case period than the global clique
    assert env.worst_period_s < by_name["global clique"].worst_period_s / 3
    # constraint 3: complete, unlike the topology-blind partitions
    assert env.completeness == pytest.approx(1.0)
    assert by_name["random partition"].completeness < 1.0
    assert by_name["subnet /24"].completeness < 1.0
    # constraint 4: fewer measured pairs than any complete baseline
    assert env.measured_pairs < by_name["global clique"].measured_pairs
    assert env.measured_pairs < by_name["all pairs"].measured_pairs


def test_bench_plan_quality_synthetic(benchmark):
    platform = generate_constellation(SyntheticSpec(
        sites=3, seed=23, hosts_per_cluster=(3, 5), clusters_per_site=(2, 2)))
    master = platform.host_names()[0]
    view = map_platform(platform, master)
    env_plan = plan_from_view(view)
    plans = _all_plans(platform, env_plan)
    reports = benchmark.pedantic(compare_plans, args=(plans, platform),
                                 rounds=1, iterations=1)
    rows = [r.as_row() for r in reports]
    print(f"\n[CLM-QUALITY] deployment quality on a synthetic constellation "
          f"({len(platform.host_names())} hosts, 3 sites)")
    print(render_table(rows))

    by_name = {r.planner: r for r in reports}
    env = by_name["env (paper)"]
    assert env.completeness == pytest.approx(1.0)
    assert env.harmful_collisions <= by_name["all pairs"].harmful_collisions
    assert env.worst_period_s < by_name["global clique"].worst_period_s
    assert env.intrusiveness <= by_name["global clique"].intrusiveness
