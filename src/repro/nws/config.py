"""NWS runtime configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NWSConfig"]


@dataclass(frozen=True)
class NWSConfig:
    """Tunable parameters of the simulated Network Weather Service.

    Defaults follow the behaviours described in the paper and the NWS
    literature: 64 KiB bandwidth probes, 4-byte latency probes, periodic
    measurements even without client requests, token-ring cliques with a
    dead-man timeout regenerating lost tokens.
    """

    #: Bytes sent by one bandwidth experiment (paper §2.2).
    bandwidth_probe_bytes: int = 64 * 1024
    #: Bytes of the latency round-trip probe (paper §2.2).
    latency_probe_bytes: int = 4
    #: Pause a token holder waits after finishing its experiments before
    #: passing the token on (keeps the probe traffic bounded).
    token_hold_gap_s: float = 1.0
    #: Delay after which a clique member regenerates a token presumed lost.
    token_timeout_s: float = 120.0
    #: Maximum number of stored measurements per series (ring buffer).
    memory_capacity: int = 512
    #: Sliding window length used by the windowed forecasters.
    forecast_window: int = 10
    #: Smoothing factor of the adaptive exponential forecaster.
    exponential_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.bandwidth_probe_bytes <= 0 or self.latency_probe_bytes <= 0:
            raise ValueError("probe sizes must be positive")
        if self.token_hold_gap_s < 0 or self.token_timeout_s <= 0:
            raise ValueError("invalid token timing parameters")
        if self.memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if self.forecast_window < 1:
            raise ValueError("forecast_window must be >= 1")
        if not 0 < self.exponential_alpha <= 1:
            raise ValueError("exponential_alpha must be in (0, 1]")
