# Developer entry points.  `make verify` is the PR gate: the tier-1 test
# suite plus a smoke sweep exercising the parallel scenario-sweep path.

PYTHON  ?= python
PYTEST   = PYTHONPATH=src $(PYTHON) -m pytest
REPRO    = PYTHONPATH=src $(PYTHON) -m repro.cli

.PHONY: verify tier1 smoke-sweep smoke-sweep-fresh sweep bench bench-smoke \
	bench-check clean

verify: tier1 smoke-sweep

tier1:
	$(PYTEST) -x -q

# Four small scenarios (tagged "smoke"), sharded over two workers.  Cached
# results may be served (safe: keys embed a hash of every source file), so
# repeated verifies on unchanged code — and CI's restored .sweep-cache —
# skip the redundant pipeline work.  `make smoke-sweep-fresh` forces re-runs.
smoke-sweep:
	$(REPRO) sweep --jobs 2 --filter smoke --cache-dir .sweep-cache

smoke-sweep-fresh:
	$(REPRO) sweep --jobs 2 --filter smoke --cache-dir .sweep-cache --rerun

# The full catalog; cached results are reused (use --rerun to force).
sweep:
	$(REPRO) sweep --jobs 4 --cache-dir .sweep-cache

# Full benchmark suite.  Every benchmark run writes a machine-readable perf
# trajectory (per-benchmark wall time + hot-path work counters) to
# BENCH_results.json — see benchmarks/conftest.py.
bench:
	$(PYTEST) benchmarks/ -q -s

# The fast subset CI runs on every push: the end-to-end fast-path benchmark
# (speedup + whole-catalog equivalence).  Also writes BENCH_results.json.
bench-smoke:
	$(PYTEST) benchmarks/test_bench_fastpath.py -q -s

# Gate against the committed perf baseline (>25% regression fails).
bench-check: bench-smoke
	$(PYTHON) benchmarks/check_bench_regression.py

clean:
	rm -rf .sweep-cache .pytest_cache .benchmarks BENCH_results.json
