"""PROFILE — the sampling profiler's overhead gate on the fast-path benchmark.

The profiler (:mod:`repro.obs.profile`) promises the same deal the tracer
made: *near-free when disarmed* and cheap when armed.  An armed SIGPROF
sampler at the default 100 Hz interrupts the interpreter ~100×/s of CPU
time, so its tax is bounded but real; a disarmed ``PROFILER.maybe(False)``
must reduce to returning a shared null object.  Two properties are
asserted on the same largest-WAN-grid scenario the FASTPATH and OBS
benchmarks gate:

* armed at **100 Hz**, the end-to-end pipeline slows down by less than
  **10%** against the unprofiled run — and the captured stacks are real
  (non-empty, containing a pipeline/mapper frame);
* **disarmed**, one ``PROFILER.maybe(False)`` entry/exit costs well under
  a microsecond, so per-job arming checks are free for unprofiled jobs.
"""

from __future__ import annotations

import time

from repro.obs.profile import PROFILER
from repro.pipeline import run_pipeline
from repro.scenarios import get_scenario

from test_bench_fastpath import LARGEST_WAN_GRID

MAX_PROFILED_OVERHEAD_PCT = 10.0
#: Near-free: a disarmed maybe() returns a shared null profile object.
MAX_DISARMED_NS = 2_000
PROFILE_HZ = 100
ROUNDS = 7


def _one_round(scenario, profiled: bool):
    """(wall seconds, collapsed stacks) of one run on a fresh platform."""
    platform = scenario.build()
    start = time.perf_counter()
    with PROFILER.maybe(profiled, hz=PROFILE_HZ) as capture:
        run_pipeline(platform)
    return time.perf_counter() - start, capture.stacks


def test_bench_profiling_overhead_at_100hz():
    scenario = get_scenario(LARGEST_WAN_GRID)
    PROFILER.reset()
    # Interleave the two modes so machine-load drift across the
    # measurement hits both equally, and compare the best rounds.
    plain_s = profiled_s = float("inf")
    stacks = {}
    _one_round(scenario, profiled=False)            # warm-up, untimed
    for _ in range(ROUNDS):
        round_plain, _ = _one_round(scenario, profiled=False)
        plain_s = min(plain_s, round_plain)
        round_profiled, round_stacks = _one_round(scenario, profiled=True)
        profiled_s = min(profiled_s, round_profiled)
        stacks.update(round_stacks)
    overhead_pct = (profiled_s / plain_s - 1.0) * 100.0
    samples = sum(stacks.values())
    print(f"\n[PROFILE] {scenario.name}: plain {plain_s:.3f}s, "
          f"profiled@{PROFILE_HZ}Hz {profiled_s:.3f}s -> "
          f"{overhead_pct:+.2f}% ({samples} samples, "
          f"{len(stacks)} distinct stacks, {PROFILER.mode} backend)")
    assert overhead_pct < MAX_PROFILED_OVERHEAD_PCT, (
        f"sampling at {PROFILE_HZ} Hz costs {overhead_pct:.2f}% on "
        f"{scenario.name} (budget: {MAX_PROFILED_OVERHEAD_PCT}%)")
    # The profile is real: samples were taken and they caught the pipeline.
    assert samples > 0
    assert any("repro.pipeline" in frame or "repro.env" in frame
               for stack in stacks for frame in stack), (
        "no pipeline/mapper frame in any sampled stack")


def test_bench_disarmed_profiler_is_near_free():
    PROFILER.reset()
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with PROFILER.maybe(False):
            pass
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    print(f"\n[PROFILE] disarmed maybe(): {per_call_ns:.0f} ns/call "
          f"({calls} calls)")
    assert PROFILER.samples() == 0       # nothing sampled
    assert not PROFILER.armed
    assert per_call_ns < MAX_DISARMED_NS, (
        f"a disarmed maybe() costs {per_call_ns:.0f} ns "
        f"(budget: {MAX_DISARMED_NS} ns)")
