"""Noqa fixture: every violation here carries an inline suppression."""
import time


def stamp():
    return time.time()               # repro: noqa[RC001]


def save(path, text):
    with open(path, "w") as handle:  # repro: noqa
        handle.write(text)


def wrong_rule(path, text):
    # A noqa for a different rule must NOT suppress RC003:
    with open(path, "a") as handle:  # repro: noqa[RC001]
        handle.write(text)
