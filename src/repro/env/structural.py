"""ENV phase 2: the structural topology (paper §4.2.1.3, Figure 2).

Every mapped host runs a traceroute towards a well-known destination outside
the network being mapped; the portion of each path *inside* the mapped
network is used to build a tree whose internal nodes are the observed router
hops and whose leaves are the hosts.  Hosts using the same route out of the
network end up clustered on the same branch — these clusters are the input
of the master-dependent bandwidth experiments.

Practical details reproduced from §4.3:

* anonymous hops (routers that drop traceroute probes) are kept as
  placeholder nodes so that hosts behind them still cluster together;
* hops whose address matches a mapped host (a dual-homed gateway machine)
  mark that host as the *gateway* of the subtree below it;
* when a host cannot reach the external destination at all (firewall), the
  mapping falls back to tracerouting towards the master, which yields a
  consistent master-centric structural view of the reachable side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.traceroute import ANONYMOUS_HOP
from .envtree import ENVNetwork, KIND_STRUCTURAL
from .probes import ProbeDriver

__all__ = ["StructuralNode", "build_structural_tree", "structural_to_envtree"]


@dataclass
class StructuralNode:
    """One node of the structural tree (a router hop, or the root)."""

    label: str
    machines: List[str] = field(default_factory=list)
    children: Dict[str, "StructuralNode"] = field(default_factory=dict)
    #: Name of the mapped host this hop corresponds to, when it is one
    #: (a dual-homed gateway machine), else ``None``.
    gateway_host: Optional[str] = None

    def child(self, label: str) -> "StructuralNode":
        node = self.children.get(label)
        if node is None:
            node = StructuralNode(label=label)
            self.children[label] = node
        return node

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()

    def leaf_groups(self) -> List[Tuple["StructuralNode", List[str]]]:
        """All (node, direct machine list) pairs with at least one machine."""
        return [(node, list(node.machines)) for node in self.walk() if node.machines]

    def all_machines(self) -> List[str]:
        out: List[str] = []
        for node in self.walk():
            out.extend(node.machines)
        return out


def _path_inside_network(driver: ProbeDriver, host: str,
                         destination: Optional[str],
                         mapped_ips: Dict[str, str]) -> Optional[List[Tuple[str, Optional[str]]]]:
    """The hop labels of ``host``'s way out, innermost hop last.

    Returns ``None`` when the destination is unreachable.  Each element is a
    ``(label, gateway_host)`` pair where ``gateway_host`` is set when the hop
    address belongs to a mapped machine.
    """
    result = driver.run_traceroute(host, destination)
    if not result.reached:
        return None
    hops: List[Tuple[str, Optional[str]]] = []
    anon_counter = 0
    for hop in result.hops:
        label = hop.address
        if label == ANONYMOUS_HOP:
            # Keep anonymous hops distinguishable per position so different
            # silent routers do not collapse into one.
            anon_counter += 1
            label = f"*{anon_counter}"
        gateway = mapped_ips.get(hop.address)
        # Skip the hop that is the destination host itself (when tracerouting
        # towards the master): it is not part of this host's way out.
        if destination is not None and gateway == destination:
            continue
        hops.append((label, gateway))
    return hops


def build_structural_tree(driver: ProbeDriver, hosts: Sequence[str], master: str,
                          external_destination: Optional[str] = None
                          ) -> StructuralNode:
    """Build the structural tree for ``hosts`` as seen from ``master``.

    ``external_destination`` defaults to the platform's external node; if any
    host cannot reach it, the whole phase falls back to using the master as
    the traceroute target so the view stays consistent.
    """
    mapped_ips: Dict[str, str] = {}
    for host in hosts:
        ip = driver.host_ip(host)
        if ip is not None:
            mapped_ips[ip] = host

    destination = external_destination
    paths: Dict[str, Optional[List[Tuple[str, Optional[str]]]]] = {}
    for host in hosts:
        paths[host] = _path_inside_network(driver, host, destination, mapped_ips)

    if any(path is None for path in paths.values()):
        # Firewalled hosts cannot see the outside world: fall back to a
        # master-centric structural view (documented substitution, §4.3).
        paths = {
            host: _path_inside_network(driver, host, master, mapped_ips)
            for host in hosts
        }
        # The master itself trivially reaches itself with an empty path.
        paths[master] = []

    root = StructuralNode(label="root")
    for host in sorted(hosts):
        path = paths.get(host)
        if path is None:
            # Still unreachable: keep the host attached to the root so it is
            # not silently dropped from the mapping.
            root.machines.append(host)
            continue
        # The path lists hops from the host outwards; the tree is built from
        # the outside in (Figure 2 has the exit router at the root).
        node = root
        for label, gateway in reversed(path):
            node = node.child(label)
            if gateway is not None:
                node.gateway_host = gateway
        node.machines.append(host)
    return _collapse_root(root)


def _collapse_root(root: StructuralNode) -> StructuralNode:
    """Drop empty chain-of-one root levels (cosmetic, mirrors Figure 2)."""
    node = root
    while not node.machines and len(node.children) == 1:
        only_child = next(iter(node.children.values()))
        node = only_child
    return node


def structural_to_envtree(node: StructuralNode) -> ENVNetwork:
    """Convert a structural tree into an (unclassified) ENV network tree."""
    net = ENVNetwork(label=node.label, kind=KIND_STRUCTURAL,
                     hosts=list(node.machines), gateway=node.gateway_host)
    net.children = [structural_to_envtree(child)
                    for child in node.children.values()]
    return net
