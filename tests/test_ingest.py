"""Tests of repro.ingest: parsers, sampling, platform building, the GridML
bridge, imported-scenario registration/hashing and the import manifest."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.dynamics import run_replay
from repro.gridml import from_xml, read_gridml, to_xml, write_gridml
from repro.ingest import (
    SampleSpec,
    TopologyGraph,
    TopologyParseError,
    degree_tiers,
    detect_format,
    file_digest,
    gridml_from_platform,
    import_platform,
    imported_name,
    load_manifest,
    load_topology,
    parse_aslinks,
    parse_brite,
    parse_edge_list,
    parse_graphml,
    platform_from_gridml,
    platform_from_graph,
    record_import,
    register_imported,
    register_imported_dynamic,
    sample_subgraph,
)
from repro.pipeline import run_pipeline
from repro.scenarios import list_scenarios, registry_snapshot, restore_registry
from repro.sweep import run_sweep

FIXTURE_ASLINKS = os.path.join(os.path.dirname(__file__), "data",
                               "sample-aslinks.txt")
FIXTURE_GRAPHML = os.path.join(os.path.dirname(__file__), "data",
                               "campus.graphml")
FIXTURE_BRITE = os.path.join(os.path.dirname(__file__), "data",
                             "sample.brite")


class TestParsers:
    def test_edge_list_canonicalises(self):
        graph = parse_edge_list("a b\nb a  # duplicate reversed\nb c\nc c\n")
        assert graph.nodes == ("a", "b", "c")
        assert graph.edges == (("a", "b"), ("b", "c"))

    def test_edge_list_commas_and_comments(self):
        graph = parse_edge_list("# header\nx,y\n\ny,z\n")
        assert graph.edges == (("x", "y"), ("y", "z"))

    def test_uppercase_node_names_still_detect_as_edges(self, tmp_path):
        # "A B" is a legitimate edge, not CAIDA metadata ("T 1438387200").
        path = tmp_path / "caps.txt"
        path.write_text("A B\nB C\nC A\n")
        assert detect_format(str(path)) == "edges"

    def test_edge_list_rejects_single_token_line(self):
        with pytest.raises(TopologyParseError, match="two node names"):
            parse_edge_list("lonely\n")

    def test_aslinks_direct_indirect_and_multiorigin(self):
        graph = parse_aslinks("D 1 2 mon1\nI 2 3\nD 701_7018 2 x\nM 9 9\n")
        assert graph.nodes == ("as1", "as2", "as3", "as701")
        assert ("as2", "as701") in graph.edges

    def test_aslinks_rejects_non_numeric(self):
        with pytest.raises(TopologyParseError, match="non-numeric"):
            parse_aslinks("D foo bar\n")

    def test_graphml_namespace_agnostic(self):
        text = ('<graphml xmlns="http://graphml.graphdrawing.org/xmlns">'
                '<graph><node id="a"/><node id="b"/>'
                '<edge source="a" target="b"/></graph></graphml>')
        graph = parse_graphml(text)
        assert graph.edges == (("a", "b"),)

    def test_fixture_files_load(self):
        graph, digest, fmt = load_topology(FIXTURE_ASLINKS)
        assert fmt == "aslinks"
        assert len(graph.nodes) == 30 and len(graph.edges) == 38
        assert digest == file_digest(FIXTURE_ASLINKS)
        campus, _, fmt = load_topology(FIXTURE_GRAPHML)
        assert fmt == "graphml"
        assert len(campus.nodes) == 12

    def test_detect_format_skips_aslinks_metadata_prefix(self, tmp_path):
        # Real CAIDA traces open with T/M metadata lines before the first
        # D/I link line; the sniffer must scan past them.
        trace = tmp_path / "cycle.txt"
        trace.write_text("T\t1438387200\nM\t12\nN\t3\nD 1 2 mon\nI 2 3\n")
        assert detect_format(str(trace)) == "aslinks"
        graph, _, fmt = load_topology(str(trace))
        assert fmt == "aslinks"
        assert graph.nodes == ("as1", "as2", "as3")
        # A metadata-only prefix must not be mistaken for an edge list.
        headers = tmp_path / "headers.txt"
        headers.write_text("T\t1438387200\nM\t12\nN\t3\n")
        with pytest.raises(TopologyParseError, match="ambiguous"):
            detect_format(str(headers))

    def test_detect_format(self, tmp_path):
        assert detect_format(FIXTURE_ASLINKS) == "aslinks"
        assert detect_format(FIXTURE_GRAPHML) == "graphml"
        edges = tmp_path / "plain.txt"
        edges.write_text("a b\n")
        assert detect_format(str(edges)) == "edges"
        gridml = tmp_path / "doc.xml"
        gridml.write_text('<?xml version="1.0"?>\n<GRID></GRID>\n')
        assert detect_format(str(gridml)) == "gridml"
        # An XML declaration plus attributes on GRID must not look like
        # GraphML.
        attributed = tmp_path / "doc2.xml"
        attributed.write_text('<?xml version="1.0"?>\n'
                              '<GRID version="1"></GRID>\n')
        assert detect_format(str(attributed)) == "gridml"
        # ...even behind a long license-comment header.
        commented = tmp_path / "doc3.xml"
        commented.write_text('<?xml version="1.0"?>\n<!-- '
                             + ("license " * 100) + '-->\n<GRID></GRID>\n')
        assert detect_format(str(commented)) == "gridml"

    def test_gridml_refused_by_load_topology(self, tmp_path):
        path = tmp_path / "doc.gridml"
        path.write_text("<GRID></GRID>")
        with pytest.raises(ValueError, match="platform_from_gridml"):
            load_topology(str(path))

    def test_brite_nodes_and_edges_sections(self):
        text = ("Topology: ( 3 Nodes, 2 Edges )\n"
                "Model (1 - RTWaxman):  3 100 100 1 2 0.15 0.2 1 1 10.0\n"
                "\n"
                "Nodes: ( 3 )\n"
                "0\t12.0\t80.0\t2\t2\t-1\tRT_NODE\n"
                "1\t44.0\t15.0\t1\t1\t-1\tRT_NODE\n"
                "2\t90.0\t62.0\t1\t1\t-1\tRT_NODE\n"
                "\n"
                "Edges: ( 2 )\n"
                "0\t0\t1\t33.0\t0.11\t512.0\t-1\t-1\tE_RT\tU\n"
                "1\t0\t2\t81.0\t0.27\t155.0\t-1\t-1\tE_RT\tU\n")
        graph = parse_brite(text)
        assert graph.nodes == ("n0", "n1", "n2")
        assert graph.edges == (("n0", "n1"), ("n0", "n2"))

    def test_brite_rejects_malformed_sections(self):
        with pytest.raises(TopologyParseError, match="Nodes:/Edges:"):
            parse_brite("a b\nb c\n")
        with pytest.raises(TopologyParseError, match="no edges"):
            parse_brite("Nodes: ( 1 )\n0 1.0 2.0 0 0 -1 RT_NODE\n")
        with pytest.raises(TopologyParseError, match="node id"):
            parse_brite("Nodes: ( 1 )\n# 1.0\n")
        with pytest.raises(TopologyParseError, match="numeric endpoints"):
            parse_brite("Edges: ( 1 )\n0 zero one\n")

    def test_brite_fixture_loads_and_detects(self, tmp_path):
        assert detect_format(FIXTURE_BRITE) == "brite"
        graph, digest, fmt = load_topology(FIXTURE_BRITE)
        assert fmt == "brite"
        assert len(graph.nodes) == 14 and len(graph.edges) == 21
        assert digest == file_digest(FIXTURE_BRITE)
        # Content sniffing works without the extension too.
        renamed = tmp_path / "mystery.dat"
        renamed.write_text(open(FIXTURE_BRITE, encoding="utf-8").read())
        assert detect_format(str(renamed)) == "brite"

    def test_largest_component(self):
        graph = TopologyGraph.from_edges(
            "g", [("a", "b"), ("b", "c"), ("x", "y")], extra_nodes=["iso"])
        component = graph.largest_component()
        assert component.nodes == ("a", "b", "c")

    def test_largest_component_tie_prefers_smallest_member(self):
        graph = TopologyGraph.from_edges("g", [("a", "b"), ("x", "y")])
        assert graph.largest_component().nodes == ("a", "b")


class TestSampling:
    def test_sample_is_connected_and_deterministic(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        spec = SampleSpec(hosts=24, seed=11)
        sub = sample_subgraph(graph, spec)
        assert sub.largest_component().nodes == sub.nodes
        again = sample_subgraph(graph, spec)
        assert sub == again

    def test_different_seed_changes_bfs_sample(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        samples = {sample_subgraph(graph, SampleSpec(hosts=24, seed=s)).nodes
                   for s in range(6)}
        assert len(samples) > 1

    def test_degree_strategy_keeps_the_backbone(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        sub = sample_subgraph(graph, SampleSpec(hosts=24, seed=0,
                                                strategy="degree"))
        # The three core ASes are the best-connected nodes of the fixture.
        assert {"as10", "as20", "as30"} <= set(sub.nodes)

    def test_small_graph_returned_whole(self):
        graph = TopologyGraph.from_edges("tiny", [("a", "b"), ("b", "c")])
        sub = sample_subgraph(graph, SampleSpec(hosts=64, seed=0))
        assert sub.nodes == ("a", "b", "c")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="two hosts"):
            SampleSpec(hosts=1)
        with pytest.raises(ValueError, match="strategy"):
            SampleSpec(strategy="magic")
        # Negative seeds must fail at import time with a clear message, not
        # per build inside a sweep worker with numpy's opaque error.
        with pytest.raises(ValueError, match="non-negative"):
            SampleSpec(seed=-1)
        with pytest.raises(ValueError, match="non-negative"):
            register_imported(FIXTURE_ASLINKS, sizes=(8,), seed=-1)


class TestPlatformBuild:
    def test_platform_meets_host_target_and_validates(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        for hosts in (8, 16, 32):
            platform = import_platform(graph, SampleSpec(hosts=hosts, seed=3))
            assert len(platform.hosts()) == hosts
            assert platform.validate() == []
            assert platform.ground_truth

    def test_build_is_deterministic(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        spec = SampleSpec(hosts=16, seed=5)
        a, b = import_platform(graph, spec), import_platform(graph, spec)
        assert sorted(a.nodes) == sorted(b.nodes)
        assert {(l.a, l.b, l.bandwidth_mbps, l.latency_s)
                for l in a.links.values()} == \
            {(l.a, l.b, l.bandwidth_mbps, l.latency_s)
             for l in b.links.values()}

    def test_tier_annotation_orders_bandwidth(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        sub = sample_subgraph(graph, SampleSpec(hosts=48, seed=1))
        tiers = degree_tiers(sub)
        assert set(tiers.values()) == {"core", "transit", "stub"}
        platform = platform_from_graph(sub, SampleSpec(hosts=48, seed=1))
        routers = {n for n in sub.nodes}
        core_bw = [l.bandwidth_mbps for l in platform.links.values()
                   if l.a in routers and l.b in routers
                   and tiers[l.a] == tiers[l.b] == "core"]
        stub_bw = [l.bandwidth_mbps for l in platform.links.values()
                   if l.a in routers and l.b in routers
                   and "stub" in (tiers[l.a], tiers[l.b])]
        if core_bw and stub_bw:
            assert min(core_bw) > max(stub_bw)

    def test_graph_node_named_like_generated_host_builds(self):
        # A source node spelled like a generated host name must not crash
        # the host-attachment loop.
        graph = TopologyGraph.from_edges(
            "trap", [("z", "a"), ("z", "ah0n0"), ("z", "b"), ("z", "c"),
                     ("b", "c")])
        platform = platform_from_graph(graph, SampleSpec(hosts=4))
        assert platform.validate() == []
        assert len(platform.hosts()) == 4

    def test_sanitised_node_names_never_collide(self):
        # Sanitisation can map distinct ids onto each other and onto
        # suffixed forms ('a@' → 'a', 'a!2' → 'a-2'); all must survive.
        graph = TopologyGraph.from_edges(
            "weird", [("a", "a@"), ("a@", "a!2"), ("a!2", "a")])
        platform = platform_from_graph(graph, SampleSpec(hosts=4))
        assert platform.validate() == []

    def test_subnet_plan_boundary(self):
        # 255 hosts with one-host clusters fill exactly 254 subnets (the last
        # cluster absorbs the trailing host) — allowed; one more host is not.
        graph = TopologyGraph.from_edges("p", [("a", "b"), ("b", "c"),
                                               ("c", "d")])
        spec = SampleSpec(hosts=255, hosts_per_cluster=(1, 1))
        platform = platform_from_graph(graph, spec)
        assert len(platform.hosts()) == 255
        with pytest.raises(ValueError, match="subnet plan exhausted"):
            platform_from_graph(graph, SampleSpec(hosts=256,
                                                  hosts_per_cluster=(1, 1)))

    def test_pipeline_runs_on_imported_platform(self):
        graph, _, _ = load_topology(FIXTURE_GRAPHML)
        platform = import_platform(graph, SampleSpec(hosts=10, seed=2))
        result = run_pipeline(platform, baselines=("subnet",))
        assert result.n_hosts == 10
        assert result.env_report.completeness > 0.9


class TestGridMLBridge:
    def test_roundtrip_platform_to_document_and_back(self, tmp_path):
        """source file → Platform → write_gridml → read_gridml → same doc."""
        graph, _, _ = load_topology(FIXTURE_GRAPHML)
        platform = import_platform(graph, SampleSpec(hosts=8, seed=4))
        doc = gridml_from_platform(platform)
        path = str(tmp_path / "imported.gridml")
        write_gridml(doc, path)
        assert read_gridml(path) == doc
        assert from_xml(to_xml(doc, pretty=False)) == doc

    def test_bridged_platform_is_runnable(self):
        graph, _, _ = load_topology(FIXTURE_GRAPHML)
        platform = import_platform(graph, SampleSpec(hosts=8, seed=4))
        doc = gridml_from_platform(platform)
        bridged = platform_from_gridml(doc)
        assert bridged.validate() == []
        assert sorted(bridged.host_names()) == sorted(platform.host_names())
        result = run_pipeline(bridged, baselines=())
        assert result.n_hosts == 8

    def test_bridge_preserves_segment_kinds_and_bandwidth(self):
        graph, _, _ = load_topology(FIXTURE_ASLINKS)
        platform = import_platform(graph, SampleSpec(hosts=12, seed=9,
                                                     hub_probability=1.0))
        doc = gridml_from_platform(platform)
        assert doc.networks_of_type("ENV_Shared")
        bridged = platform_from_gridml(doc)
        for net in doc.networks_of_type("ENV_Shared"):
            segment = bridged.nodes[f"{net.label}-seg"]
            assert segment.is_hub
            assert segment.bandwidth_mbps == \
                pytest.approx(float(net.property_value("bandwidth_mbps")))

    def test_duplicate_network_labels_build_distinct_segments(self):
        # Labels are not unique identifiers in GridML: every site may declare
        # its own "lan".  Both segments must survive the bridge.
        doc = from_xml("""<GRID>
            <NETWORK type="ENV_Switched"><LABEL name="lan"/>
                <MACHINE name="h1"/><MACHINE name="h2"/></NETWORK>
            <NETWORK type="ENV_Switched"><LABEL name="lan"/>
                <MACHINE name="h3"/><MACHINE name="h4"/></NETWORK>
        </GRID>""")
        platform = platform_from_gridml(doc)
        assert platform.validate() == []
        assert sorted(platform.host_names()) == ["h1", "h2", "h3", "h4"]
        segments = [n for n in platform.nodes if n.startswith("lan-seg")]
        assert len(segments) == 2

    def test_repeated_machine_reference_in_one_network(self):
        doc = from_xml('<GRID><NETWORK type="ENV_Switched">'
                       '<LABEL name="lan"/><MACHINE name="m1"/>'
                       '<MACHINE name="m1"/><MACHINE name="m2"/>'
                       '</NETWORK></GRID>')
        platform = platform_from_gridml(doc)
        assert sorted(platform.host_names()) == ["m1", "m2"]

    def test_site_only_document_builds(self):
        doc = from_xml("""<GRID><SITE domain="lab.example.org">
            <MACHINE><LABEL ip="10.1.1.1" name="m1"/></MACHINE>
            <MACHINE><LABEL ip="10.1.1.2" name="m2"/></MACHINE>
        </SITE></GRID>""")
        platform = platform_from_gridml(doc)
        assert sorted(platform.host_names()) == ["m1", "m2"]
        assert platform.validate() == []

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError, match="no machines"):
            platform_from_gridml(from_xml("<GRID></GRID>"))

    def test_many_networks_within_address_plan(self):
        # Routers and segments draw from separate address spaces, so ~130
        # machine-bearing networks (each consuming one of both) must build.
        networks = "".join(
            f'<NETWORK type="ENV_Switched"><LABEL name="n{i}"/>'
            f'<MACHINE name="m{i}a"/><MACHINE name="m{i}b"/></NETWORK>'
            for i in range(130))
        platform = platform_from_gridml(from_xml(f"<GRID>{networks}</GRID>"))
        assert len(platform.hosts()) == 260
        assert platform.validate() == []


class TestImportedScenarios:
    def test_registers_one_scenario_per_size(self):
        scenarios = register_imported(FIXTURE_ASLINKS, sizes=(8, 10, 12),
                                      seed=7)
        assert [s.name for s in scenarios] == [
            imported_name(FIXTURE_ASLINKS, h) for h in (8, 10, 12)]
        assert all(s.family == "imported" for s in scenarios)
        assert all("imported" in s.tags for s in scenarios)
        listed = list_scenarios(family="imported")
        assert {s.name for s in scenarios} <= {s.name for s in listed}

    def test_hash_covers_digest_and_knobs(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("a b\nb c\nc d\nd a\n")
        first = register_imported(str(path), sizes=(8,), seed=1)[0]
        assert first.param_dict["digest"] == file_digest(str(path))
        # Same content elsewhere under another name: different scenario,
        # same digest parameter.
        other = tmp_path / "b.txt"
        other.write_text("a b\nb c\nc d\nd a\n")
        second = register_imported(str(other), sizes=(8,), seed=1)[0]
        assert second.param_dict["digest"] == first.param_dict["digest"]
        # Changed content: changed digest, changed hash.
        changed = tmp_path / "c.txt"
        changed.write_text("a b\nb c\nc d\nd a\nd e\n")
        third = register_imported(str(changed), sizes=(8,), seed=1)[0]
        assert third.param_dict["digest"] != first.param_dict["digest"]
        assert third.content_hash != first.content_hash

    def test_hash_stable_across_processes(self):
        scenario = register_imported(FIXTURE_ASLINKS, sizes=(12,), seed=7)[0]
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.ingest import register_imported\n"
            f"s = register_imported({FIXTURE_ASLINKS!r}, sizes=(12,), "
            "seed=7)[0]\n"
            "print(s.content_hash)\n")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True,
                             cwd=os.path.dirname(os.path.dirname(
                                 os.path.abspath(__file__))))
        assert out.stdout.strip() == scenario.content_hash

    def test_path_spelling_variants_reuse_first_registration(self):
        first = register_imported(FIXTURE_ASLINKS, sizes=(12,), seed=7)[0]
        # ``./``-style variants collapse via normpath to the same params —
        # a plain idempotent re-registration.
        dotted = os.path.join(os.path.dirname(FIXTURE_ASLINKS), ".",
                              os.path.basename(FIXTURE_ASLINKS))
        assert register_imported(dotted, sizes=(12,), seed=7)[0] == first
        # A relative spelling of the same bytes differs in the path param
        # only; the digest-equivalence tolerance keeps the first
        # registration (and therefore its content hash and cache entries).
        relative = os.path.relpath(FIXTURE_ASLINKS)
        assert relative != FIXTURE_ASLINKS
        again = register_imported(relative, sizes=(12,), seed=7)[0]
        assert again.param_dict["path"] == FIXTURE_ASLINKS
        assert again.content_hash == first.content_hash

    def test_same_basename_collision_raises_with_name_escape(self, tmp_path):
        # Two *different* files sharing a basename cannot silently coexist
        # under one scenario name; --name/-style stems disambiguate.
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        (tmp_path / "a" / "topo.txt").write_text("a b\nb c\nc a\n")
        (tmp_path / "b" / "topo.txt").write_text("x y\ny z\nz x\nx z\n")
        register_imported(str(tmp_path / "a" / "topo.txt"), sizes=(4,))
        with pytest.raises(ValueError, match="distinct stem"):
            register_imported(str(tmp_path / "b" / "topo.txt"), sizes=(4,))
        named = register_imported(str(tmp_path / "b" / "topo.txt"),
                                  sizes=(4,), name="topo-b")
        assert named[0].name == "imported-topo-b-h4"
        # User-supplied stems are sanitised — separators must not reach the
        # scenario name (it feeds cache-file paths).
        weird = register_imported(str(tmp_path / "b" / "topo.txt"),
                                  sizes=(4,), name="a/b c")
        assert weird[0].name == "imported-a-b-c-h4"

    def test_changed_file_reimported_under_new_spelling_refreshes(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "t.txt").write_text("a b\nb c\nc a\n")
        register_imported("t.txt", sizes=(4,))
        (tmp_path / "t.txt").write_text("a b\nb c\nc a\nc d\n")
        refreshed = register_imported(str(tmp_path / "t.txt"), sizes=(4,))
        assert refreshed[0].build().validate() == []

    def test_builder_refuses_changed_source(self, tmp_path):
        path = tmp_path / "churn.txt"
        path.write_text("a b\nb c\nc a\n")
        scenario = register_imported(str(path), sizes=(4,))[0]
        assert scenario.build().validate() == []
        path.write_text("a b\nb c\nc a\nc d\n")
        with pytest.raises(ValueError, match="changed since import"):
            scenario.build()

    def test_format_change_reimport_reparses_and_refreshes(self, tmp_path):
        # The parse memo must key on format too, and a format switch must
        # refresh the whole same-source family.
        path = tmp_path / "src.txt"
        path.write_text("D 1 2 x\nD 2 3 y\nD 3 1 z\n")
        as_edges = register_imported(str(path), format="edges", sizes=(4,))
        hosts_edges = sorted(as_edges[0].build().host_names())
        as_links = register_imported(str(path), format="aslinks", sizes=(4,))
        hosts_links = sorted(as_links[0].build().host_names())
        # aslinks parsing yields as<N> routers; edges parsing yields D/x/...
        assert hosts_edges != hosts_links
        assert all(h.startswith("as") for h in hosts_links)
        # The edges-format registration was replaced, not left beside it.
        family = [s for s in list_scenarios(family="imported")
                  if s.param_dict.get("path") == str(path)]
        assert [s.param_dict["format"] for s in family] == ["aslinks"]

    def test_knob_change_reimport_refreshes_whole_family(self, tmp_path):
        # Same digest, new seed, subset of sizes: the sizes NOT re-requested
        # must not linger with the old seed (a mixed-knob family).
        path = tmp_path / "t.txt"
        path.write_text("a b\nb c\nc a\n")
        register_imported(str(path), sizes=(4, 6), seed=0)
        register_imported(str(path), sizes=(4,), seed=5)
        family = {s.name: s.param_dict
                  for s in list_scenarios(family="imported")}
        assert family[imported_name(str(path), 4)]["seed"] == 5
        assert imported_name(str(path), 6) not in family
        # Identical knobs accumulate sizes instead.
        register_imported(str(path), sizes=(6,), seed=5)
        names = {s.name for s in list_scenarios(family="imported")}
        assert {imported_name(str(path), 4),
                imported_name(str(path), 6)} <= names

    def test_knob_change_reimport_drops_stale_dynamic_wrapper(self,
                                                              tmp_path):
        # Same digest, new seed: the replaced base must take its dyn-
        # wrapper (whose hash covers the old base hash) with it.
        path = tmp_path / "t.txt"
        path.write_text("a b\nb c\nc a\n")
        base = register_imported(str(path), sizes=(4,), seed=0)
        register_imported_dynamic(base, epochs=2)
        register_imported(str(path), sizes=(4,), seed=1)
        names = {s.name for s in list_scenarios()}
        assert f"dyn-{base[0].name}" not in names

    def test_reimport_of_changed_file_drops_stale_siblings(self, tmp_path):
        # Refreshing only a subset of sizes must still drop old-digest
        # siblings, or the next family sweep fails their digest check.
        path = tmp_path / "t.txt"
        path.write_text("a b\nb c\nc a\n")
        register_imported(str(path), sizes=(4, 6))
        register_imported_dynamic(
            [s for s in list_scenarios(family="imported")
             if s.param_dict.get("hosts") == 6], epochs=2)
        path.write_text("a b\nb c\nc a\nc d\n")
        refreshed = register_imported(str(path), sizes=(4,))
        names = {s.name for s in list_scenarios()}
        assert refreshed[0].name in names
        assert imported_name(str(path), 6) not in names
        assert f"dyn-{imported_name(str(path), 6)}" not in names

    def test_gridml_import_registers_single_scenario(self, tmp_path):
        graph, _, _ = load_topology(FIXTURE_GRAPHML)
        platform = import_platform(graph, SampleSpec(hosts=8, seed=4))
        path = str(tmp_path / "campus.gridml")
        write_gridml(gridml_from_platform(platform), path)
        scenarios = register_imported(path)
        assert len(scenarios) == 1
        assert scenarios[0].name == "imported-campus"
        assert len(scenarios[0].build().hosts()) == 8

    def test_gzipped_gridml_imports_and_builds(self, tmp_path):
        import gzip
        graph, _, _ = load_topology(FIXTURE_GRAPHML)
        platform = import_platform(graph, SampleSpec(hosts=8, seed=4))
        from repro.gridml import to_xml
        path = str(tmp_path / "campus.gridml.gz")
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(to_xml(gridml_from_platform(platform)))
        scenario = register_imported(path)[0]
        assert len(scenario.build().hosts()) == 8

    def test_duplicate_sizes_register_once(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("a b\nb c\nc a\n")
        scenarios = register_imported(str(path), sizes=(4, 4, 6))
        assert [s.param_dict["hosts"] for s in scenarios] == [4, 6]

    def test_sweep_cache_and_dynamic_replay_end_to_end(self, tmp_path):
        scenarios = register_imported(FIXTURE_ASLINKS, sizes=(8, 10, 12),
                                      seed=7)
        dynamic = register_imported_dynamic(scenarios[:1], epochs=3)
        names = [s.name for s in scenarios] + [d.name for d in dynamic]
        cold = run_sweep(names=names, cache_dir=str(tmp_path))
        assert cold.errors == []
        warm = run_sweep(names=names, cache_dir=str(tmp_path))
        assert warm.cache_hits == len(names)
        replay = run_replay(dynamic[0])
        assert len(replay.records) == 3


class TestManifest:
    def test_record_and_load_roundtrip(self, tmp_path):
        manifest = str(tmp_path / "imports.json")
        record_import({
            "path": FIXTURE_ASLINKS, "format": "aslinks",
            "sizes": [8, 10], "seed": 7, "strategy": "bfs", "tags": [],
            "dynamic": True, "epochs": 3,
            "digest": file_digest(FIXTURE_ASLINKS),
        }, manifest_path=manifest)
        registered = load_manifest(manifest)
        names = {s.name for s in registered}
        assert imported_name(FIXTURE_ASLINKS, 8) in names
        assert f"dyn-{imported_name(FIXTURE_ASLINKS, 8)}" in names

    def test_reimport_replaces_entry(self, tmp_path):
        manifest = str(tmp_path / "imports.json")
        entry = {"path": FIXTURE_ASLINKS, "format": "aslinks",
                 "sizes": [8], "seed": 7, "strategy": "bfs", "tags": [],
                 "dynamic": False, "epochs": 6,
                 "digest": file_digest(FIXTURE_ASLINKS)}
        record_import(dict(entry), manifest_path=manifest)
        entry["sizes"] = [10]
        record_import(dict(entry), manifest_path=manifest)
        with open(manifest, encoding="utf-8") as handle:
            data = json.load(handle)
        assert len(data["imports"]) == 1
        assert data["imports"][0]["sizes"] == [10]

    def test_path_spellings_collapse_to_one_entry(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "t.txt").write_text("a b\nb c\n")
        manifest = str(tmp_path / "imports.json")
        entry = {"format": "edges", "sizes": [4], "seed": 0,
                 "strategy": "bfs", "tags": [], "dynamic": False,
                 "epochs": 6, "digest": file_digest("t.txt")}
        record_import(dict(entry, path="t.txt"), manifest_path=manifest)
        record_import(dict(entry, path=str(tmp_path / "t.txt")),
                      manifest_path=manifest)
        with open(manifest, encoding="utf-8") as handle:
            data = json.load(handle)
        assert len(data["imports"]) == 1

    def test_missing_source_is_skipped_with_warning(self, tmp_path):
        manifest = str(tmp_path / "imports.json")
        record_import({"path": str(tmp_path / "gone.txt"),
                       "format": "edges", "sizes": [8], "seed": 0,
                       "strategy": "bfs", "tags": [], "dynamic": False,
                       "epochs": 6, "digest": "dead"},
                      manifest_path=manifest)
        with pytest.warns(UserWarning, match="skipping import entry"):
            assert load_manifest(manifest) == []

    def test_mistyped_entry_field_is_skipped_with_warning(self, tmp_path):
        # A null seed (hand edit, merge artifact) must warn-skip, not crash.
        (tmp_path / "t.txt").write_text("a b\nb c\n")
        manifest = str(tmp_path / "imports.json")
        record_import({"path": str(tmp_path / "t.txt"), "format": "edges",
                       "sizes": [4], "seed": None, "strategy": "bfs",
                       "tags": [], "dynamic": False, "epochs": 6,
                       "digest": file_digest(str(tmp_path / "t.txt"))},
                      manifest_path=manifest)
        with pytest.warns(UserWarning, match="skipping import entry"):
            assert load_manifest(manifest) == []

    def test_non_dict_entry_rejected_and_cli_survives(self, tmp_path, capsys,
                                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        with open(tmp_path / ".repro-imports.json", "w",
                  encoding="utf-8") as handle:
            json.dump({"schema": 1, "imports": ["junk"]}, handle)
        from repro.ingest import manifest_entries
        with pytest.raises(ValueError, match="not an import manifest"):
            manifest_entries(str(tmp_path / ".repro-imports.json"))
        # Any CLI command degrades to a warning, never a traceback.
        assert main(["scenarios", "--filter", "smoke"]) == 0
        assert "warning: ignoring manifest" in capsys.readouterr().err

    def test_changed_source_registers_but_fails_at_build(self, tmp_path):
        # No start-up hashing: the stale entry registers with its recorded
        # digest and the builder's digest check raises at build time.
        path = tmp_path / "t.txt"
        path.write_text("a b\nb c\n")
        manifest = str(tmp_path / "imports.json")
        record_import({"path": str(path), "format": "edges", "sizes": [4],
                       "seed": 0, "strategy": "bfs", "tags": [],
                       "dynamic": False, "epochs": 6,
                       "digest": file_digest(str(path))},
                      manifest_path=manifest)
        path.write_text("a b\nb c\nc d\n")
        registered = load_manifest(manifest)
        assert len(registered) == 1
        with pytest.raises(ValueError, match="changed since import"):
            registered[0].build()


class TestImportCLI:
    def test_import_registers_sweeps_and_persists(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.chdir(tmp_path)
        pristine = registry_snapshot()
        fixture = os.path.relpath(FIXTURE_ASLINKS, str(tmp_path))
        assert main(["import", fixture, "--sizes", "8", "10", "12",
                     "--seed", "7", "--dynamic", "--epochs", "3",
                     "--sweep", "--jobs", "2",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "registered 6 scenarios" in out
        assert "0 served from cache" in out
        assert os.path.exists(tmp_path / ".repro-imports.json")
        # A fresh CLI invocation (simulated by dropping the in-process
        # registrations) sees the manifest-recorded family.
        restore_registry(pristine)
        assert main(["scenarios", "--family", "imported"]) == 0
        out = capsys.readouterr().out
        assert "3 scenarios registered" in out
        # And the sweep cache carries across invocations.
        restore_registry(pristine)
        assert main(["sweep", "--filter", "imported", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert "6 served from cache" in capsys.readouterr().out

    def test_custom_manifest_reloaded_via_env(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        pristine = registry_snapshot()
        manifest = str(tmp_path / "my-imports.json")
        assert main(["import", FIXTURE_ASLINKS, "--sizes", "8",
                     "--seed", "7", "--manifest", manifest]) == 0
        assert "REPRO_IMPORTS" in capsys.readouterr().out
        # Without the env var the custom manifest is invisible...
        restore_registry(pristine)
        assert main(["scenarios", "--family", "imported"]) == 1
        capsys.readouterr()
        # ...with it, later invocations re-register automatically.
        monkeypatch.setenv("REPRO_IMPORTS", manifest)
        assert main(["scenarios", "--family", "imported"]) == 0
        assert "imported-sample-aslinks-h8" in capsys.readouterr().out
        # With the env var set, a later import defaults to the same manifest.
        (tmp_path / "extra.txt").write_text("a b\nb c\nc a\n")
        assert main(["import", "extra.txt", "--sizes", "4"]) == 0
        with open(manifest, encoding="utf-8") as handle:
            assert len(json.load(handle)["imports"]) == 2

    def test_import_no_save_leaves_no_manifest(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["import", FIXTURE_ASLINKS, "--sizes", "8",
                     "--no-save"]) == 0
        assert not os.path.exists(tmp_path / ".repro-imports.json")

    def test_import_rejects_missing_file(self, capsys, tmp_path):
        assert main(["import", str(tmp_path / "missing.txt")]) == 2

    def test_import_basename_collision_fails_at_import_time(self, capsys,
                                                            tmp_path,
                                                            monkeypatch):
        # A second, different file sharing a basename must fail *now* (and
        # record nothing), not succeed and be skipped on later invocations.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "d1").mkdir()
        (tmp_path / "d2").mkdir()
        (tmp_path / "d1" / "x.txt").write_text("a b\nb c\nc a\n")
        (tmp_path / "d2" / "x.txt").write_text("p q\nq r\nr p\np r\n")
        assert main(["import", "d1/x.txt", "--sizes", "4"]) == 0
        capsys.readouterr()
        assert main(["import", "d2/x.txt", "--sizes", "4"]) == 2
        assert "--name" in capsys.readouterr().err
        with open(tmp_path / ".repro-imports.json", encoding="utf-8") as fh:
            assert len(json.load(fh)["imports"]) == 1
        # The --name escape hatch works and records a second entry.
        assert main(["import", "d2/x.txt", "--sizes", "4",
                     "--name", "x-two"]) == 0
        with open(tmp_path / ".repro-imports.json", encoding="utf-8") as fh:
            assert len(json.load(fh)["imports"]) == 2

    def test_reimport_under_new_spelling_keeps_recorded_path_and_hash(
            self, capsys, tmp_path, monkeypatch):
        # A respelled path would be a different scenario parameter, so a
        # re-import must keep the recorded spelling — otherwise hashes drift
        # and the existing sweep cache is orphaned.  Simulate fresh CLI
        # processes by dropping the in-process registrations between calls.
        monkeypatch.chdir(tmp_path)
        pristine = registry_snapshot()
        (tmp_path / "t.txt").write_text("a b\nb c\nc a\n")
        assert main(["import", "t.txt", "--sizes", "4"]) == 0
        h4 = next(s.content_hash for s in list_scenarios(family="imported")
                  if s.name == "imported-t-h4")
        restore_registry(pristine)
        assert main(["import", str(tmp_path / "t.txt"),
                     "--sizes", "4", "6"]) == 0
        with open(tmp_path / ".repro-imports.json", encoding="utf-8") as fh:
            entries = json.load(fh)["imports"]
        assert len(entries) == 1 and entries[0]["path"] == "t.txt"
        assert next(s.content_hash
                    for s in list_scenarios(family="imported")
                    if s.name == "imported-t-h4") == h4

    def test_reimport_with_new_knobs_replaces_cleanly(self, capsys, tmp_path,
                                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "t.txt").write_text("a b\nb c\nc a\n")
        assert main(["import", "t.txt", "--sizes", "4", "--seed", "1"]) == 0
        assert main(["import", "t.txt", "--sizes", "4", "--seed", "2"]) == 0
        with open(tmp_path / ".repro-imports.json", encoding="utf-8") as fh:
            entries = json.load(fh)["imports"]
        assert len(entries) == 1 and entries[0]["seed"] == 2
        # A corrected --format replaces the record too (keyed by path, not
        # by (path, format)).
        assert main(["import", "t.txt", "--sizes", "4", "--seed", "2",
                     "--format", "edges"]) == 0
        with open(tmp_path / ".repro-imports.json", encoding="utf-8") as fh:
            entries = json.load(fh)["imports"]
        assert len(entries) == 1 and entries[0]["format"] == "edges"

    def test_scenarios_family_filter_excludes_builtins(self, capsys):
        register_imported(FIXTURE_ASLINKS, sizes=(8,), seed=7)
        assert main(["scenarios", "--family", "imported"]) == 0
        out = capsys.readouterr().out
        assert "imported-sample-aslinks-h8" in out
        assert "ens-lyon" not in out


class TestBriteImport:
    def test_brite_registers_builds_and_pipelines(self):
        scenarios = register_imported(FIXTURE_BRITE, sizes=(8,), seed=3)
        assert [s.name for s in scenarios] == ["imported-sample-h8"]
        assert scenarios[0].param_dict["format"] == "brite"
        platform = scenarios[0].build()
        assert len(platform.host_names()) == 8
        result = run_pipeline(platform, baselines=())
        assert result.env_report.completeness > 0.0

    def test_brite_cli_import_detects_format(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["import", FIXTURE_BRITE, "--sizes", "8",
                     "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "imported-sample-h8" in out
        assert "brite topology sample.brite" in out


class TestConcurrentManifestWriters:
    def test_parallel_record_import_never_corrupts_manifest(self, tmp_path,
                                                            monkeypatch):
        # Two processes recording imports into the same REPRO_IMPORTS-
        # relocated manifest concurrently: the atomic replace means the
        # file always parses; a racing writer can lose the other's entry
        # (last writer wins) but never produce garbage.
        manifest = str(tmp_path / "shared-imports.json")
        monkeypatch.setenv("REPRO_IMPORTS", manifest)
        sources = []
        for name in ("one", "two"):
            path = tmp_path / f"{name}.txt"
            path.write_text("a b\nb c\nc a\n")
            sources.append(str(path))
        script = (
            "import sys, json\n"
            "sys.path.insert(0, {src!r})\n"
            "from repro.ingest import record_import, file_digest\n"
            "path = sys.argv[1]\n"
            "for _ in range(25):\n"
            "    record_import({{'path': path, 'format': 'edges',\n"
            "                    'sizes': [4], 'seed': 0, 'strategy': 'bfs',\n"
            "                    'tags': [], 'dynamic': False, 'epochs': 6,\n"
            "                    'digest': file_digest(path)}},\n"
            "                  manifest_path={manifest!r})\n"
        ).format(src=os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"), manifest=manifest)
        procs = [subprocess.Popen([sys.executable, "-c", script, source],
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE)
                 for source in sources]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        with open(manifest, encoding="utf-8") as handle:
            data = json.load(handle)                 # must always parse
        paths = [entry["path"] for entry in data["imports"]]
        assert 1 <= len(paths) <= 2
        assert set(paths) <= set(sources)
        # Whatever survived loads cleanly.
        registered = load_manifest(manifest)
        assert len(registered) == len(paths)
