# Developer entry points.  `make verify` is the PR gate: the tier-1 test
# suite plus a smoke sweep exercising the parallel scenario-sweep path.

PYTHON  ?= python
PYTEST   = PYTHONPATH=src $(PYTHON) -m pytest
REPRO    = PYTHONPATH=src $(PYTHON) -m repro.cli

.PHONY: verify tier1 smoke-sweep sweep bench clean

verify: tier1 smoke-sweep

tier1:
	$(PYTEST) -x -q

# Four small scenarios (tagged "smoke"), sharded over two workers.
smoke-sweep:
	$(REPRO) sweep --jobs 2 --filter smoke --cache-dir .sweep-cache --rerun

# The full catalog; cached results are reused (use --rerun to force).
sweep:
	$(REPRO) sweep --jobs 4 --cache-dir .sweep-cache

bench:
	$(PYTEST) benchmarks/ -q -s

clean:
	rm -rf .sweep-cache .pytest_cache .benchmarks
