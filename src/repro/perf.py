"""Performance plumbing: hot-path counters and the fast-path switch.

Two small facilities shared by the whole engine:

* :data:`COUNTERS` — cheap global counters incremented by the hot loops
  (simulation events dispatched, max-min allocations solved, probe-memo and
  route-cache hits).  The benchmark harness snapshots them around every
  benchmark so ``BENCH_results.json`` records a machine-independent work
  trajectory next to wall-clock times.

* the **fast-path switch** — :func:`set_fast_path` / :func:`fast_path`
  globally disable the incremental/memoised code paths (incremental max-min
  reallocation, probe memoisation, constraint-key and steady-state caching)
  so benchmarks can measure an honest before/after on identical inputs.
  Results must be bit-identical in both modes; only the work done differs.
  The switch exists for measurement and equivalence testing — production
  code should never turn it off.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["COUNTERS", "PerfCounters", "reset_counters", "counters_snapshot",
           "fast_path_enabled", "set_fast_path", "fast_path"]

#: Guards multi-field counter transitions (snapshot, reset, ``add``): a
#: ``/metrics`` scrape concurrent with a reset must see all-before or
#: all-after, never a half-zeroed mixture.  Hot loops still use bare
#: ``COUNTERS.field += 1`` — a single attribute bump needs no cross-field
#: consistency and must stay free of locking overhead.
_COUNTER_LOCK = threading.Lock()


class PerfCounters:
    """Monotonic counters of hot-path work, reset via :func:`reset_counters`."""

    __slots__ = ("events", "allocations", "probe_memo_hits",
                 "route_cache_hits", "route_cache_misses")

    def __init__(self) -> None:
        self.events = 0            # simulation events dispatched
        self.allocations = 0       # max-min allocation solves
        self.probe_memo_hits = 0   # probe measurements answered from memo
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    def snapshot(self) -> Dict[str, int]:
        with _COUNTER_LOCK:
            return {name: getattr(self, name) for name in self.__slots__}

    def add(self, **deltas: int) -> None:
        """Bump several counters atomically (multi-threaded writers).

        Concurrent snapshots see either none or all of one call's deltas —
        the cross-field invariant the bare ``+=`` hot-path increments cannot
        give.
        """
        with _COUNTER_LOCK:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)


#: The process-wide counter instance.  The simulation hot loops increment it
#: single-threadedly with bare ``+=``; other threads (the serving layer's
#: ``/metrics``, job workers) must go through the locked
#: :meth:`PerfCounters.snapshot` / :meth:`PerfCounters.add` /
#: :func:`reset_counters`.
COUNTERS = PerfCounters()

_FAST_PATH = True


def reset_counters() -> None:
    """Zero every counter atomically (benchmark harness hook)."""
    with _COUNTER_LOCK:
        for name in PerfCounters.__slots__:
            setattr(COUNTERS, name, 0)


def counters_snapshot() -> Dict[str, int]:
    """A plain-dict copy of the current counter values (atomic)."""
    return COUNTERS.snapshot()


def fast_path_enabled() -> bool:
    """Whether the incremental/memoised hot paths are active (default)."""
    return _FAST_PATH


def set_fast_path(enabled: bool) -> None:
    """Globally enable/disable the fast paths (benchmarking hook)."""
    global _FAST_PATH
    _FAST_PATH = bool(enabled)


@contextmanager
def fast_path(enabled: bool) -> Iterator[None]:
    """Context manager scoping a :func:`set_fast_path` change."""
    previous = _FAST_PATH
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
