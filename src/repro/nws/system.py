"""The deployed (simulated) Network Weather Service.

:class:`NWSSystem` instantiates, from a :class:`~repro.core.plan.DeploymentPlan`
and a simulated platform, the whole process organisation of paper §2.1:

* one **name server** (on the plan's designated host),
* one **memory server** per clique (on the clique's first host),
* one **sensor** per monitored host,
* one token-ring **clique runner** per clique,
* one **forecaster** front-end answering client queries.

Running the system for some simulated time produces measurement series; the
query API then answers bandwidth/latency questions either from a directly
measured series, from the representative pair of a shared network, or by
aggregating measured segments along a path (the completeness mechanism of
§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..core.aggregation import Aggregator
from ..core.manager import build_host_configs
from ..core.plan import DeploymentPlan, host_pair
from ..netsim.flows import FlowModel
from ..netsim.tcp import TcpModel
from ..netsim.topology import Platform
from ..simkernel import Engine, Tracer
from .clique import CliqueRunner
from .config import NWSConfig
from .experiments import (
    METRIC_BANDWIDTH,
    METRIC_CONNECT,
    METRIC_LATENCY,
    LinkExperiment,
)
from .forecasting import Forecast, ForecasterBank
from .memory import MemoryServer, Series
from .nameserver import NameServer, Registration
from .sensor import Sensor

__all__ = ["QueryAnswer", "NWSSystem"]


@dataclass(frozen=True)
class QueryAnswer:
    """Answer to a client query about a host pair."""

    src: str
    dst: str
    metric: str
    forecast: Optional[Forecast]
    #: "direct", "representative", "aggregated" or "unavailable"
    method: str
    #: For representative answers, the measured pair whose series was used.
    source_pair: Optional[Tuple[str, str]] = None

    @property
    def available(self) -> bool:
        return self.forecast is not None


class NWSSystem:
    """A running simulated NWS deployment."""

    def __init__(self, platform: Platform, plan: DeploymentPlan,
                 engine: Optional[Engine] = None,
                 config: Optional[NWSConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.platform = platform
        self.plan = plan
        self.engine = engine if engine is not None else Engine()
        self.config = config if config is not None else NWSConfig()
        self.tracer = tracer if tracer is not None else Tracer()
        self.flow_model = FlowModel(self.engine, platform, tracer=self.tracer)
        self.tcp = TcpModel(self.flow_model)
        self.experiment = LinkExperiment(self.tcp, self.config)

        nameserver_host = plan.nameserver_host or (plan.hosts[0] if plan.hosts else "")
        self.nameserver = NameServer(host=nameserver_host)
        self.nameserver.register(Registration(name="nameserver",
                                              kind="nameserver",
                                              host=nameserver_host))
        self.sensors: Dict[str, Sensor] = {}
        self.memories: Dict[str, MemoryServer] = {}
        self.cliques: Dict[str, CliqueRunner] = {}
        self.host_configs = build_host_configs(plan)
        self._build()
        self._started = False

    # -- construction -------------------------------------------------------------
    def _build(self) -> None:
        for host in sorted(self.plan.monitored_hosts()):
            sensor = Sensor(host=host)
            for clique in self.plan.cliques_of(host):
                sensor.join_clique(clique.name)
            self.sensors[host] = sensor
            self.nameserver.register(Registration(name=f"sensor@{host}",
                                                  kind="sensor", host=host))
        for clique in self.plan.cliques:
            memory = MemoryServer(name=f"memory@{clique.name}",
                                  host=clique.hosts[0],
                                  capacity=self.config.memory_capacity)
            self.memories[clique.name] = memory
            self.nameserver.register(Registration(name=memory.name, kind="memory",
                                                  host=memory.host))
            runner = CliqueRunner(
                name=clique.name, members=list(clique.hosts), engine=self.engine,
                experiment=self.experiment, memory=memory,
                nameserver=self.nameserver, sensors=self.sensors,
                config=self.config, tracer=self.tracer, period_s=clique.period_s,
            )
            self.cliques[clique.name] = runner
        self.nameserver.register(Registration(name="forecaster", kind="forecaster",
                                              host=self.nameserver.host))

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Start every clique protocol (idempotent)."""
        if self._started:
            return
        for runner in self.cliques.values():
            runner.start()
        self._started = True

    def run(self, duration: float) -> None:
        """Run the monitoring system for ``duration`` simulated seconds."""
        self.start()
        self.engine.run(until=self.engine.now + duration)

    def stop(self) -> None:
        for runner in self.cliques.values():
            runner.stop()

    # -- failure injection -------------------------------------------------------------
    def fail_host(self, host: str) -> None:
        """Mark a host as down; cliques skip it after the token timeout."""
        if host in self.sensors:
            self.sensors[host].fail()

    def recover_host(self, host: str) -> None:
        if host in self.sensors:
            self.sensors[host].recover()

    # -- series access -------------------------------------------------------------------
    def series(self, src: str, dst: str, metric: str) -> Optional[Series]:
        """The stored series for an ordered pair, if any memory holds one."""
        memory_name = self.nameserver.memory_for_series(src, dst, metric)
        if memory_name is None:
            return None
        for memory in self.memories.values():
            if memory.name == memory_name:
                return memory.fetch(src, dst, metric)
        return None

    def _series_either_direction(self, a: str, b: str, metric: str
                                 ) -> Optional[Series]:
        return self.series(a, b, metric) or self.series(b, a, metric)

    def _forecast_series(self, series: Series) -> Optional[Forecast]:
        bank = ForecasterBank(window=self.config.forecast_window,
                              alpha=self.config.exponential_alpha)
        bank.update_many(series.values())
        return bank.forecast()

    # -- client API ----------------------------------------------------------------------
    def query(self, src: str, dst: str, metric: str = METRIC_BANDWIDTH) -> QueryAnswer:
        """Answer a client query for (src, dst, metric).

        Resolution order: directly measured series → representative pair of a
        shared network → aggregation along measured segments.
        """
        series = self.series(src, dst, metric) or self.series(dst, src, metric)
        if series is not None and len(series) > 0:
            return QueryAnswer(src=src, dst=dst, metric=metric,
                               forecast=self._forecast_series(series),
                               method="direct", source_pair=(series.src, series.dst))
        rep = self.plan.pair_source(src, dst) if src != dst else None
        if rep is not None:
            ra, rb = sorted(rep)
            series = self._series_either_direction(ra, rb, metric)
            if series is not None and len(series) > 0:
                return QueryAnswer(src=src, dst=dst, metric=metric,
                                   forecast=self._forecast_series(series),
                                   method="representative", source_pair=(ra, rb))
        aggregated = self._aggregate(src, dst, metric)
        if aggregated is not None:
            return aggregated
        return QueryAnswer(src=src, dst=dst, metric=metric, forecast=None,
                           method="unavailable")

    def _pair_forecast_values(self, a: str, b: str) -> Tuple[float, float]:
        """(latency, bandwidth) forecasts for a measured pair (for aggregation)."""
        latency_series = self._series_either_direction(a, b, METRIC_LATENCY)
        bandwidth_series = self._series_either_direction(a, b, METRIC_BANDWIDTH)
        latency = float("nan")
        bandwidth = float("nan")
        if latency_series is not None and len(latency_series) > 0:
            forecast = self._forecast_series(latency_series)
            if forecast is not None:
                latency = forecast.value
        if bandwidth_series is not None and len(bandwidth_series) > 0:
            forecast = self._forecast_series(bandwidth_series)
            if forecast is not None:
                bandwidth = forecast.value
        return latency, bandwidth

    def _aggregate(self, src: str, dst: str, metric: str) -> Optional[QueryAnswer]:
        """Combine measured segments along a path (paper §2.3 completeness)."""
        if metric not in (METRIC_BANDWIDTH, METRIC_LATENCY, METRIC_CONNECT):
            return None
        aggregator = Aggregator(self.plan, self._pair_forecast_values)
        estimate = aggregator.estimate(src, dst)
        if estimate is None:
            return None
        if metric == METRIC_BANDWIDTH:
            value = estimate.bandwidth_mbps
        elif metric == METRIC_LATENCY:
            value = estimate.latency_s
        else:
            value = 1.5 * estimate.latency_s  # connect ≈ 1.5 RTT of the path
        if value != value or value == float("inf"):  # NaN/inf: series missing
            return None
        forecast = Forecast(value=float(value), method="aggregation", mae=0.0,
                            sample_count=0)
        return QueryAnswer(src=src, dst=dst, metric=metric, forecast=forecast,
                           method="aggregated")

    # -- reporting ------------------------------------------------------------------------
    def measurement_counts(self) -> Dict[str, int]:
        """Number of experiments completed per clique."""
        return {name: runner.stats.experiments
                for name, runner in self.cliques.items()}

    def pair_measurement_times(self) -> Dict[FrozenSet[str], List[float]]:
        """Timestamps of completed experiments per unordered host pair."""
        times: Dict[FrozenSet[str], List[float]] = {}
        for record in self.tracer.select("nws.experiment_end"):
            pair = host_pair(record["src"], record["dst"])
            times.setdefault(pair, []).append(record.time)
        return times

    def measurement_error_report(self) -> Dict[FrozenSet[str], float]:
        """Mean relative bandwidth error per measured pair vs. ground truth."""
        reference = FlowModel(Engine(), self.platform)
        errors: Dict[FrozenSet[str], List[float]] = {}
        for record in self.tracer.select("nws.experiment_end"):
            src, dst = record["src"], record["dst"]
            truth = reference.single_flow_mbps(src, dst)
            if truth <= 0:
                continue
            err = abs(record["bandwidth_mbps"] - truth) / truth
            errors.setdefault(host_pair(src, dst), []).append(err)
        return {pair: float(np.mean(vals)) for pair, vals in errors.items()}

    def total_probe_bytes(self) -> float:
        """Bytes injected by all NWS experiments so far."""
        total = 0.0
        for record in self.tracer.select("flow.end"):
            label = record.get("label", "")
            if isinstance(label, str) and (label.startswith("bandwidth:")
                                           or label.startswith("latency:")
                                           or label.startswith("connect:")):
                total += record["size"]
        return total
