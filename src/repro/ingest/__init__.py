"""Topology ingestion: real-world graphs as first-class scenarios.

``repro.ingest`` turns external topology descriptions — CAIDA-style AS-links
traces, plain edge lists, GraphML router maps and GridML documents — into
registered, content-hashed evaluation scenarios (the ``imported`` family)
that sweep, cache and churn-replay exactly like the built-in catalog::

    from repro.ingest import register_imported
    from repro.sweep import run_sweep

    scenarios = register_imported("traces/aslinks.txt", sizes=(32, 64))
    run_sweep(names=[s.name for s in scenarios])

The CLI surface is ``repro import <file>`` (see the README's "Importing real
topologies" section).
"""

from .bridge import gridml_from_platform, platform_from_gridml
from .build import degree_tiers, import_platform, platform_from_graph
from .formats import (
    FORMATS,
    TopologyGraph,
    TopologyParseError,
    detect_format,
    file_digest,
    load_topology,
    parse_aslinks,
    parse_brite,
    parse_edge_list,
    parse_graphml,
    read_text,
)
from .manifest import (
    DEFAULT_MANIFEST,
    load_manifest,
    load_recorded_imports,
    manifest_entries,
    record_import,
)
from .sample import SampleSpec, router_budget, sample_subgraph
from .scenarios import (
    DEFAULT_SIZES,
    IMPORTED_FAMILY,
    imported_name,
    register_imported,
    register_imported_dynamic,
    same_source,
)

__all__ = [
    "TopologyGraph", "TopologyParseError", "FORMATS",
    "parse_edge_list", "parse_aslinks", "parse_graphml", "parse_brite",
    "detect_format", "file_digest", "read_text", "load_topology",
    "SampleSpec", "sample_subgraph", "router_budget",
    "degree_tiers", "platform_from_graph", "import_platform",
    "platform_from_gridml", "gridml_from_platform",
    "IMPORTED_FAMILY", "DEFAULT_SIZES", "imported_name",
    "register_imported", "register_imported_dynamic", "same_source",
    "DEFAULT_MANIFEST", "record_import", "load_manifest", "manifest_entries",
    "load_recorded_imports",
]
