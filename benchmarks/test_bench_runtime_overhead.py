"""RUNTIME — the process sampler's overhead gate on the fast-path benchmark.

PR 10's :class:`repro.obs.runtime.RuntimeSampler` runs for the whole life
of a serve process, so its cost is a permanent tax on everything the
process does.  Two properties are asserted on the same largest-WAN-grid
scenario the FASTPATH benchmark gates:

* running at its default **1 Hz** cadence the sampler taxes the pipeline
  by less than **2%** — asserted on its actual cost components (the
  synchronous GC-callback pairs each collection pays, the amortised
  snapshot, and the between-snapshot CPU of the sampler thread), because
  on shared CI machines an end-to-end A/B wall-clock delta is dominated
  by multi-percent load drift that no bracketing fully cancels;
* **disabled**, the flight recorder's ``maybe_dump`` trigger — called on
  every breaker transition and persist fallback — costs well under a
  microsecond, so instrumenting those paths is free until a
  ``--flight-dir`` arms it.
"""

from __future__ import annotations

import gc
import time

from repro.obs.flightrec import FlightRecorder
from repro.obs.runtime import RuntimeSampler, _GCWatch
from repro.pipeline import run_pipeline
from repro.scenarios import get_scenario

from test_bench_fastpath import LARGEST_WAN_GRID

MAX_SAMPLED_OVERHEAD_PCT = 2.0
#: Near-free: a disabled maybe_dump() reduces to one attribute check.
MAX_DISABLED_TRIGGER_NS = 2_000
#: The sampler thread sleeps between 1 Hz snapshots; over a 0.4s idle
#: window it must burn (well) under 10ms of process CPU.
MAX_IDLE_THREAD_CPU_S = 0.010
ROUNDS = 5


def _one_round(scenario) -> float:
    """Wall time of one pipeline run on a fresh platform."""
    platform = scenario.build()
    start = time.perf_counter()
    run_pipeline(platform)
    return time.perf_counter() - start


def test_bench_runtime_sampler_overhead_at_default_cadence():
    scenario = get_scenario(LARGEST_WAN_GRID)
    sampler = RuntimeSampler()
    interval_s = 1.0

    # Steady state — serve starts the sampler once for the life of the
    # process — taxes a pipeline round in exactly three ways: the GC
    # callbacks every collection runs synchronously, the 1 Hz snapshot
    # amortised over the round, and whatever CPU the sampler thread
    # burns between snapshots.  Each is measured directly and the sum
    # gated; the components sit near 0.1% so even a several-fold noise
    # spike stays inside the 2% budget, while a real regression (an
    # expensive callback, a busy-looping thread) blows through it.

    # Pipeline round: wall time and GC collections triggered.
    _one_round(scenario)                        # warm-up, untimed
    round_s = float("inf")
    collections = 0
    for _ in range(ROUNDS):
        before = [s["collections"] for s in gc.get_stats()]
        elapsed = _one_round(scenario)
        after = [s["collections"] for s in gc.get_stats()]
        if elapsed < round_s:
            round_s = elapsed
            collections = sum(a - b for a, b in zip(after, before))

    # One GC callback pair (start + stop), as paid on every collection.
    watch = _GCWatch()                          # fresh: keeps REGISTRY clean
    pairs = 10_000
    info = {"generation": 0, "collected": 0, "uncollectable": 0}
    pair_cost_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(pairs):
            watch._callback("start", info)
            watch._callback("stop", info)
        pair_cost_s = min(pair_cost_s,
                          (time.perf_counter() - start) / pairs)

    # One snapshot, as taken once per interval.
    sample_cost_s = float("inf")
    for _ in range(20):
        start = time.perf_counter()
        sampler.sample()
        sample_cost_s = min(sample_cost_s, time.perf_counter() - start)

    # Idle-thread guard: process CPU while the main thread sleeps is the
    # sampler thread's alone, and CPU time is immune to wall-clock load
    # noise.  start()'s immediate snapshot lands before the window and
    # the thread's first timer snapshot a full interval after it.
    sampler.start(interval_s=interval_s)
    try:
        assert sampler.running, "sampler failed to start"
        cpu_start = time.process_time()
        time.sleep(0.4)
        idle_cpu_s = time.process_time() - cpu_start
    finally:
        sampler.stop()

    overhead_pct = 100.0 * (collections * pair_cost_s / round_s
                            + sample_cost_s / interval_s)
    print(f"\n[RUNTIME] {scenario.name}: round {round_s:.3f}s, "
          f"{collections} GC collections x {pair_cost_s * 1e9:.0f} ns "
          f"callback pair, snapshot {sample_cost_s * 1e6:.0f} us @ "
          f"{1 / interval_s:.0f} Hz, idle-thread CPU "
          f"{idle_cpu_s * 1e3:.1f} ms/0.4s -> {overhead_pct:+.3f}% "
          f"({sampler.samples_taken} samples, "
          f"{sampler.sample_errors} errors)")
    assert sampler.sample_errors == 0
    assert idle_cpu_s < MAX_IDLE_THREAD_CPU_S, (
        f"sampler thread burned {idle_cpu_s * 1e3:.1f} ms of CPU over an "
        f"idle 0.4s window (budget: {MAX_IDLE_THREAD_CPU_S * 1e3:.0f} ms) "
        f"— is it busy-looping between snapshots?")
    assert overhead_pct < MAX_SAMPLED_OVERHEAD_PCT, (
        f"runtime sampling at 1 Hz costs {overhead_pct:.3f}% on "
        f"{scenario.name} (budget: {MAX_SAMPLED_OVERHEAD_PCT}%)")


def test_bench_disabled_flight_trigger_is_near_free():
    recorder = FlightRecorder()                 # no flight_dir: disabled
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        recorder.maybe_dump("breaker-open")
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    print(f"\n[RUNTIME] disabled maybe_dump(): {per_call_ns:.0f} ns/call "
          f"({calls} calls)")
    assert per_call_ns < MAX_DISABLED_TRIGGER_NS, (
        f"a disabled maybe_dump() call costs {per_call_ns:.0f} ns "
        f"(budget: {MAX_DISABLED_TRIGGER_NS} ns)")
