"""INGEST — cost of importing real-world topologies into the sweep.

The import path (parse → seeded subgraph sample → tier annotation →
platform build) must stay negligible next to the pipeline work it feeds,
and the derived platforms must flow through map → plan → quality at the
usual per-scenario cost.  This benchmark quantifies both on the committed
CAIDA-style fixture, plus the GridML round-trip bridge.
"""

import os
import time

from repro.analysis import render_table
from repro.gridml import from_xml, to_xml
from repro.ingest import (
    SampleSpec,
    gridml_from_platform,
    import_platform,
    load_topology,
    platform_from_gridml,
)
from repro.pipeline import run_pipeline

FIXTURE = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                       "data", "sample-aslinks.txt")


def test_bench_ingest_build_throughput(benchmark):
    graph, _, _ = load_topology(FIXTURE)

    def build_family():
        return [import_platform(graph, SampleSpec(hosts=hosts, seed=7))
                for hosts in (16, 32, 64)]

    platforms = benchmark.pedantic(build_family, rounds=3, iterations=1)
    rows = [{
        "hosts": len(p.hosts()),
        "nodes": len(p.nodes),
        "links": len(p.links),
    } for p in platforms]
    print("\n[INGEST] imported-platform construction (fixture AS graph)")
    print(render_table(rows))
    assert [row["hosts"] for row in rows] == [16, 32, 64]


def test_bench_ingest_pipeline_scaling():
    graph, _, _ = load_topology(FIXTURE)
    rows = []
    for hosts in (16, 32):
        platform = import_platform(graph, SampleSpec(hosts=hosts, seed=7))
        start = time.perf_counter()
        result = run_pipeline(platform, baselines=("subnet",))
        elapsed = time.perf_counter() - start
        rows.append({
            "hosts": hosts,
            "measurements": result.view.stats.measurements,
            "completeness": round(result.env_report.completeness, 3),
            "bw_err": round(result.env_report.bandwidth_error, 3),
            "pipeline_s": round(elapsed, 3),
        })
    print("\n[INGEST] pipeline cost on imported platforms")
    print(render_table(rows))
    assert all(row["completeness"] > 0.9 for row in rows)
    assert all(row["pipeline_s"] < 10.0 for row in rows)


def test_bench_ingest_gridml_bridge_roundtrip():
    graph, _, _ = load_topology(FIXTURE)
    platform = import_platform(graph, SampleSpec(hosts=32, seed=7))
    start = time.perf_counter()
    doc = gridml_from_platform(platform)
    text = to_xml(doc)
    parsed = from_xml(text)
    bridged = platform_from_gridml(parsed)
    elapsed = time.perf_counter() - start
    print(f"\n[INGEST] platform → GridML → platform round-trip of "
          f"{len(platform.hosts())} hosts in {elapsed * 1e3:.1f} ms "
          f"({len(text)} bytes of XML)")
    assert parsed == doc
    assert sorted(bridged.host_names()) == sorted(platform.host_names())
    assert elapsed < 2.0
