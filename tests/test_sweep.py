"""Tests of the sweep engine: sharding, caching, result store and CLI."""

import os

import pytest

from repro.cli import main
from repro.scenarios import scenario_names
from repro.scenarios.registry import _REGISTRY, register_scenario
from repro.sweep import (
    SweepRecord,
    append_jsonl,
    cache_path,
    code_version,
    load_jsonl,
    run_scenario,
    run_sweep,
    summary_rows,
)

SMOKE = "smoke"


class TestCodeVersion:
    def test_stable_hex_digest(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64
        int(code_version(), 16)


class TestRunScenario:
    def test_ok_record_carries_pipeline_summary(self):
        record = run_scenario("star-hub-8")
        assert record.ok and record.error is None
        assert record.family == "star"
        assert record.summary["hosts"] == 8
        assert record.summary["completeness"] == pytest.approx(1.0)
        assert set(record.summary["timings"]) == {"map", "plan", "quality"}

    def test_builder_failure_yields_error_record(self):
        @register_scenario("test-broken", family="test-internal")
        def _broken():
            raise RuntimeError("deliberately broken scenario")

        try:
            record = run_scenario("test-broken")
            assert not record.ok
            assert "deliberately broken" in record.error
            assert record.summary is None
        finally:
            del _REGISTRY["test-broken"]


class TestRunSweep:
    def test_smoke_sweep_serial(self, tmp_path):
        result = run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path))
        assert len(result.records) >= 4
        assert result.errors == []
        assert result.cache_hits == 0
        stored = load_jsonl(result.out_path)
        assert [r.scenario for r in stored] == \
            [r.scenario for r in result.records]

    def test_second_invocation_hits_cache_near_instant(self, tmp_path):
        first = run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path))
        second = run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path))
        assert second.cache_hits == len(second.records) == len(first.records)
        assert all(r.cached for r in second.records)
        # Cached sweeps do no mapping work at all: near-instant.
        assert second.elapsed_s < max(0.5, first.elapsed_s / 4)

    def test_rerun_ignores_cache(self, tmp_path):
        run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path))
        again = run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path),
                          rerun=True)
        assert again.cache_hits == 0
        assert all(not r.cached for r in again.records)

    def test_warm_pool_respects_lower_jobs_cap(self, tmp_path):
        # Regression: reusing a larger warm pool for a smaller request ran
        # more pipelines concurrently than the caller allowed.
        from repro.sweep import runner
        run_sweep(pattern=SMOKE, jobs=4, cache_dir=str(tmp_path / "a"))
        assert runner._pool_processes == 4
        warm = runner._pool
        # Same cap, different todo count: the warm pool is reused.
        run_sweep(names=["star-switch-12", "ring-4"], jobs=4,
                  cache_dir=str(tmp_path / "a"))
        assert runner._pool is warm
        run_sweep(pattern=SMOKE, jobs=2, cache_dir=str(tmp_path / "b"))
        assert runner._pool_processes == 2

    def test_parallel_sweep_over_full_catalog(self, tmp_path):
        names = scenario_names()
        assert len(names) >= 10
        result = run_sweep(names=names, jobs=4, cache_dir=str(tmp_path))
        assert result.errors == []
        assert [r.scenario for r in result.records] == names
        assert os.path.exists(result.out_path)
        table = result.summary_table()
        for name in names:
            assert name in table
        # Acceptance: the follow-up invocation is served from the cache.
        warm = run_sweep(names=names, jobs=4, cache_dir=str(tmp_path))
        assert warm.cache_hits == len(names)
        assert warm.elapsed_s < max(0.5, result.elapsed_s / 4)

    def test_explicit_names_and_pattern_compose(self, tmp_path):
        result = run_sweep(names=["star-hub-8", "ring-4"], pattern="star",
                           jobs=1, cache_dir=str(tmp_path))
        assert [r.scenario for r in result.records] == ["star-hub-8"]

    def test_duplicate_names_run_once(self, tmp_path):
        # Regression: duplicates in ``names`` used to run the scenario twice
        # and append duplicate records to the result store.
        result = run_sweep(names=["star-hub-8", "campus-open", "star-hub-8"],
                           jobs=1, cache_dir=str(tmp_path))
        assert [r.scenario for r in result.records] == \
            ["star-hub-8", "campus-open"]
        stored = load_jsonl(result.out_path)
        assert [r.scenario for r in stored] == ["star-hub-8", "campus-open"]

    def test_empty_selection_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no scenarios"):
            run_sweep(pattern="match-nothing-at-all", cache_dir=str(tmp_path))
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(pattern=SMOKE, jobs=0, cache_dir=str(tmp_path))

    def test_cache_key_includes_scenario_hash_and_code_version(self, tmp_path):
        path = cache_path(str(tmp_path), "star-hub-8")
        base = os.path.basename(path)
        assert base.startswith("star-hub-8-")
        assert code_version()[:12] in base

    def test_cache_key_separates_run_parameters(self, tmp_path):
        assert cache_path(str(tmp_path), "star-hub-8", period_s=10.0) != \
            cache_path(str(tmp_path), "star-hub-8", period_s=600.0)
        assert cache_path(str(tmp_path), "star-hub-8",
                          baselines=("subnet",)) != \
            cache_path(str(tmp_path), "star-hub-8")
        # Differently-flagged sweeps never serve each other's results.
        first = run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path),
                          period_s=10.0)
        other = run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path),
                          period_s=600.0)
        assert first.cache_hits == 0 and other.cache_hits == 0
        assert os.path.exists(cache_path(str(tmp_path), "star-hub-8",
                                         period_s=10.0))
        assert os.path.exists(cache_path(str(tmp_path), "star-hub-8",
                                         period_s=600.0))
        warm = run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path),
                         period_s=600.0)
        assert warm.cache_hits == 1

    def test_dynamic_cache_key_ignores_baselines(self, tmp_path):
        # Dynamic replays have no baseline stage, so a --baselines change
        # must not invalidate their cached (expensive) replay results.
        assert cache_path(str(tmp_path), "dyn-hub-flash",
                          baselines=("subnet",)) == \
            cache_path(str(tmp_path), "dyn-hub-flash")
        run_sweep(names=["dyn-hub-flash"], cache_dir=str(tmp_path))
        warm = run_sweep(names=["dyn-hub-flash"], cache_dir=str(tmp_path),
                         baselines=("subnet",))
        assert warm.cache_hits == 1

    def test_truncated_cache_entry_is_rerun_and_repaired(self, tmp_path):
        # Regression: a truncated/corrupt cache file (killed worker mid-write
        # before writes were atomic) must be treated as a miss, not served as
        # a half-parsed record.
        run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path))
        path = cache_path(str(tmp_path), "star-hub-8")
        with open(path, "r", encoding="utf-8") as handle:
            full = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(full[:len(full) // 2])
        again = run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path))
        assert again.cache_hits == 0 and again.errors == []
        # The entry is rewritten whole; the next sweep hits it.
        warm = run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path))
        assert warm.cache_hits == 1

    def test_cache_writes_leave_no_temp_files(self, tmp_path):
        run_sweep(pattern=SMOKE, jobs=1, cache_dir=str(tmp_path))
        leftovers = [n for n in os.listdir(str(tmp_path))
                     if n.startswith(".tmp-")]
        assert leftovers == []

    def test_cache_entries_have_umask_governed_permissions(self, tmp_path):
        # mkstemp creates 0600 temp files; the atomic writer must restore
        # normal permissions or a shared cache silently stops being shared.
        run_sweep(names=["star-hub-8"], cache_dir=str(tmp_path))
        path = cache_path(str(tmp_path), "star-hub-8")
        umask = os.umask(0)
        os.umask(umask)
        assert os.stat(path).st_mode & 0o777 == 0o666 & ~umask

    def test_error_records_are_not_cached(self, tmp_path):
        @register_scenario("test-flaky", family="test-internal")
        def _flaky():
            raise RuntimeError("boom")

        try:
            result = run_sweep(names=["test-flaky"], cache_dir=str(tmp_path))
            assert len(result.errors) == 1
            assert not os.path.exists(cache_path(str(tmp_path), "test-flaky"))
            # The failure is retried, not served from a poisoned cache.
            retry = run_sweep(names=["test-flaky"], cache_dir=str(tmp_path))
            assert retry.cache_hits == 0
        finally:
            del _REGISTRY["test-flaky"]


class TestResultStore:
    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "store" / "results.jsonl")
        records = [
            SweepRecord(scenario="a", family="f", scenario_hash="h1",
                        code_version="c", elapsed_s=0.5,
                        summary={"hosts": 3}),
            SweepRecord(scenario="b", family="f", scenario_hash="h2",
                        code_version="c", status="error", error="trace"),
        ]
        append_jsonl(path, records)
        append_jsonl(path, records[:1])
        loaded = load_jsonl(path)
        assert len(loaded) == 3
        assert loaded[0] == records[0]
        assert loaded[1].status == "error"

    def test_from_json_rejects_missing_required_fields(self):
        # Regression: records used to deserialise with scenario=None from
        # corrupt store lines and poison summary_rows.
        with pytest.raises(ValueError, match="required"):
            SweepRecord.from_json('{"scenario": "a"}')
        with pytest.raises(ValueError, match="required"):
            SweepRecord.from_json(
                '{"scenario": "", "family": "f", "scenario_hash": "h", '
                '"code_version": "c"}')
        with pytest.raises(ValueError, match="JSON object"):
            SweepRecord.from_json('["not", "a", "record"]')
        with pytest.raises(ValueError, match="status"):
            SweepRecord.from_json(
                '{"scenario": "a", "family": "f", "scenario_hash": "h", '
                '"code_version": "c", "status": "weird"}')
        # Optional fields fall back to dataclass defaults.
        record = SweepRecord.from_json(
            '{"scenario": "a", "family": "f", "scenario_hash": "h", '
            '"code_version": "c"}')
        assert record.ok and record.cached is False and record.summary is None

    def test_load_jsonl_skips_corrupt_lines_with_warning(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        good = SweepRecord(scenario="a", family="f", scenario_hash="h",
                           code_version="c", summary={"hosts": 3})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(good.to_json() + "\n")
            handle.write('{"scenario": "trunca')        # interrupted append
            handle.write("\n[1, 2]\n")                  # wrong shape
            handle.write('{"scenario": null, "family": "f", '
                         '"scenario_hash": "h", "code_version": "c"}\n')
            handle.write('{"scenario": "x", "family": "f", '
                         '"scenario_hash": "h", "code_version": "c", '
                         '"summary": "oops"}\n')          # mistyped optional
            handle.write('{"scenario": "y", "family": "f", '
                         '"scenario_hash": "h", "code_version": "c", '
                         '"elapsed_s": "fast"}\n')
        with pytest.warns(UserWarning, match="skipping bad sweep record"):
            loaded = load_jsonl(path)
        assert loaded == [good]
        assert [r["scenario"] for r in summary_rows(loaded)] == ["a"]

    def test_summary_rows_tolerate_missing_summary(self):
        rows = summary_rows([
            SweepRecord(scenario="b", family="f", scenario_hash="h",
                        code_version="c", status="error"),
            SweepRecord(scenario="a", family="f", scenario_hash="h",
                        code_version="c", cached=True,
                        summary={"hosts": 4, "completeness": 1.0}),
        ])
        assert [r["scenario"] for r in rows] == ["a", "b"]
        assert rows[0]["status"] == "ok (cached)"
        assert rows[1]["hosts"] == ""


class TestSummaryHardening:
    def test_rows_are_sorted_regardless_of_record_order(self):
        records = [
            SweepRecord(scenario=name, family="f", scenario_hash="h",
                        code_version="c", summary={"hosts": 1})
            for name in ("zeta", "alpha", "mid")
        ]
        for ordering in (records, records[::-1], records[1:] + records[:1]):
            assert [r["scenario"] for r in summary_rows(ordering)] == \
                ["alpha", "mid", "zeta"]

    def test_records_json_is_deterministic_and_sorted(self):
        from repro.sweep import records_json
        import json
        records = [
            SweepRecord(scenario="b", family="f", scenario_hash="h2",
                        code_version="c", summary={"hosts": 3}),
            SweepRecord(scenario="a", family="f", scenario_hash="h1",
                        code_version="c", status="error", error="trace"),
        ]
        text = records_json(records)
        assert text == records_json(records[::-1])
        payload = json.loads(text)
        assert [r["scenario"] for r in payload] == ["a", "b"]
        assert payload[0]["status"] == "error"

    def test_cli_sweep_json_format(self, capsys, tmp_path):
        import json
        assert main(["sweep", "--filter", "star-hub-8", "--format", "json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["scenario"] == "star-hub-8"
        assert payload[0]["status"] == "ok"

    def test_cli_sweep_exits_nonzero_on_errored_record(self, capsys, tmp_path):
        @register_scenario("test-cli-broken", family="test-internal")
        def _broken():
            raise RuntimeError("boom")

        try:
            code = main(["sweep", "--filter", "test-cli-broken",
                         "--cache-dir", str(tmp_path)])
            assert code == 1
            assert "test-cli-broken" in capsys.readouterr().err
            code = main(["sweep", "--filter", "test-cli-broken",
                         "--format", "json", "--cache-dir", str(tmp_path)])
            assert code == 1
        finally:
            del _REGISTRY["test-cli-broken"]


class TestSweepCLI:
    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("ens-lyon", "wan-grid-2x2", "degraded-asym"):
            assert name in out
        assert "scenarios registered" in out

    def test_scenarios_filter_no_match(self, capsys):
        assert main(["scenarios", "--filter", "match-nothing"]) == 1

    def test_sweep_command_runs_and_caches(self, capsys, tmp_path):
        args = ["sweep", "--jobs", "2", "--filter", SMOKE,
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 served from cache" in out
        assert "results appended to" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 served from cache" in out


class TestConcurrentStoreWriters:
    """Two processes appending to one JSONL store (+ sidecar index) must
    corrupt neither — the store writes are single O_APPEND syscalls and the
    index is advisory, rebuilt from whatever the store holds."""

    N_PER_WRITER = 200

    def _spawn_writer(self, store_path, tag):
        import subprocess
        import sys
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        script = (
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.sweep import SweepRecord, append_jsonl\n"
            "from repro.serve import ResultStore\n"
            f"store = ResultStore({store_path!r})\n"
            f"for i in range({self.N_PER_WRITER}):\n"
            f"    record = SweepRecord(scenario=f'{tag}-{{i:04d}}',\n"
            f"                         family={tag!r}, scenario_hash='h',\n"
            "                          code_version='c',\n"
            "                          summary={'payload': 'x' * 200})\n"
            f"    append_jsonl({store_path!r}, [record])\n")
        return subprocess.Popen([sys.executable, "-c", script],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE)

    def test_parallel_appends_interleave_only_at_record_boundaries(
            self, tmp_path):
        from repro.serve import ResultStore
        store_path = str(tmp_path / "results.jsonl")
        writers = [self._spawn_writer(store_path, tag)
                   for tag in ("alpha", "beta")]
        for writer in writers:
            _, err = writer.communicate(timeout=120)
            assert writer.returncode == 0, err.decode()
        # Every record of both writers survived, bit-exact.
        records = load_jsonl(store_path)
        assert len(records) == 2 * self.N_PER_WRITER
        for tag in ("alpha", "beta"):
            mine = [r for r in records if r.family == tag]
            assert [r.scenario for r in mine] == \
                [f"{tag}-{i:04d}" for i in range(self.N_PER_WRITER)]
        # The index — whatever racing state the writers left it in — serves
        # the same view after a refresh.
        store = ResultStore(store_path)
        try:
            assert store.count() == 2 * self.N_PER_WRITER
            records, total = store.query(family="alpha")
            assert total == self.N_PER_WRITER
            assert store.latest("beta-0199") is not None
        finally:
            store.close()

    def test_writer_racing_a_live_index_reader(self, tmp_path):
        # A ResultStore refreshing mid-append must only ever see whole
        # records (the torn-tail guard) and eventually converge.
        from repro.serve import ResultStore
        store_path = str(tmp_path / "results.jsonl")
        writer = self._spawn_writer(store_path, "gamma")
        store = ResultStore(store_path)
        try:
            while writer.poll() is None:
                store.refresh()                   # must never raise
            _, err = writer.communicate()
            assert writer.returncode == 0, err.decode()
            assert store.count() == self.N_PER_WRITER
        finally:
            store.close()
