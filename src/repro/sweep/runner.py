"""The parallel sweep runner.

:func:`run_sweep` shards a list of registered scenarios across a
``multiprocessing`` pool, runs the full map → plan → quality pipeline per
scenario (:func:`repro.pipeline.run_pipeline`), caches each result on disk
keyed by scenario content hash + code version, and aggregates the outcomes
into a JSONL result store plus summary rows.

Cache layout (one file per scenario × code state × run parameters)::

    <cache_dir>/<scenario>-<scenario_hash[:12]>-<code_version[:12]>-<run_key[:8]>.json

A cached scenario is *not* re-run unless ``rerun=True``; editing any source
file under ``src/repro`` changes the code version and invalidates the whole
cache, editing a scenario's parameters invalidates that scenario only, and
sweeping with different run parameters (``period_s`` / ``baselines``) uses
separate cache entries.

Crash resilience (PR 8): parallel dispatch is per-task ``apply_async`` —
slightly more IPC than chunked ``imap_unordered``, but each task gets a
deadline, a retry budget and an owner that can observe its fate.  A worker
killed mid-task (OOM, segfault, injected fault) no longer wedges the sweep:
the pool's maintenance thread replaces the process, the engine notices the
death by polling worker pids and re-dispatches in-flight tasks
(first-completed-dispatch-wins, so ``maxtasksperchild`` recycling false
positives are harmless), a hung task trips its per-task deadline, which
respawns the pool and requeues the innocent bystanders without burning
their retry budget.  Retries back off exponentially with seeded jitter; a
task that exhausts ``retries`` is quarantined as a ``status="failed"``
record instead of sinking the sweep.  Every retry, respawn, death,
deadline and quarantine is a :mod:`repro.obs` counter plus a structured
log line.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import os
import random
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis import render_table
from ..dynamics import DynamicScenario, run_replay
from .. import faults
from ..faults import FaultInjected
from ..ioutils import write_atomic
from ..obs.logs import get_logger, kv
from ..obs.metrics import REGISTRY
from ..obs.profile import PROFILER
from ..obs.runtime import task_runtime
from ..obs.trace import TRACER
from ..perf import counters_snapshot, fast_path_enabled, set_fast_path
from ..pipeline import run_pipeline
from ..scenarios import Scenario, get_scenario, list_scenarios
from .results import (
    SweepRecord,
    append_jsonl,
    default_store_path,
    summary_rows,
)

__all__ = ["SweepResult", "TaskContext", "code_version", "cache_path",
           "run_scenario", "run_sweep", "load_cached_record", "store_record",
           "submit_scenario", "respawn_pool", "pool_generation",
           "worker_deaths", "DEFAULT_CACHE_DIR", "DEFAULT_BASELINES",
           "DEFAULT_RETRIES", "DEFAULT_TASK_DEADLINE_S"]

DEFAULT_CACHE_DIR = ".sweep-cache"
#: Baselines evaluated per scenario; a subset of the CLI ``quality`` set to
#: keep per-scenario cost dominated by the ENV pipeline itself.
DEFAULT_BASELINES: Tuple[str, ...] = ("global-clique", "subnet")
#: Extra attempts a task gets after its first failure before quarantine.
DEFAULT_RETRIES = 2
#: Per-task wall-clock deadline; expiring it respawns the pool.
DEFAULT_TASK_DEADLINE_S = 600.0
#: Worker processes are recycled after this many tasks — bounded drift for
#: leaky native code, and a standing exercise of the death-tolerant
#: dispatch path.
DEFAULT_MAXTASKSPERCHILD = 256

_LOG = get_logger("sweep")

_TASK_ERRORS = REGISTRY.counter(
    "repro_sweep_task_errors_total",
    "scenario runs that produced an error record")
_TASK_RETRIES = REGISTRY.counter(
    "repro_sweep_task_retries_total",
    "sweep task re-dispatches, by trigger",
    labels=("reason",))
_TASKS_QUARANTINED = REGISTRY.counter(
    "repro_sweep_tasks_quarantined_total",
    "sweep tasks marked failed after exhausting their retry budget")
_POOL_RESPAWNS = REGISTRY.counter(
    "repro_sweep_pool_respawns_total",
    "worker pool teardowns forced by deadlines, timeouts or callers")
_WORKER_DEATHS = REGISTRY.counter(
    "repro_sweep_worker_deaths_total",
    "pool worker processes observed to have disappeared")
_TASK_DEADLINES = REGISTRY.counter(
    "repro_sweep_task_deadlines_total",
    "sweep tasks that exceeded their per-task deadline")
_STORE_WRITE_ERRORS = REGISTRY.counter(
    "repro_sweep_store_write_errors_total",
    "cache/store writes that failed (sweep degraded, results kept in memory)")
_SWEEP_INFLIGHT = REGISTRY.gauge(
    "repro_sweep_inflight_tasks",
    "sweep tasks currently dispatched to pool workers")
_SWEEP_PENDING = REGISTRY.gauge(
    "repro_sweep_pending_tasks",
    "sweep tasks queued behind the pool's in-flight set")


@dataclass(frozen=True)
class TaskContext:
    """Caller state shipped with every pool task.

    The warm pool's workers were forked once and keep their globals, so
    *nothing* set in the parent afterwards applies to them implicitly.
    Anything per-task must ride along explicitly: the fast-path switch
    (a pool created under one setting must not silently apply it to later
    tasks submitted under another) and the submitter's trace context (the
    worker parents its spans under it and ships them back over the result
    channel).
    """

    fast_path: bool = True
    trace: Optional[Dict[str, str]] = None
    #: Non-zero arms the worker's sampling profiler at this rate for the
    #: task; its collapsed stacks ride the result channel home (see
    #: :func:`_worker_with_counters`).
    profile_hz: int = 0
    #: 0-based retry attempt of this dispatch.  Rides with the task (rather
    #: than living in worker state) so fault plans can target "attempt 0
    #: only" deterministically across pool respawns.
    attempt: int = 0

    @classmethod
    def current(cls, attempt: int = 0) -> "TaskContext":
        """The submitting process' state at call time."""
        return cls(fast_path=fast_path_enabled(),
                   trace=TRACER.current_context(),
                   attempt=attempt)


@lru_cache(maxsize=1)
def code_version() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Any code change invalidates previously cached sweep results.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    sources: List[str] = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        sources.extend(os.path.join(dirpath, f)
                       for f in sorted(filenames) if f.endswith(".py"))
    for source in sources:
        digest.update(os.path.relpath(source, package_root).encode("utf-8"))
        with open(source, "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def _run_key(period_s: float, baselines: Sequence[str]) -> str:
    """Short digest of the run parameters that shape a scenario's result."""
    payload = json.dumps({"period_s": period_s,
                          "baselines": sorted(baselines)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]


def cache_path(cache_dir: str, scenario_name: str,
               period_s: float = 60.0,
               baselines: Sequence[str] = DEFAULT_BASELINES) -> str:
    """The cache file a result for ``scenario_name`` lives in.

    The key couples the scenario's content hash, the code version and the
    run parameters (period, baselines), so results recorded under different
    sweep flags are never served for one another.  Dynamic scenarios ignore
    ``baselines`` at run time (a replay has no baseline stage), so it is
    excluded from their key — a ``--baselines`` change never forces their
    expensive multi-epoch replays to re-run.
    """
    scenario = get_scenario(scenario_name)
    if isinstance(scenario, DynamicScenario):
        baselines = ()
    return os.path.join(
        cache_dir,
        f"{scenario.name}-{scenario.content_hash[:12]}-{code_version()[:12]}"
        f"-{_run_key(period_s, baselines)}.json")


def run_scenario(scenario_or_name: "Scenario | str",
                 period_s: float = 60.0,
                 baselines: Sequence[str] = DEFAULT_BASELINES) -> SweepRecord:
    """Build one scenario, run the pipeline, return its record.

    Never raises — scenario failures come back as ``status="error"``
    records (with the traceback, a structured log line and a
    ``repro_sweep_task_errors_total`` tick) — except for injected
    :class:`~repro.faults.FaultInjected` chaos, which must propagate so the
    dispatch layers exercise their *infrastructure*-failure paths rather
    than recording a deterministic scenario error.

    Accepts a :class:`Scenario` directly (what the pool workers receive, so a
    spawn-started worker never has to consult the parent's registry) or a
    registered scenario name.  Dynamic scenarios are replayed over their
    churn schedule instead of running the one-shot pipeline; their records
    carry the epoch-aware replay digest (``summary["epoch_records"]``), the
    ``baselines`` parameter does not apply to them (a replay has no baseline
    stage), and the cache key inherits the schedule identity because the
    scenario's content hash covers every churn parameter plus the base
    platform hash.
    """
    start = time.perf_counter()
    name = (scenario_or_name.name if isinstance(scenario_or_name, Scenario)
            else scenario_or_name)
    scenario = None
    try:
        scenario = (scenario_or_name if isinstance(scenario_or_name, Scenario)
                    else get_scenario(scenario_or_name))
        if isinstance(scenario, DynamicScenario):
            summary = run_replay(scenario, period_s=period_s).summary()
        else:
            with TRACER.span("pipeline.simulate", scenario=scenario.name):
                platform = scenario.build()
            summary = run_pipeline(platform, period_s=period_s,
                                   baselines=baselines).summary()
        return SweepRecord(
            scenario=scenario.name,
            family=scenario.family,
            scenario_hash=scenario.content_hash,
            code_version=code_version(),
            status="ok",
            elapsed_s=time.perf_counter() - start,
            summary=summary,
        )
    except FaultInjected:
        raise
    except Exception as exc:
        _TASK_ERRORS.inc()
        _LOG.error("event=scenario_error %s",
                   kv(scenario=name, error=f"{type(exc).__name__}: {exc}"))
        return SweepRecord(
            scenario=name,
            family=scenario.family if scenario else "unknown",
            scenario_hash=scenario.content_hash if scenario else "",
            code_version=code_version(),
            status="error",
            elapsed_s=time.perf_counter() - start,
            error=traceback.format_exc(),
        )


def _worker(args: Tuple[Scenario, float, Tuple[str, ...], TaskContext]
            ) -> SweepRecord:
    scenario, period_s, baselines, context = args
    # Chaos hook: adopt any env-propagated fault plan and fire worker
    # faults (kill / hang / raise) scheduled for this scenario + attempt.
    faults.activate_from_env()
    faults.inject_worker(scenario.name, attempt=context.attempt)
    # Apply the shipped per-task state (see TaskContext): the fast-path
    # switch, and — under a sampled trace — a span adopting the submitter's
    # context so the scenario's pipeline-stage spans parent correctly.
    set_fast_path(context.fast_path)
    with TRACER.adopt(context.trace, "sweep.run_scenario",
                      scenario=scenario.name, fast_path=context.fast_path):
        return run_scenario(scenario, period_s=period_s, baselines=baselines)


def _worker_with_counters(args: Tuple[Scenario, float, Tuple[str, ...],
                                      TaskContext]
                          ) -> Tuple[SweepRecord, Dict[str, int],
                                     List[Dict[str, object]],
                                     Optional[Dict[str, object]],
                                     Dict[str, object]]:
    """Like :func:`_worker`, but ships the task's observability payload too.

    ``repro.perf.COUNTERS`` and the span ring buffer are per-process, so
    pipeline work done in a pool worker is invisible to the submitting
    process; the serving layer folds the counter deltas back in (so its
    ``/metrics`` endpoint reflects the work its jobs actually caused) and
    ingests the captured spans (so ``GET /trace/{id}`` shows the worker's
    pipeline stages).  A pool worker runs one task at a time, so the
    before/after counter difference — and the captured span set — is
    exactly this task's work.

    With ``context.profile_hz`` set, the task additionally runs under the
    worker's sampling profiler; the fourth element of the return tuple is
    the shipped profile payload (``None`` when unprofiled), which the
    submitter folds into its own :data:`~repro.obs.profile.PROFILER`.

    The fifth element is the task's runtime payload (peak RSS, CPU
    seconds, GC collection deltas — :func:`repro.obs.runtime.task_runtime`),
    folded into the submitter's ``repro_worker_*`` series.  Captured spans
    are stamped with this worker's pid so the Perfetto export
    (``repro trace --format chrome``) renders each worker as its own
    process track.
    """
    context = args[3]
    before = counters_snapshot()
    with TRACER.capture() as captured, \
            task_runtime() as runtime, \
            PROFILER.maybe(bool(context.profile_hz),
                           hz=context.profile_hz) as profile:
        record = _worker(args)
    after = counters_snapshot()
    deltas = {name: after[name] - before[name] for name in after}
    pid = os.getpid()
    for span in captured.spans:
        span.setdefault("attrs", {}).setdefault("pid", pid)
    return (record, deltas, captured.spans, profile.as_payload(),
            runtime.as_payload())


# -- persistent warm worker pool ---------------------------------------------
# Spawning a fresh multiprocessing pool per sweep re-pays interpreter start-up
# and module import for every call; repeated sweeps (the CLI's dynamics run
# after a static sweep, test suites, notebook loops) reuse one warm pool as
# long as the requested worker count matches.  A generation counter is bumped
# on every teardown/creation so dispatchers holding AsyncResults can tell
# when their pool was replaced underneath them (the results will never
# complete) and re-dispatch.

_pool: Optional[multiprocessing.pool.Pool] = None
_pool_processes = 0
_pool_maxtasks: Optional[int] = None
_pool_generation = 0
_pool_pids: Set[int] = set()
_pool_deaths = 0
_pool_lock = threading.RLock()


def _pool_initializer() -> None:
    # Runs in each worker at start: mark the process as killable/hangable by
    # the fault layer, and adopt any env-propagated fault plan eagerly.
    faults.mark_worker_process()
    faults.activate_from_env()


def _shutdown_pool() -> None:
    global _pool, _pool_processes, _pool_maxtasks, _pool_generation
    with _pool_lock:
        if _pool is not None:
            _pool_pids.clear()       # terminated on purpose: not "deaths"
            _pool.terminate()
            _pool.join()
            _pool = None
            _pool_processes = 0
            _pool_maxtasks = None
            _pool_generation += 1


atexit.register(_shutdown_pool)


def _warm_pool(processes: int,
               maxtasksperchild: Optional[int] = DEFAULT_MAXTASKSPERCHILD
               ) -> multiprocessing.pool.Pool:
    """The shared pool, recreated when the worker count changes.

    ``jobs`` is a concurrency *cap*, not a hint: reusing a larger warm pool
    for a smaller request would run more pipelines at once than the caller
    allowed (oversubscribing a memory-heavy batch).  Only an exact match
    (worker count *and* recycle policy) reuses the warm workers — repeated
    sweeps with stable parameters, the case warmth pays off in, still hit
    it.
    """
    global _pool, _pool_processes, _pool_maxtasks, _pool_generation
    with _pool_lock:
        if _pool is not None and (_pool_processes != processes
                                  or _pool_maxtasks != maxtasksperchild):
            _shutdown_pool()
        if _pool is None:
            _pool = multiprocessing.Pool(processes=processes,
                                         initializer=_pool_initializer,
                                         maxtasksperchild=maxtasksperchild)
            _pool_processes = processes
            _pool_maxtasks = maxtasksperchild
            _pool_generation += 1
            _pool_pids.clear()
            _pool_pids.update(p.pid for p in _pool._pool)
        return _pool


def pool_generation() -> int:
    """Current pool generation; bumped on every teardown *and* creation.

    An ``AsyncResult`` obtained under one generation is dead the moment the
    generation changes — its worker was terminated, so it will never become
    ready.  Dispatchers snapshot the generation at submit time and compare.
    """
    with _pool_lock:
        return _pool_generation


def respawn_pool(reason: str) -> None:
    """Tear the shared pool down so its next use starts fresh workers.

    The recovery hammer for hung or poisoned workers (a pool task cannot
    be cancelled individually).  In-flight tasks die with their workers —
    callers requeue what they still care about.  A no-op without a live
    pool.
    """
    with _pool_lock:
        if _pool is None:
            return
        _POOL_RESPAWNS.inc()
        _LOG.warning("event=pool_respawn %s",
                     kv(reason=reason, generation=_pool_generation,
                        processes=_pool_processes))
        _shutdown_pool()


def worker_deaths() -> int:
    """Cumulative count of pool worker processes observed to have vanished.

    Poll-based: compares the live worker pid set against the last poll.
    ``maxtasksperchild`` recycling also replaces pids, so a "death" here is
    a *hint* (redispatch in-flight work, first completion wins), never a
    verdict.  Deliberate teardowns don't count.
    """
    global _pool_deaths
    with _pool_lock:
        if _pool is None:
            return _pool_deaths
        live = {p.pid for p in _pool._pool}
        gone = _pool_pids - live
        if gone:
            _pool_deaths += len(gone)
            _WORKER_DEATHS.inc(len(gone))
            _LOG.warning("event=worker_death %s",
                         kv(pids=",".join(str(p) for p in sorted(gone)),
                            generation=_pool_generation))
        _pool_pids.clear()
        _pool_pids.update(live)
        return _pool_deaths


@dataclass
class SweepResult:
    """Aggregate outcome of one :func:`run_sweep` invocation."""

    records: List[SweepRecord] = field(default_factory=list)
    out_path: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    @property
    def errors(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.ok]

    def record_for(self, scenario: str) -> SweepRecord:
        for record in self.records:
            if record.scenario == scenario:
                return record
        raise KeyError(scenario)

    def summary_table(self) -> str:
        return render_table(summary_rows(self.records))


def _load_cached(path: str) -> Optional[SweepRecord]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = SweepRecord.from_json(handle.read())
    except (OSError, ValueError, TypeError):
        return None
    # A cached failure is not worth keeping: re-run the scenario.
    return record if record.ok else None


def load_cached_record(cache_dir: str, scenario_name: str,
                       period_s: float = 60.0,
                       baselines: Sequence[str] = DEFAULT_BASELINES,
                       ) -> Optional[SweepRecord]:
    """The cached record of one scenario, or ``None`` on a miss.

    The public face of the sweep cache for other consumers (the serving
    layer's job queue checks it before dispatching pipeline work); corrupt
    entries and cached failures count as misses, exactly as in
    :func:`run_sweep`.
    """
    return _load_cached(cache_path(cache_dir, scenario_name,
                                   period_s=period_s, baselines=baselines))


def store_record(cache_dir: str, record: SweepRecord,
                 period_s: float = 60.0,
                 baselines: Sequence[str] = DEFAULT_BASELINES,
                 out_path: Optional[str] = None) -> str:
    """Persist one freshly run record the way :func:`run_sweep` does.

    Successful records land in the per-scenario cache (atomically, so a
    later sweep of the same scenario is a cache hit) and every record is
    appended to the JSONL result store.  Returns the store path.  Raises
    ``OSError`` when the disk refuses — callers that must not fail (the
    serving layer) catch it and fall back to memory.
    """
    if record.ok and not record.cached:
        os.makedirs(cache_dir, exist_ok=True)
        write_atomic(cache_path(cache_dir, record.scenario, period_s=period_s,
                                baselines=baselines),
                     record.to_json() + "\n", suffix=".json")
    out_path = out_path or default_store_path(cache_dir)
    append_jsonl(out_path, [record])
    return out_path


def submit_scenario(scenario_name: str, processes: int,
                    period_s: float = 60.0,
                    baselines: Sequence[str] = DEFAULT_BASELINES,
                    trace_ctx: Optional[Dict[str, str]] = None,
                    profile_hz: int = 0,
                    attempt: int = 0,
                    ) -> "multiprocessing.pool.AsyncResult":
    """Dispatch one scenario run onto the shared warm pool, asynchronously.

    Used by the serving layer (:mod:`repro.serve.jobs`): HTTP-submitted runs
    execute in the *same* warm worker pool the sweep engine uses — one pool
    per process, never a second one — and the caller polls the returned
    :class:`~multiprocessing.pool.AsyncResult` without blocking an event
    loop.  The worker never raises for *scenario* failures (they come back
    as error records), but ``AsyncResult.get()`` can raise for
    infrastructure failures (injected faults, a worker lost mid-task) —
    callers guard it and snapshot :func:`pool_generation` at submit time to
    detect a pool replaced underneath them.  The async result yields
    ``(record, perf-counter deltas, spans, profile, runtime)`` so the
    caller can account the worker's pipeline work — its trace, (with
    ``profile_hz`` set) its sampled stacks, and its runtime deltas (peak
    RSS / CPU / GC) — in its own process.
    ``trace_ctx`` overrides the submitter's ambient trace context (the
    serving layer captures it on the request thread, before the job reaches
    the dispatcher); ``attempt`` labels retry dispatches for deterministic
    fault targeting.
    """
    scenario = get_scenario(scenario_name)
    context = TaskContext(fast_path=fast_path_enabled(),
                          trace=trace_ctx or TRACER.current_context(),
                          profile_hz=profile_hz,
                          attempt=attempt)
    with _pool_lock:
        pool = _warm_pool(max(1, processes))
        return pool.apply_async(
            _worker_with_counters,
            ((scenario, period_s, tuple(baselines), context),))


# -- crash-resilient parallel dispatch ----------------------------------------

#: Engine poll interval; small enough that deadlines in the 100ms range
#: (chaos tests) are honoured promptly.
_POLL_S = 0.01
#: Base of the retry backoff ladder: 0.05, 0.1, 0.2, ... capped at 2s,
#: scaled by seeded jitter in [0.5, 1.5).
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0


@dataclass
class _Task:
    """Book-keeping for one scenario making its way through the pool."""

    scenario: Scenario
    #: Dispatches started (== 1 + retries used).  Also the source of the
    #: 0-based ``TaskContext.attempt`` of the next dispatch.
    attempts: int = 0
    #: Live dispatches as ``(pool generation at submit, AsyncResult)``.
    #: Usually one; a worker-death redispatch makes it two, and the first
    #: to complete wins.
    handles: List[Tuple[int, "multiprocessing.pool.AsyncResult"]] = \
        field(default_factory=list)
    #: Monotonic instant the newest dispatch expires.
    deadline: float = 0.0
    #: Monotonic instant before which a requeued task must not redispatch
    #: (exponential backoff).
    not_before: float = 0.0

    @property
    def name(self) -> str:
        return self.scenario.name


def _quarantine_record(task: _Task, reason: str) -> SweepRecord:
    return SweepRecord(
        scenario=task.scenario.name,
        family=task.scenario.family,
        scenario_hash=task.scenario.content_hash,
        code_version=code_version(),
        status="failed",
        error=(f"quarantined after {task.attempts} attempts "
               f"(last failure: {reason})"),
    )


def _backoff_s(attempts: int, rng: random.Random) -> float:
    base = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2 ** max(0, attempts - 1)))
    return base * (0.5 + rng.random())


def _run_parallel(todo: Sequence[str], processes: int, period_s: float,
                  baselines: Sequence[str], retries: int,
                  task_deadline_s: float) -> List[SweepRecord]:
    """Dispatch ``todo`` over the warm pool, surviving crashes and hangs.

    Windowed per-task ``apply_async`` (at most ``processes`` primary
    dispatches in flight, so a task's deadline measures *runtime*, not
    queue wait), with:

    * **crash retry** — a dispatch whose ``get()`` raises (injected fault,
      worker lost with a task mid-pickle) requeues with backoff until the
      budget runs out, then quarantines;
    * **death redispatch** — when worker pids vanish, every in-flight task
      with budget gets a second concurrent dispatch; whichever completes
      first wins (harmless for ``maxtasksperchild`` false positives);
    * **deadline respawn** — a task outliving ``task_deadline_s`` cannot be
      cancelled individually, so the pool is respawned; the expired task
      burns a retry, innocent in-flight tasks requeue for free;
    * **quarantine** — after ``retries + 1`` failed attempts a task becomes
      a ``status="failed"`` record and the sweep moves on.
    """
    rng = random.Random(0x5EED ^ len(todo))
    pending: "deque[_Task]" = deque(_Task(scenario=get_scenario(name))
                                    for name in todo)
    inflight: List[_Task] = []
    done: List[SweepRecord] = []
    deaths_seen = worker_deaths()

    def dispatch(task: _Task, reason: Optional[str] = None) -> None:
        task.attempts += 1
        if reason is not None:
            _TASK_RETRIES.labels(reason=reason).inc()
            _LOG.warning("event=task_retry %s",
                         kv(scenario=task.name, attempt=task.attempts - 1,
                            reason=reason))
        context = TaskContext.current(attempt=task.attempts - 1)
        with _pool_lock:
            pool = _warm_pool(processes)
            generation = _pool_generation
            handle = pool.apply_async(
                _worker,
                ((task.scenario, period_s, tuple(baselines), context),))
        task.handles.append((generation, handle))
        task.deadline = time.monotonic() + task_deadline_s

    def settle_failure(task: _Task, reason: str) -> None:
        """A task lost its last live dispatch: requeue or quarantine."""
        task.handles.clear()
        if task.attempts >= retries + 1:
            _TASKS_QUARANTINED.inc()
            _LOG.error("event=task_quarantined %s",
                       kv(scenario=task.name, attempts=task.attempts,
                          reason=reason))
            done.append(_quarantine_record(task, reason))
        else:
            _TASK_RETRIES.labels(reason=reason).inc()
            task.not_before = time.monotonic() + _backoff_s(task.attempts,
                                                            rng)
            _LOG.warning("event=task_retry %s",
                         kv(scenario=task.name, attempt=task.attempts,
                            reason=reason, backoff=True))
            pending.append(task)

    while pending or inflight:
        now = time.monotonic()
        _SWEEP_INFLIGHT.set(len(inflight))
        _SWEEP_PENDING.set(len(pending))

        # Dispatch up to the window, rotating past backoff-gated heads so
        # one cooling-down task doesn't starve the ready ones behind it.
        considered = 0
        while pending and len(inflight) < processes \
                and considered < len(pending) + 1:
            considered += 1
            task = pending[0]
            if task.not_before > now:
                pending.rotate(-1)
                continue
            pending.popleft()
            dispatch(task)
            inflight.append(task)

        if not inflight:
            time.sleep(_POLL_S)
            continue

        generation_now = pool_generation()
        progressed = False

        # Collect: first ready dispatch of each task wins; crashed or
        # stale-generation dispatches are dropped.
        for task in list(inflight):
            record: Optional[SweepRecord] = None
            crash: Optional[str] = None
            for entry in list(task.handles):
                gen, handle = entry
                if gen != generation_now:
                    task.handles.remove(entry)
                    continue
                if not handle.ready():
                    continue
                try:
                    record = handle.get()
                except Exception as exc:   # noqa: BLE001 — worker lost /
                    # injected fault: an infrastructure failure, retryable.
                    task.handles.remove(entry)
                    crash = f"{type(exc).__name__}: {exc}"
                    continue
                break
            if record is not None:
                inflight.remove(task)
                done.append(record)
                progressed = True
            elif not task.handles:
                inflight.remove(task)
                settle_failure(task, crash or "pool-respawn")
                progressed = True

        if progressed:
            continue
        now = time.monotonic()

        # Hangs: a task past its deadline can only be stopped by killing
        # its worker, and the pool only dies whole.  Innocent bystanders
        # requeue without burning budget (their dispatch never misbehaved).
        expired = [t for t in inflight if now > t.deadline]
        if expired:
            _TASK_DEADLINES.inc(len(expired))
            for task in expired:
                _LOG.warning("event=task_deadline %s",
                             kv(scenario=task.name, attempt=task.attempts - 1,
                                deadline_s=task_deadline_s))
            respawn_pool("task-deadline")
            deaths_seen = worker_deaths()
            for task in list(inflight):
                inflight.remove(task)
                if task in expired:
                    settle_failure(task, "deadline")
                else:
                    task.attempts = max(0, task.attempts - 1)
                    task.handles.clear()
                    _TASK_RETRIES.labels(reason="pool-respawn").inc()
                    pending.append(task)
            continue

        # Deaths: some worker vanished; any in-flight task may be the one
        # it took with it.  Give every task with budget a concurrent second
        # dispatch (capacity self-heals via the pool's maintenance thread).
        deaths_now = worker_deaths()
        if deaths_now > deaths_seen:
            deaths_seen = deaths_now
            for task in inflight:
                if task.attempts < retries + 1 and len(task.handles) < 2:
                    dispatch(task, reason="worker-death")
            continue

        time.sleep(_POLL_S)

    _SWEEP_INFLIGHT.set(0)
    _SWEEP_PENDING.set(0)
    return done


def _run_serial(todo: Sequence[str], period_s: float,
                baselines: Sequence[str], retries: int) -> List[SweepRecord]:
    """The in-process path, with the same retry/quarantine contract.

    Only ``raise`` faults fire here (this process must not kill or hang
    itself), so the retry loop is a plain try/except around the worker.
    """
    rng = random.Random(0x5EED ^ len(todo))
    done: List[SweepRecord] = []
    for name in todo:
        task = _Task(scenario=get_scenario(name))
        while True:
            task.attempts += 1
            context = TaskContext.current(attempt=task.attempts - 1)
            try:
                done.append(_worker((task.scenario, period_s,
                                     tuple(baselines), context)))
                break
            except FaultInjected as exc:
                reason = f"{type(exc).__name__}: {exc}"
                if task.attempts >= retries + 1:
                    _TASKS_QUARANTINED.inc()
                    _LOG.error("event=task_quarantined %s",
                               kv(scenario=task.name, attempts=task.attempts,
                                  reason=reason))
                    done.append(_quarantine_record(task, reason))
                    break
                _TASK_RETRIES.labels(reason="crash").inc()
                _LOG.warning("event=task_retry %s",
                             kv(scenario=task.name, attempt=task.attempts,
                                reason=reason))
                time.sleep(_backoff_s(task.attempts, rng))
    return done


def run_sweep(names: Optional[Sequence[str]] = None,
              pattern: Optional[str] = None,
              jobs: int = 1,
              cache_dir: str = DEFAULT_CACHE_DIR,
              rerun: bool = False,
              out_path: Optional[str] = None,
              period_s: float = 60.0,
              baselines: Sequence[str] = DEFAULT_BASELINES,
              retries: int = DEFAULT_RETRIES,
              task_deadline_s: float = DEFAULT_TASK_DEADLINE_S
              ) -> SweepResult:
    """Run the pipeline over many scenarios, with caching and parallelism.

    Parameters
    ----------
    names:
        Explicit scenario names; defaults to every registered scenario.
    pattern:
        Substring filter on name/family/tags, applied to the selection.
    jobs:
        Worker processes; ``1`` runs in-process (easier to debug/profile).
    cache_dir:
        Where per-scenario result files live; created on demand.
    rerun:
        Ignore (and overwrite) existing cache entries.
    out_path:
        JSONL result store to append this run's records to; defaults to
        ``<cache_dir>/results.jsonl``.
    retries:
        Extra attempts a task gets after an *infrastructure* failure (lost
        worker, deadline, injected fault) before being quarantined as a
        ``status="failed"`` record.  Deterministic scenario errors are
        never retried — rerunning broken code is waste.
    task_deadline_s:
        Per-task wall-clock budget; a task outliving it forces a pool
        respawn and burns one of its retries.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if task_deadline_s <= 0:
        raise ValueError("task_deadline_s must be > 0")
    start = time.perf_counter()
    if names is None:
        selected = [s.name for s in list_scenarios(pattern)]
    else:
        selected = [get_scenario(n).name for n in names]
        if pattern:
            selected = [n for n in selected
                        if get_scenario(n).matches(pattern)]
        # Duplicate names would run the scenario twice and append duplicate
        # records to the result store; keep the first occurrence only.
        selected = list(dict.fromkeys(selected))
    if not selected:
        raise ValueError("no scenarios selected "
                         f"(pattern={pattern!r}, names={names!r})")
    os.makedirs(cache_dir, exist_ok=True)

    def _path(name: str) -> str:
        return cache_path(cache_dir, name, period_s=period_s,
                          baselines=baselines)

    records: Dict[str, SweepRecord] = {}
    todo: List[str] = []
    for name in selected:
        cached = None if rerun else _load_cached(_path(name))
        if cached is not None:
            cached.cached = True
            records[name] = cached
        else:
            todo.append(name)

    if jobs == 1 or len(todo) <= 1:
        fresh = _run_serial(todo, period_s, baselines, retries)
    else:
        # Size by the requested cap alone: a pool never runs more tasks
        # than are queued, and a todo-dependent size would tear the warm
        # pool down whenever the cache state changes.
        try:
            fresh = _run_parallel(todo, jobs, period_s, baselines, retries,
                                  task_deadline_s)
        except Exception:
            # A broken engine (corrupted pipe, unexpected dispatch error)
            # must not poison later sweeps: drop the pool so the next call
            # starts a fresh one.
            _shutdown_pool()
            raise

    for record in fresh:
        records[record.scenario] = record
        if record.ok:
            try:
                # Atomic: a killed process must not leave a truncated cache
                # entry.
                write_atomic(_path(record.scenario), record.to_json() + "\n",
                             suffix=".json")
            except OSError as exc:
                # Degraded, not dead: the sweep still returns (and stores
                # below, if the store path is healthier than the cache).
                _STORE_WRITE_ERRORS.inc()
                _LOG.warning("event=cache_write_error %s",
                             kv(scenario=record.scenario, error=str(exc)))

    ordered = [records[name] for name in selected]
    out_path = out_path or default_store_path(cache_dir)
    try:
        append_jsonl(out_path, ordered)
    except OSError as exc:
        _STORE_WRITE_ERRORS.inc()
        _LOG.warning("event=store_append_error %s",
                     kv(path=out_path, records=len(ordered),
                        error=str(exc)))
    return SweepResult(records=ordered, out_path=out_path,
                       elapsed_s=time.perf_counter() - start)
