"""Deployment quality metrics (paper §2.3, experiment CLM-QUALITY).

For a deployment plan on a (ground-truth) platform, the metrics quantify the
four constraints:

* **collision count / harmful collisions** — potential cross-clique
  collisions, and those whose concurrent execution would actually distort a
  bandwidth measurement by more than a tolerance (the paper's motivating
  example is a shared link reporting "about the half of the real value");
* **measurement period / frequency** — the token ring serialises the
  experiments of a clique, so the time between two measurements of the same
  pair grows with the number of pairs in the clique;
* **completeness** — fraction of host pairs answerable (directly, by
  representative, or by aggregation) and the accuracy of the aggregated
  estimates against ground truth;
* **intrusiveness** — number of directly measured pairs and probe bytes per
  measurement round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netsim.flows import FlowModel
from ..netsim.topology import Platform
from ..simkernel import Engine
from .aggregation import Aggregator, ground_truth_store
from .constraints import check_constraints, find_collisions
from .plan import DeploymentPlan

__all__ = ["QualityReport", "harmful_collisions", "measurement_periods",
           "completeness_accuracy", "evaluate_plan", "compare_plans"]

#: Seconds needed by one NWS experiment between one host pair (latency +
#: bandwidth + connect probes plus protocol overhead).
EXPERIMENT_SECONDS = 1.0


@dataclass
class QualityReport:
    """All quality metrics for one plan."""

    planner: str
    n_hosts: int
    n_cliques: int
    largest_clique: int
    potential_collisions: int
    harmful_collisions: int
    collision_free: bool
    mean_period_s: float
    worst_period_s: float
    completeness: float
    direct_fraction: float
    aggregated_fraction: float
    bandwidth_error: float
    latency_error: float
    measured_pairs: int
    intrusiveness: float
    bytes_per_round: float

    def as_row(self) -> Dict[str, object]:
        """Flat dict representation for tabular reports."""
        return {
            "planner": self.planner,
            "hosts": self.n_hosts,
            "cliques": self.n_cliques,
            "largest": self.largest_clique,
            "collisions": self.potential_collisions,
            "harmful": self.harmful_collisions,
            "period_mean_s": round(self.mean_period_s, 1),
            "period_worst_s": round(self.worst_period_s, 1),
            "completeness": round(self.completeness, 3),
            "bw_err": round(self.bandwidth_error, 3),
            "lat_err": round(self.latency_error, 3),
            "measured_pairs": self.measured_pairs,
            "intrusiveness": round(self.intrusiveness, 3),
        }


def harmful_collisions(plan: DeploymentPlan, platform: Platform,
                       tolerance: float = 0.25,
                       max_pairs: int = 20000) -> int:
    """Count cross-clique collisions that materially distort a measurement.

    For every potential collision, the concurrent max-min rates of the two
    experiments are compared to their solo rates; the collision is *harmful*
    when either measurement would be reduced by more than ``tolerance``
    (e.g. 0.25 = a 25 % under-estimation).
    """
    flow_model = FlowModel(Engine(), platform)
    collisions = find_collisions(plan, platform, max_reports=max_pairs)
    harmful = 0
    for collision in collisions:
        pair_a, pair_b = collision.pair_a, collision.pair_b
        solo_a = flow_model.single_flow_mbps(*pair_a)
        solo_b = flow_model.single_flow_mbps(*pair_b)
        both = flow_model.steady_state_mbps([pair_a, pair_b])
        drop_a = 1.0 - both[0] / solo_a if solo_a > 0 else 0.0
        drop_b = 1.0 - both[1] / solo_b if solo_b > 0 else 0.0
        if max(drop_a, drop_b) > tolerance:
            harmful += 1
    return harmful


def measurement_periods(plan: DeploymentPlan,
                        experiment_seconds: float = EXPERIMENT_SECONDS
                        ) -> Dict[str, float]:
    """Per-clique time between two measurements of the same (ordered) pair.

    The NWS clique token ring lets one host at a time run its experiments
    towards every other member, so a full cycle visits ``n·(n−1)`` ordered
    pairs; the period of any particular pair equals the cycle length.
    """
    periods: Dict[str, float] = {}
    for clique in plan.cliques:
        n = clique.size
        periods[clique.name] = n * (n - 1) * experiment_seconds
    return periods


def completeness_accuracy(plan: DeploymentPlan, platform: Platform
                          ) -> Tuple[float, float, float, float, float]:
    """(completeness, direct fraction, aggregated fraction, bw err, lat err).

    Errors are mean relative errors of the estimates (representative or
    aggregated) against the platform ground truth, over the answerable pairs.
    """
    aggregator = Aggregator(plan, ground_truth_store(platform))
    flow_model = FlowModel(Engine(), platform)
    hosts = sorted(plan.hosts)
    total = 0
    answered = 0
    direct = 0
    aggregated = 0
    bw_errors: List[float] = []
    lat_errors: List[float] = []
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            total += 1
            estimate = aggregator.estimate(a, b)
            if estimate is None:
                continue
            answered += 1
            if estimate.method == "direct":
                direct += 1
            elif estimate.method == "aggregated":
                aggregated += 1
            true_bw = flow_model.single_flow_mbps(a, b)
            true_lat = (platform.route(a, b).latency
                        + platform.route(b, a).latency) / 2.0
            if true_bw > 0:
                bw_errors.append(abs(estimate.bandwidth_mbps - true_bw) / true_bw)
            if true_lat > 0:
                lat_errors.append(abs(estimate.latency_s - true_lat) / true_lat)
    completeness = answered / total if total else 1.0
    direct_frac = direct / total if total else 0.0
    aggregated_frac = aggregated / total if total else 0.0
    bw_err = float(np.mean(bw_errors)) if bw_errors else 0.0
    lat_err = float(np.mean(lat_errors)) if lat_errors else 0.0
    return completeness, direct_frac, aggregated_frac, bw_err, lat_err


def evaluate_plan(plan: DeploymentPlan, platform: Platform,
                  probe_bytes: int = 64 * 1024,
                  experiment_seconds: float = EXPERIMENT_SECONDS,
                  collision_tolerance: float = 0.25) -> QualityReport:
    """Compute the full :class:`QualityReport` for one plan."""
    report = check_constraints(plan, platform)
    periods = measurement_periods(plan, experiment_seconds)
    completeness, direct_frac, aggregated_frac, bw_err, lat_err = (
        completeness_accuracy(plan, platform))
    measured = plan.measured_pairs()
    bytes_per_round = 2 * probe_bytes * len(measured)  # both directions
    return QualityReport(
        planner=str(plan.notes.get("planner", "unknown")),
        n_hosts=len(plan.hosts),
        n_cliques=len(plan.cliques),
        largest_clique=plan.largest_clique_size(),
        potential_collisions=len(report.collisions),
        harmful_collisions=harmful_collisions(plan, platform,
                                              tolerance=collision_tolerance),
        collision_free=report.collision_free,
        mean_period_s=float(np.mean(list(periods.values()))) if periods else 0.0,
        worst_period_s=float(max(periods.values())) if periods else 0.0,
        completeness=completeness,
        direct_fraction=direct_frac,
        aggregated_fraction=aggregated_frac,
        bandwidth_error=bw_err,
        latency_error=lat_err,
        measured_pairs=len(measured),
        intrusiveness=report.intrusiveness,
        bytes_per_round=bytes_per_round,
    )


def compare_plans(plans: Dict[str, DeploymentPlan], platform: Platform,
                  **kwargs) -> List[QualityReport]:
    """Evaluate several plans on the same platform (CLM-QUALITY rows)."""
    reports = []
    for name, plan in plans.items():
        report = evaluate_plan(plan, platform, **kwargs)
        report.planner = name
        reports.append(report)
    return reports
