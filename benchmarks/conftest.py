"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one artifact of the paper's evaluation (see
DESIGN.md, "Experiment index") and prints the reproduced rows/series so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.
"""

from __future__ import annotations

import pytest

from repro.core import plan_from_view
from repro.env import map_ens_lyon
from repro.netsim import build_ens_lyon


@pytest.fixture(scope="session")
def ens_lyon():
    """The ENS-Lyon platform of Figure 1(a)."""
    return build_ens_lyon()


@pytest.fixture(scope="session")
def merged_view(ens_lyon):
    """The merged effective view of Figure 1(b)."""
    return map_ens_lyon(ens_lyon)


@pytest.fixture(scope="session")
def ens_plan(merged_view):
    """The deployment plan of Figure 3."""
    return plan_from_view(merged_view, period_s=20.0)
