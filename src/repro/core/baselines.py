"""Baseline deployment planners.

The paper argues qualitatively that its ENV-driven plan is preferable to the
obvious alternatives; the benchmark CLM-QUALITY quantifies that comparison.
Three baselines capture what a user could do without topology knowledge:

* :func:`global_clique_plan` — one clique containing every host.  Trivially
  collision-free and complete, but the token ring serialises *all*
  measurements, so per-pair frequency collapses as the platform grows
  (the scalability constraint of §2.3).
* :func:`independent_pairs_plan` — measure every host pair without any
  coordination (each pair is its own two-host clique).  Maximal frequency and
  completeness but experiments collide on every shared medium, corrupting
  results, and the probe traffic is maximal (intrusiveness constraint).
* :func:`random_partition_plan` — split hosts into fixed-size cliques at
  random, ignoring topology.  Keeps cliques small but both misses links
  (completeness) and lets cliques collide on shared media.
* :func:`subnet_plan` — group hosts by IP /24 subnet, the "reasonable manual
  guess" an administrator might make from addressing alone; VLANs and
  dual-homed gateways make it diverge from physical sharing.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netsim.topology import Platform
from .plan import Clique, DeploymentPlan

__all__ = ["global_clique_plan", "independent_pairs_plan",
           "random_partition_plan", "subnet_plan"]


def _host_list(platform: Platform, hosts: Optional[Sequence[str]]) -> List[str]:
    return sorted(hosts) if hosts is not None else platform.host_names()


def global_clique_plan(platform: Platform, hosts: Optional[Sequence[str]] = None,
                       period_s: float = 60.0) -> DeploymentPlan:
    """One single clique containing every monitored host."""
    names = _host_list(platform, hosts)
    plan = DeploymentPlan(hosts=names, nameserver_host=names[0] if names else None)
    plan.notes["planner"] = "global-clique"
    if len(names) >= 2:
        plan.cliques.append(Clique(name="clique-global", hosts=tuple(names),
                                   network_label="*", kind="global",
                                   period_s=period_s))
    return plan


def independent_pairs_plan(platform: Platform,
                           hosts: Optional[Sequence[str]] = None,
                           period_s: float = 60.0) -> DeploymentPlan:
    """Every host pair measured independently, with no mutual exclusion."""
    names = _host_list(platform, hosts)
    plan = DeploymentPlan(hosts=names, nameserver_host=names[0] if names else None)
    plan.notes["planner"] = "independent-pairs"
    for idx, (a, b) in enumerate(itertools.combinations(names, 2)):
        plan.cliques.append(Clique(name=f"pair-{idx:04d}", hosts=(a, b),
                                   network_label=f"{a}|{b}", kind="adhoc",
                                   period_s=period_s))
    return plan


def random_partition_plan(platform: Platform,
                          hosts: Optional[Sequence[str]] = None,
                          clique_size: int = 4, seed: int = 0,
                          period_s: float = 60.0) -> DeploymentPlan:
    """Topology-blind partition into cliques of roughly ``clique_size`` hosts."""
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    names = _host_list(platform, hosts)
    rng = np.random.default_rng(seed)
    shuffled = list(names)
    rng.shuffle(shuffled)
    plan = DeploymentPlan(hosts=names, nameserver_host=names[0] if names else None)
    plan.notes["planner"] = "random-partition"
    plan.notes["clique_size"] = clique_size
    groups: List[List[str]] = [shuffled[i:i + clique_size]
                               for i in range(0, len(shuffled), clique_size)]
    # A trailing singleton cannot form a clique: merge it into the previous group.
    if len(groups) >= 2 and len(groups[-1]) == 1:
        groups[-2].extend(groups.pop())
    for idx, group in enumerate(groups):
        if len(group) >= 2:
            plan.cliques.append(Clique(name=f"random-{idx:03d}",
                                       hosts=tuple(sorted(group)),
                                       network_label=f"partition-{idx}",
                                       kind="adhoc", period_s=period_s))
    return plan


def subnet_plan(platform: Platform, hosts: Optional[Sequence[str]] = None,
                period_s: float = 60.0) -> DeploymentPlan:
    """Group hosts by their /24 subnet (an addressing-based manual guess)."""
    names = _host_list(platform, hosts)
    plan = DeploymentPlan(hosts=names, nameserver_host=names[0] if names else None)
    plan.notes["planner"] = "subnet"
    groups: Dict[str, List[str]] = {}
    for name in names:
        node = platform.nodes.get(name)
        if node is None or node.ip is None:
            key = "unknown"
        else:
            octets = node.ip.octets
            key = f"{octets[0]}.{octets[1]}.{octets[2]}.0/24"
        groups.setdefault(key, []).append(name)
    singles: List[str] = []
    for key, group in sorted(groups.items()):
        if len(group) >= 2:
            plan.cliques.append(Clique(name=f"subnet-{key.replace('/', '_')}",
                                       hosts=tuple(sorted(group)),
                                       network_label=key, kind="adhoc",
                                       period_s=period_s))
        else:
            singles.extend(group)
    # Hosts alone in their subnet are attached to a catch-all clique so the
    # plan still covers them.
    if len(singles) >= 2:
        plan.cliques.append(Clique(name="subnet-misc", hosts=tuple(sorted(singles)),
                                   network_label="misc", kind="adhoc",
                                   period_s=period_s))
    elif len(singles) == 1 and plan.cliques:
        first = plan.cliques[0]
        plan.cliques[0] = Clique(name=first.name,
                                 hosts=tuple(sorted(first.hosts + tuple(singles))),
                                 network_label=first.network_label,
                                 kind=first.kind, period_s=first.period_s)
    return plan
