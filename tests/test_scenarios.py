"""Tests of the scenario registry and the scenario-suite generators."""

import pytest

from repro.env import map_platform
from repro.gridml import read_gridml, write_gridml
from repro.netsim import (
    CampusSpec,
    DegradedSpec,
    FatTreeSpec,
    RingSpec,
    StarSpec,
    WanGridSpec,
    generate_campus,
    generate_degraded,
    generate_fat_tree,
    generate_ring,
    generate_star,
    generate_wan_grid,
    ground_truth_groups,
    platform_allows,
)
from repro.scenarios import (
    Scenario,
    clear_registry,
    get_scenario,
    list_scenarios,
    load_catalog,
    registry_snapshot,
    restore_registry,
)
from repro.scenarios.registry import _REGISTRY, register_scenario

import networkx as nx


class TestRegistry:
    def test_catalog_holds_at_least_ten_scenarios(self):
        assert len(list_scenarios()) >= 10

    def test_scenario_names_unique_and_sorted(self):
        names = [s.name for s in list_scenarios()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_content_hashes_are_stable_and_distinct(self):
        scenarios = list_scenarios()
        hashes = [s.content_hash for s in scenarios]
        assert len(set(hashes)) == len(hashes)
        for scenario in scenarios:
            assert scenario.content_hash == scenario.content_hash
            assert len(scenario.content_hash) == 64

    def test_hash_depends_on_params_not_builder(self):
        a = Scenario(name="x", family="f", params=(("seed", 1),))
        b = Scenario(name="x", family="f", params=(("seed", 2),))
        c = Scenario(name="x", family="f", params=(("seed", 1),),
                     builder=lambda seed: None)
        assert a.content_hash != b.content_hash
        assert a.content_hash == c.content_hash

    def test_duplicate_registration_rejected(self):
        existing = list_scenarios()[0].name
        with pytest.raises(ValueError, match="duplicate"):
            register_scenario(existing, family="dup")(lambda: None)

    def test_unserialisable_params_rejected(self):
        with pytest.raises(TypeError):
            register_scenario("bad-params", family="bad",
                              fn=lambda: None)(lambda fn: None)
        assert "bad-params" not in _REGISTRY

    def test_get_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_filter_matches_name_family_and_tags(self):
        assert any(s.name == "wan-grid-2x2" for s in list_scenarios("wan"))
        assert all("star" == s.family for s in list_scenarios("star"))
        smoke = list_scenarios("smoke")
        assert len(smoke) >= 4
        assert all("smoke" in s.tags for s in smoke)

    def test_build_constructs_a_fresh_platform(self):
        scenario = get_scenario("star-hub-8")
        p1, p2 = scenario.build(), scenario.build()
        assert p1 is not p2
        assert p1.host_names() == p2.host_names()


class TestRegistryIsolation:
    def test_catalog_reload_is_idempotent(self):
        before = {s.name: s.content_hash for s in list_scenarios()}
        load_catalog()
        load_catalog()
        after = {s.name: s.content_hash for s in list_scenarios()}
        assert after == before

    def test_catalog_reload_after_clear_restores_identical_registry(self):
        before = {s.name: s.content_hash for s in list_scenarios()}
        clear_registry()
        assert list_scenarios() == []
        load_catalog()
        static = {s.name: s.content_hash for s in list_scenarios()}
        assert static == {n: h for n, h in before.items() if n in static}

    def test_snapshot_restore_roundtrip(self):
        snapshot = registry_snapshot()
        clear_registry()
        register_scenario("test-transient", family="test-internal")(lambda: None)
        assert [s.name for s in list_scenarios()] == ["test-transient"]
        restore_registry(snapshot)
        assert {s.name for s in list_scenarios()} == set(snapshot)

    def test_conflicting_redefinition_still_rejected(self):
        with pytest.raises(ValueError, match="different definition"):
            register_scenario("star-hub-8", family="star",
                              hosts=9, kind="hub")(lambda hosts, kind: None)


def _seeded_platforms():
    """A seeded loop over every generator family (the property-test corpus)."""
    for seed in range(3):
        yield generate_wan_grid(WanGridSpec(rows=2, cols=2, seed=seed))
        yield generate_campus(CampusSpec(departments=3,
                                         firewalled_departments=1, seed=seed))
        yield generate_ring(RingSpec(sites=3 + seed, seed=seed))
        yield generate_degraded(DegradedSpec(hosts_per_cluster=2 + seed))
    yield generate_fat_tree(FatTreeSpec(pods=2, edges_per_pod=2,
                                        hosts_per_edge=2))
    yield generate_star(StarSpec(hosts=5, kind="hub"))
    yield generate_star(StarSpec(hosts=5, kind="switch"))


class TestGeneratorProperties:
    @pytest.fixture(scope="class")
    def platforms(self):
        return list(_seeded_platforms())

    def test_every_platform_is_connected_and_valid(self, platforms):
        for platform in platforms:
            assert platform.validate() == [], platform.name
            assert nx.is_connected(platform.graph), platform.name

    def test_symmetric_link_registration(self, platforms):
        for platform in platforms:
            for link in platform.links.values():
                assert link.a in platform.nodes, (platform.name, link.name)
                assert link.b in platform.nodes, (platform.name, link.name)
                assert platform.graph.has_edge(link.a, link.b)
                # The same link must be found from either endpoint.
                assert platform.link_between(link.a, link.b) is \
                    platform.link_between(link.b, link.a)

    def test_ground_truth_covers_every_host_exactly_once(self, platforms):
        for platform in platforms:
            truth = ground_truth_groups(platform)
            covered = [h for spec in truth.values()
                       for h in sorted(spec["hosts"])]
            assert sorted(covered) == platform.host_names(), platform.name

    def test_every_host_pair_routes(self, platforms):
        for platform in platforms:
            hosts = platform.host_names()
            anchor = hosts[0]
            for other in hosts[1:]:
                route = platform.route(anchor, other)
                assert route.nodes[0] == anchor and route.nodes[-1] == other

    def test_generation_is_deterministic(self):
        a = generate_wan_grid(WanGridSpec(seed=42))
        b = generate_wan_grid(WanGridSpec(seed=42))
        assert a.host_names() == b.host_names()
        assert sorted(a.links) == sorted(b.links)
        for name, link in a.links.items():
            assert b.links[name].bandwidth_mbps == link.bandwidth_mbps
            assert b.links[name].latency_s == link.latency_s


class TestGeneratorBehaviours:
    def test_campus_firewall_blocks_non_gateway_hosts(self):
        platform = generate_campus(CampusSpec(departments=3,
                                              firewalled_departments=1,
                                              seed=5))
        truth = ground_truth_groups(platform)
        firewalled = [spec for spec in truth.values() if spec["gateway"]]
        open_specs = [spec for spec in truth.values() if not spec["gateway"]]
        assert firewalled and open_specs
        gateway = firewalled[0]["gateway"]
        inmate = next(h for h in sorted(firewalled[0]["hosts"])
                      if h != gateway)
        outsider = sorted(open_specs[0]["hosts"])[0]
        assert platform_allows(platform, gateway, outsider)
        assert not platform_allows(platform, inmate, outsider)

    def test_degraded_routes_are_asymmetric(self):
        platform = generate_degraded(DegradedSpec())
        truth = ground_truth_groups(platform)
        src = sorted(truth["a-switch"]["hosts"])[0]
        dst = sorted(truth["b-switch"]["hosts"])[0]
        assert not platform.routes_are_symmetric(src, dst)
        # The forced forward path crosses the slow detour.
        assert "detour-router" in platform.route(src, dst).nodes
        assert "detour-router" not in platform.route(dst, src).nodes

    def test_degraded_vlans_mismatch_physical_segments(self):
        platform = generate_degraded(DegradedSpec())
        vlans = platform.vlan_plan
        assert vlans.mismatches_physical(platform)

    def test_wan_grid_backbone_is_heterogeneous(self):
        platform = generate_wan_grid(WanGridSpec(rows=3, cols=3, seed=1))
        backbone = [l.bandwidth_mbps for l in platform.links.values()
                    if l.a.startswith("bb-") and l.b.startswith("bb-")]
        assert len(set(backbone)) > 1


class TestScenarioGridmlRoundTrip:
    @pytest.mark.parametrize("name", ["star-hub-8", "fat-tree-2x2",
                                      "degraded-asym", "campus-open",
                                      "wan-grid-2x2"])
    def test_mapped_view_roundtrips_through_gridml(self, name, tmp_path):
        platform = get_scenario(name).build()
        view = map_platform(platform, platform.host_names()[0])
        path = tmp_path / f"{name}.xml"
        write_gridml(view.to_gridml(), str(path))
        parsed = read_gridml(str(path))
        assert sorted(parsed.all_machine_names()) == view.hosts()
        original = view.to_gridml()
        assert [n.label for n in parsed.all_networks()] == \
            [n.label for n in original.all_networks()]
        assert [n.network_type for n in parsed.all_networks()] == \
            [n.network_type for n in original.all_networks()]
