"""Seeded, deterministic fault injection for chaos testing.

Real deployments lose workers to the OOM killer, hang on dead NFS mounts
and run disks out of space; this module lets tests inject exactly those
failures *reproducibly*.  A :class:`FaultPlan` is a seed plus a list of
:class:`FaultSpec` schedules:

* ``kill``   — the pool worker kills itself with a signal (default
  ``SIGKILL``) before running the task;
* ``hang``   — the worker sleeps ``delay_s`` seconds before the task (long
  enough to trip any per-task deadline);
* ``raise``  — the worker entrypoint raises :class:`FaultInjected`;
* ``enospc`` — a write path raises ``OSError(ENOSPC)`` before writing;
* ``torn``   — an append writes *half* its payload, then raises
  ``OSError(ENOSPC)``: a torn JSONL tail, exactly what a full disk leaves.

The plan is installed process-wide with :func:`install_plan`, which also
exports it through the ``REPRO_FAULT_PLAN`` environment variable so pool
workers (forked or spawned *after* installation) and subprocesses inherit
it; :func:`activate_from_env` (called from the worker entrypoints and the
write hook) adopts the inherited plan lazily.

Determinism without shared state: worker faults are gated on the task's
*attempt number* (shipped with the task), so "kill the worker on attempt 0
of scenario X" fires exactly once no matter how many times the pool is
respawned, and probabilistic faults hash ``(seed, spec, key, attempt)``
instead of consulting a stateful RNG (at write sites, where the path is
constant across appends, a per-spec consult sequence number stands in
for the attempt).  ``times`` additionally caps firings
per process (the natural cap for write faults, whose injecting process —
the sweep parent or the server — lives across retries).

Injection sites hook in from the outside: :mod:`repro.sweep.runner` calls
:func:`inject_worker` at the pool-worker entrypoint, and importing this
module registers :func:`write_fault` with :mod:`repro.ioutils` (the
hook-based coupling keeps ``ioutils`` import-cycle-free).  Worker kills
and hangs only ever fire inside real pool worker processes (marked by the
pool initializer) — an in-process ``--jobs 1`` sweep must not kill the
CLI that runs it.

Every injected fault increments ``repro_faults_injected_total`` (labelled
by site and kind) and emits a structured warning, so a chaos run's
injected failures are visible on ``/metrics`` next to the retries and
respawns they caused.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import ioutils
from .obs.logs import get_logger, kv
from .obs.metrics import REGISTRY

__all__ = ["FaultSpec", "FaultPlan", "FaultInjected", "ENV_VAR",
           "WORKER_KINDS", "WRITE_KINDS", "install_plan", "clear_plan",
           "active_plan", "activate_from_env", "load_plan", "inject_worker",
           "write_fault", "mark_worker_process", "in_worker_process",
           "fired_counts"]

ENV_VAR = "REPRO_FAULT_PLAN"

WORKER_KINDS = ("kill", "hang", "raise")
WRITE_KINDS = ("enospc", "torn")

_LOG = get_logger("faults")

_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "faults injected by the active fault plan",
    labels=("site", "kind"))


class FaultInjected(RuntimeError):
    """The failure a ``raise`` fault injects (propagates out of the worker
    entrypoint, so the dispatcher sees a lost task, not an error record)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault schedule of a plan."""

    kind: str
    #: Substring the injection key (scenario name for worker faults, file
    #: path for write faults) must contain; empty matches everything.
    match: str = ""
    #: Max firings per process; ``-1`` removes the cap.  Attempt-gated
    #: worker faults usually rely on ``on_attempts`` instead — a respawned
    #: worker process starts with fresh counters, attempt numbers travel
    #: with the task.
    times: int = 1
    #: Task attempt numbers (0-based) the fault fires on; ``None`` fires on
    #: every attempt.  Ignored at write sites.
    on_attempts: Optional[Tuple[int, ...]] = None
    #: Deterministic firing probability: the fault fires when
    #: ``hash(seed, spec, key, attempt) < probability``.
    probability: float = 1.0
    #: Sleep duration of a ``hang`` fault.
    delay_s: float = 30.0
    #: Signal of a ``kill`` fault.
    signum: int = int(signal.SIGKILL)

    def __post_init__(self) -> None:
        if self.kind not in WORKER_KINDS + WRITE_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.times < -1:
            raise ValueError("times must be >= -1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    @property
    def site(self) -> str:
        return "worker" if self.kind in WORKER_KINDS else "write"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        if self.match:
            data["match"] = self.match
        if self.times != 1:
            data["times"] = self.times
        if self.on_attempts is not None:
            data["on_attempts"] = list(self.on_attempts)
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.delay_s != 30.0:
            data["delay_s"] = self.delay_s
        if self.signum != int(signal.SIGKILL):
            data["signum"] = self.signum
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(f"fault spec is not an object: {data!r}")
        unknown = [k for k in data if k not in (
            "kind", "match", "times", "on_attempts", "probability",
            "delay_s", "signum")]
        if unknown:
            raise ValueError(f"unknown fault spec fields: {unknown}")
        on_attempts = data.get("on_attempts")
        return cls(
            kind=str(data.get("kind", "")),
            match=str(data.get("match", "")),
            times=int(data.get("times", 1)),
            on_attempts=(None if on_attempts is None
                         else tuple(int(a) for a in on_attempts)),
            probability=float(data.get("probability", 1.0)),
            delay_s=float(data.get("delay_s", 30.0)),
            signum=int(data.get("signum", int(signal.SIGKILL))))


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault schedules of one chaos run."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed,
                           "faults": [s.to_dict() for s in self.specs]},
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = [k for k in data if k not in ("seed", "faults")]
        if unknown:
            raise ValueError(f"unknown fault plan fields: {unknown}")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise ValueError("fault plan field 'faults' must be a list")
        return cls(seed=int(data.get("seed", 0)),
                   specs=tuple(FaultSpec.from_dict(s) for s in faults))


def load_plan(source: str) -> FaultPlan:
    """A plan from a JSON literal or (when the argument names an existing
    file) a JSON file — the shape the CLI's ``--inject-faults`` accepts."""
    text = source
    if os.path.exists(source):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)


# -- process-wide plan state --------------------------------------------------

_lock = threading.Lock()
_PLAN: Optional[FaultPlan] = None
#: The serialised plan the current ``_PLAN`` came from; compared against the
#: environment so :func:`activate_from_env` re-parses only on change.
_TOKEN: Optional[str] = None
_FIRED: Dict[int, int] = {}              # spec index -> firings this process
#: spec index -> write-site consults this process; the sequence number is
#: the probability-hash variate (a path is constant across appends, so
#: hashing it alone would make a probabilistic write fault all-or-nothing).
_CONSULTS: Dict[int, int] = {}
_IN_POOL_WORKER = False


def install_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process and export it to future children."""
    global _PLAN, _TOKEN
    token = plan.to_json()
    with _lock:
        _PLAN = plan
        _TOKEN = token
        _FIRED.clear()
        _CONSULTS.clear()
    os.environ[ENV_VAR] = token
    _LOG.warning("event=fault_plan_installed %s",
                 kv(seed=plan.seed, specs=len(plan.specs)))


def clear_plan() -> None:
    """Disarm any active plan and stop exporting it."""
    global _PLAN, _TOKEN
    with _lock:
        _PLAN = None
        _TOKEN = None
        _FIRED.clear()
        _CONSULTS.clear()
    os.environ.pop(ENV_VAR, None)


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def activate_from_env() -> Optional[FaultPlan]:
    """Adopt the plan exported through :data:`ENV_VAR`, if any.

    Cheap when nothing changed (a string compare), so the worker
    entrypoints call it per task; a plan installed directly through
    :func:`install_plan` is already token-matched and never re-parsed
    (which would reset the firing counters mid-run).
    """
    global _PLAN, _TOKEN
    token = os.environ.get(ENV_VAR)
    with _lock:
        if token == _TOKEN:
            return _PLAN
    if token is None:
        clear_plan()
        return None
    try:
        plan = FaultPlan.from_json(token)
    except ValueError as exc:
        _LOG.warning("event=fault_plan_invalid %s", kv(error=str(exc)))
        return _PLAN
    with _lock:
        _PLAN = plan
        _TOKEN = token
        _FIRED.clear()
        _CONSULTS.clear()
    return plan


def mark_worker_process() -> None:
    """Mark this process as a pool worker (set by the pool initializer):
    only marked processes are allowed to kill or hang themselves."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_worker_process() -> bool:
    return _IN_POOL_WORKER


def fired_counts() -> Dict[int, int]:
    """Firings per spec index in this process (test hook)."""
    with _lock:
        return dict(_FIRED)


# -- firing decision ----------------------------------------------------------

def _hash_fraction(seed: int, index: int, key: str, attempt: int) -> float:
    digest = hashlib.sha256(
        f"{seed}|{index}|{key}|{attempt}".encode("utf-8")).hexdigest()
    return int(digest[:12], 16) / float(16 ** 12)


def _should_fire(plan: FaultPlan, index: int, spec: FaultSpec, key: str,
                 attempt: int) -> bool:
    if spec.match and spec.match not in key:
        return False
    if spec.site == "worker" and spec.on_attempts is not None \
            and attempt not in spec.on_attempts:
        return False
    if spec.probability < 1.0 and \
            _hash_fraction(plan.seed, index, key, attempt) >= spec.probability:
        return False
    with _lock:
        fired = _FIRED.get(index, 0)
        if spec.times >= 0 and fired >= spec.times:
            return False
        _FIRED[index] = fired + 1
    _INJECTED.labels(site=spec.site, kind=spec.kind).inc()
    _LOG.warning("event=fault_injected %s",
                 kv(site=spec.site, kind=spec.kind, key=key, attempt=attempt,
                    pid=os.getpid()))
    return True


def inject_worker(key: str, attempt: int = 0) -> None:
    """Fire any matching worker fault for task ``key`` at ``attempt``.

    Called from the pool worker entrypoint (and the in-process serial
    path).  ``kill`` and ``hang`` are restricted to marked pool worker
    processes; ``raise`` fires anywhere the plan is active.
    """
    plan = activate_from_env()
    if plan is None:
        return
    for index, spec in enumerate(plan.specs):
        if spec.site != "worker":
            continue
        if spec.kind != "raise" and not _IN_POOL_WORKER:
            # A kill/hang outside a pool worker would take down (or wedge)
            # the submitting process itself; stay inert (and uncounted) so
            # a real worker can still fire this spec.
            continue
        if not _should_fire(plan, index, spec, key, attempt):
            continue
        if spec.kind == "raise":
            raise FaultInjected(f"injected failure for {key!r} "
                                f"(attempt {attempt})")
        if spec.kind == "hang":
            time.sleep(spec.delay_s)
        elif spec.kind == "kill":
            os.kill(os.getpid(), spec.signum)


def write_fault(path: str) -> Optional[str]:
    """The write fault kind (``"enospc"`` / ``"torn"``) armed for ``path``,
    or ``None`` — consulted by the :mod:`repro.ioutils` writers."""
    plan = activate_from_env()
    if plan is None:
        return None
    for index, spec in enumerate(plan.specs):
        if spec.site != "write":
            continue
        with _lock:
            sequence = _CONSULTS.get(index, 0)
            _CONSULTS[index] = sequence + 1
        if _should_fire(plan, index, spec, path, sequence):
            return spec.kind
    return None


def injected_oserror(path: str, torn: bool = False) -> OSError:
    """The ``OSError`` an injected write fault raises (always ENOSPC — the
    realistic full-disk errno for both variants)."""
    detail = "injected torn write" if torn else "injected ENOSPC"
    return OSError(errno.ENOSPC, detail, path)


# Register the write hook: ioutils stays import-cycle-free (it must not
# import the obs stack), and write faults arm as soon as anything imports
# the faults layer (the sweep runner always does).
ioutils.set_write_fault_hook(write_fault)
