"""Chaos suite: seeded fault plans against the sweep pool and the server.

Every test arms a deterministic :class:`repro.faults.FaultPlan` and asserts
the stack *degrades instead of breaking*: killed workers are detected and
their tasks retried, hung tasks trip per-task deadlines and pool respawns,
poisoned scenarios end up explicitly quarantined (never silently lost),
the serve dispatcher outlives its workers, circuit breakers trip and
recover, SIGTERM drains cleanly, and store write failures degrade to an
in-memory fallback rather than a 500.

Run just this file with ``make chaos``.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultSpec, clear_plan, install_plan
from repro.netsim import StarSpec, generate_star
from repro.obs.flightrec import FLIGHT
from repro.obs.metrics import REGISTRY
from repro.scenarios import scenario_names
from repro.scenarios.registry import register_scenario, unregister
from repro.serve import JobQueue, ReproApp, ResultStore, start_server
from repro.serve.breaker import CircuitOpen
from repro.sweep import (
    SweepRecord,
    append_jsonl,
    default_store_path,
    load_jsonl,
    respawn_pool,
    run_sweep,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


# ---------------------------------------------------------------------------
# helpers


def _counter(name, **labels):
    return REGISTRY.value(name, **labels) or 0.0


def _arm(plan):
    """Install ``plan`` and force fresh pool workers (a warm pool forked
    before the install would never see the exported plan)."""
    install_plan(plan)
    respawn_pool("chaos-arm")


@pytest.fixture(autouse=True)
def _chaos_hygiene():
    """No plan leaks in (or out), and no armed pool workers outlive a test."""
    clear_plan()
    FLIGHT.reset_cooldowns()
    yield
    clear_plan()
    # The flight recorder is a process singleton configured by ReproApp;
    # disarm it so one test's --flight-dir never leaks dumps into the next.
    FLIGHT.configure(flight_dir=None, history=None, health_fn=None)
    respawn_pool("chaos-teardown")


async def _http(port, method, target, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = body if body is not None else b""
        lines = [f"{method} {target} HTTP/1.1", "Host: test"]
        if payload:
            lines.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = (await reader.readline()).decode().strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        blob = await reader.readexactly(length) if length else b""
        return status, blob
    finally:
        writer.close()
        await writer.wait_closed()


async def _wait_job(port, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        status, blob = await _http(port, "GET", f"/runs/{job_id}")
        assert status == 200
        payload = json.loads(blob)
        if payload["status"] not in ("queued", "running"):
            return payload
        assert time.monotonic() < deadline, "job did not finish in time"
        await asyncio.sleep(0.05)


def _with_app(coro_fn, **app_kwargs):
    async def runner():
        app = ReproApp(**app_kwargs)
        server, port = await start_server(app)
        try:
            return await coro_fn(app, port)
        finally:
            server.close()
            await server.wait_closed()
            await app.close()
    return asyncio.run(runner())


def _flag_builder(flag):
    """Fails (error record) while the flag file exists, then recovers."""
    if os.path.exists(flag):
        raise RuntimeError("flagged to fail")
    return generate_star(StarSpec(hosts=4, kind="hub"))


# ---------------------------------------------------------------------------
# the sweep engine under injected faults


class TestSweepChaos:
    def test_catalog_sweep_survives_killed_and_hung_workers(self, tmp_path):
        # The PR's acceptance scenario: a full catalog sweep with a seeded
        # plan that kills two workers and hangs one task still completes,
        # with every scenario ok or explicitly failed — no hang, no lost
        # records.
        names = scenario_names()
        _arm(FaultPlan(seed=8, specs=(
            FaultSpec(kind="kill", match="ring-4", on_attempts=(0,)),
            FaultSpec(kind="kill", match="campus-open", on_attempts=(0,)),
            FaultSpec(kind="hang", match="star-hub-8", on_attempts=(0,),
                      delay_s=30.0),
        )))
        deaths_before = _counter("repro_sweep_worker_deaths_total")
        result = run_sweep(names=names, jobs=4, cache_dir=str(tmp_path),
                           retries=2, task_deadline_s=8.0)
        assert [r.scenario for r in result.records] == names
        assert all(r.status in ("ok", "failed") for r in result.records)
        # The seeded faults are recoverable (attempt 0 only): all ok.
        assert result.errors == []
        stored = load_jsonl(result.out_path)
        assert sorted(r.scenario for r in stored) == sorted(names)
        # The kill faults fire (and count) inside worker processes that die
        # with their metrics: the parent-side evidence is the death and
        # deadline detection counters.
        assert _counter("repro_sweep_worker_deaths_total") >= \
            deaths_before + 2
        assert _counter("repro_sweep_task_deadlines_total") >= 1
        assert _counter("repro_sweep_pool_respawns_total") >= 1

    def test_poisoned_scenario_is_quarantined_not_lost(self, tmp_path):
        # A scenario whose worker dies on *every* attempt must exhaust its
        # retries and land as an explicit status="failed" record.
        _arm(FaultPlan(specs=(
            FaultSpec(kind="kill", match="ring-4", times=-1),)))
        quarantined_before = _counter("repro_sweep_tasks_quarantined_total")
        result = run_sweep(names=["ring-4", "star-hub-8"], jobs=2,
                           cache_dir=str(tmp_path), retries=1,
                           task_deadline_s=2.0)
        by_name = {r.scenario: r for r in result.records}
        assert by_name["star-hub-8"].ok
        poisoned = by_name["ring-4"]
        assert poisoned.status == "failed"
        assert "quarantined" in poisoned.error
        assert _counter("repro_sweep_tasks_quarantined_total") == \
            quarantined_before + 1
        # The quarantine record is stored, not dropped.
        stored = {r.scenario: r for r in load_jsonl(result.out_path)}
        assert stored["ring-4"].status == "failed"
        # A failed record is never cached: the next sweep re-tries it.
        clear_plan()
        again = run_sweep(names=["ring-4"], jobs=1, cache_dir=str(tmp_path))
        assert again.records[0].ok

    def test_injected_raise_is_retried_in_serial_sweeps(self, tmp_path):
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="raise", match="star-hub-8", on_attempts=(0,)),)))
        result = run_sweep(names=["star-hub-8"], jobs=1,
                           cache_dir=str(tmp_path), retries=2)
        assert result.records[0].ok
        assert _counter("repro_faults_injected_total",
                        site="worker", kind="raise") >= 1

    def test_serial_poison_quarantines_too(self, tmp_path):
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="raise", match="star-hub-8", times=-1),)))
        result = run_sweep(names=["star-hub-8"], jobs=1,
                           cache_dir=str(tmp_path), retries=1)
        record = result.records[0]
        assert record.status == "failed"
        assert "quarantined" in record.error


# ---------------------------------------------------------------------------
# the serve dispatcher under injected faults


class TestServeChaos:
    def test_dispatcher_survives_killed_worker(self, tmp_path):
        # Satellite regression: async_result.get() on a task whose worker
        # was SIGKILLed used to raise out of the dispatcher loop, killing
        # job processing for the life of the server.
        _arm(FaultPlan(specs=(
            FaultSpec(kind="kill", match="ring-4", times=-1),)))

        async def scenario():
            queue = JobQueue(cache_dir=str(tmp_path), pool_processes=1,
                             timeout_s=60.0, retries=0)
            queue.start()
            try:
                job = queue.submit("ring-4")
                deadline = time.monotonic() + 60.0
                while not job.done:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)
                assert job.status == "error"
                assert "worker lost" in job.error
                # The dispatcher is still alive: the next job completes.
                clear_plan()
                follow_up = queue.submit("star-hub-8")
                while not follow_up.done:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.05)
                assert follow_up.status == "ok"
            finally:
                await queue.close()

        asyncio.run(scenario())

    def test_killed_worker_is_retried_and_healthz_stays_green(self, tmp_path):
        _arm(FaultPlan(specs=(
            FaultSpec(kind="kill", match="ring-4", on_attempts=(0,)),)))

        async def scenario(app, port):
            body = json.dumps({"scenario": "ring-4"}).encode()
            status, blob = await _http(port, "POST", "/runs", body)
            assert status == 202
            payload = await _wait_job(port, json.loads(blob)["id"])
            assert payload["status"] == "ok"
            assert payload["retries_used"] >= 1
            status, blob = await _http(port, "GET", "/healthz")
            health = json.loads(blob)
            assert status == 200 and health["status"] == "ok"
            assert health["draining"] is False
            status, blob = await _http(port, "GET", "/metrics")
            assert status == 200
            assert b"repro_job_retries_total" in blob
            assert b"repro_faults_injected_total" in blob

        _with_app(scenario, cache_dir=str(tmp_path), pool_processes=1,
                  job_retries=2)
        retried = sum(_counter("repro_job_retries_total", reason=reason)
                      for reason in ("worker-death", "worker-crash",
                                     "pool-respawn"))
        assert retried >= 1

    def test_breaker_trips_on_repeated_failures_and_recovers(self, tmp_path):
        flag = str(tmp_path / "failing.flag")
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("fail\n")
        # Under `make chaos` the bundles land in CHAOS_flight/ so CI can
        # assert and archive them; standalone runs use the test tmp dir.
        flight_dir = os.environ.get("REPRO_CHAOS_FLIGHT_DIR") or \
            str(tmp_path / "flight")
        register_scenario("test-chaos-flaky", family="test-internal",
                          flag=flag)(_flag_builder)
        try:
            async def scenario(app, port):
                body = json.dumps({"scenario": "test-chaos-flaky"}).encode()
                for _ in range(2):          # threshold: 2 straight failures
                    status, blob = await _http(port, "POST", "/runs", body)
                    assert status == 202
                    payload = await _wait_job(port, json.loads(blob)["id"])
                    assert payload["status"] == "error"
                # Open: submissions are rejected with 503, but the server
                # itself stays healthy.
                status, blob = await _http(port, "POST", "/runs", body)
                assert status == 503
                status, blob = await _http(port, "GET", "/healthz")
                health = json.loads(blob)
                assert status == 200 and health["status"] == "ok"
                assert health["breakers"]["test-chaos-flaky"]["state"] == \
                    "open"
                status, blob = await _http(port, "GET", "/metrics")
                assert b"repro_breaker_transitions_total" in blob
                # Fix the scenario, wait out the cooldown: the half-open
                # probe succeeds and the breaker closes.
                os.remove(flag)
                await asyncio.sleep(0.35)
                status, blob = await _http(port, "POST", "/runs", body)
                assert status == 202
                payload = await _wait_job(port, json.loads(blob)["id"])
                assert payload["status"] == "ok"
                status, blob = await _http(port, "GET", "/healthz")
                assert json.loads(blob)["breakers"] == {}

            _with_app(scenario, cache_dir=str(tmp_path), pool_processes=1,
                      breaker_threshold=2, breaker_cooldown_s=0.3,
                      flight_dir=flight_dir)
            assert _counter("repro_breaker_transitions_total", to="open") >= 1
            assert _counter("repro_breaker_transitions_total",
                            to="closed") >= 1
            # The breaker opening must have produced a forensics bundle
            # (the dump runs on a daemon thread, so poll briefly).
            bundle = self._wait_for_bundle(flight_dir, "breaker-open")
            with open(bundle, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            assert doc["reason"] == "breaker-open"
            assert isinstance(doc["spans"], list)
            if os.environ.get("REPRO_CHAOS_SPAN_LOG"):
                # Under `make chaos` the conftest arms full sampling, so
                # the bundle must carry the span ring tail.
                assert doc["spans"], "bundle carries the span ring tail"
            assert doc["metrics_history"]["snapshots"] >= 1
            # The dump runs concurrently with the test's recovery phase, so
            # the captured breaker may already be half-open/closed again;
            # only its presence in the health snapshot shape is guaranteed.
            assert "breakers" in doc["healthz"]
        finally:
            unregister("test-chaos-flaky")

    @staticmethod
    def _wait_for_bundle(flight_dir, reason, timeout=10.0):
        import glob

        pattern = os.path.join(flight_dir, f"flight-{reason}-*.json")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            found = sorted(glob.glob(pattern))
            if found:
                return found[-1]
            time.sleep(0.05)
        raise AssertionError(f"no flight bundle matching {pattern}")

    def test_open_breaker_rejects_at_submit(self, tmp_path):
        queue = JobQueue(cache_dir=str(tmp_path), breaker_threshold=1)
        queue.breakers.record("doomed", ok=False)
        with pytest.raises(CircuitOpen):
            queue.breakers.allow("doomed")

    def test_persist_failure_degrades_to_in_memory_fallback(self, tmp_path):
        # Store writes fail (disk full): the job still completes, the
        # record lands in the store's in-memory fallback, queries keep
        # answering, and nothing raises out of the dispatcher.
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match=str(tmp_path), times=-1),)))
        persist_errors_before = _counter("repro_job_persist_errors_total")

        async def scenario(app, port):
            body = json.dumps({"scenario": "star-hub-8"}).encode()
            status, blob = await _http(port, "POST", "/runs", body)
            assert status == 202
            payload = await _wait_job(port, json.loads(blob)["id"])
            assert payload["status"] == "ok"
            # The record is queryable despite the dead disk.
            status, blob = await _http(
                port, "GET", "/results?scenario=star-hub-8")
            assert status == 200
            results = json.loads(blob)
            assert results["total"] == 1
            assert app.store.fallback_count() == 1
            status, blob = await _http(port, "GET", "/healthz")
            health = json.loads(blob)
            assert status == 200 and health["status"] == "ok"
            assert health["store_fallback_records"] == 1
            # The disk recovers: flush lands the fallback records on disk.
            clear_plan()
            app.store.flush()
            assert app.store.fallback_count() == 0

        _with_app(scenario, cache_dir=str(tmp_path), pool_processes=1)
        assert _counter("repro_job_persist_errors_total") > \
            persist_errors_before
        assert _counter("repro_store_fallback_records_total") >= 1
        records = load_jsonl(default_store_path(str(tmp_path)))
        assert any(r.scenario == "star-hub-8" and r.ok for r in records)


# ---------------------------------------------------------------------------
# SIGTERM graceful drain (whole-process)


class TestGracefulDrain:
    def test_sigterm_drains_jobs_and_exits_zero(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        env.pop("REPRO_FAULT_PLAN", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--jobs", "1", "--cache-dir", str(tmp_path),
             "--trace-sample", "0", "--drain-timeout", "30"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline()
            assert "serving on http://" in line, line
            port = int(line.strip().rsplit(":", 1)[1])
            body = json.dumps({"scenario": "star-hub-8"}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/runs", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 202
            # SIGTERM immediately: the drain must finish the in-flight job
            # and persist its record before exiting cleanly.
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        records = load_jsonl(default_store_path(str(tmp_path)))
        assert any(r.scenario == "star-hub-8" and r.ok for r in records)


# ---------------------------------------------------------------------------
# two-process store resilience (satellite: injected ENOSPC/torn tails)


_WRITER_SCRIPT = """
import json, os, sys
sys.path.insert(0, {src!r})
from repro.sweep import SweepRecord, append_jsonl
committed = []
for index in range({count}):
    record = SweepRecord(scenario="chaos-%03d" % index, family="chaos",
                         scenario_hash="h", code_version="c", status="ok",
                         summary={{"payload": "x" * 120}})
    try:
        append_jsonl({store_path!r}, [record])
    except OSError:
        continue                      # not committed: the write failed
    committed.append(record.scenario)
print(json.dumps(committed))
"""


class TestStoreResilienceTwoProcess:
    N_RECORDS = 40

    def test_no_committed_record_is_lost_to_injected_write_faults(
            self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        # The child writer's appends fail probabilistically — flat ENOSPC
        # and torn half-lines both — while this process reads the store
        # (with its *own* sidecar-write faults) mid-stream.
        child_plan = FaultPlan(seed=13, specs=(
            FaultSpec(kind="enospc", match="results.jsonl",
                      probability=0.2, times=-1),
            FaultSpec(kind="torn", match="results.jsonl",
                      probability=0.2, times=-1),
        ))
        env = dict(os.environ, REPRO_FAULT_PLAN=child_plan.to_json())
        writer = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT.format(
                src=SRC, count=self.N_RECORDS, store_path=store_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        # This process: the sidecar index write fails (advisory — queries
        # must keep working off the in-memory index).
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match=".idx.json", times=-1),)))
        sidecar_errors_before = _counter(
            "repro_store_sidecar_write_errors_total")
        store = ResultStore(store_path)
        try:
            while writer.poll() is None:
                if os.path.exists(store_path):
                    records, total = store.query(family="chaos", limit=5)
                    assert len(records) <= total
                time.sleep(0.01)
        finally:
            out, err = writer.communicate(timeout=120)
            store.close()
        assert writer.returncode == 0, err
        committed = json.loads(out)
        assert committed, "the child committed nothing — plan too harsh?"
        assert len(committed) < self.N_RECORDS, \
            "no fault ever fired — plan too lax?"
        assert _counter("repro_store_sidecar_write_errors_total") > \
            sidecar_errors_before
        # Every committed record survives both the torn tails around it and
        # the sidecar outage; a fresh store converges on the same truth.
        clear_plan()
        fresh = ResultStore(store_path)
        try:
            records, total = fresh.query(family="chaos",
                                         limit=self.N_RECORDS + 1)
            names = {r.scenario for r in records}
            assert total == len(committed)
            assert names == set(committed)
        finally:
            fresh.close()


# ---------------------------------------------------------------------------
# store degradation (in-memory fallback) unit coverage


class TestStoreFallback:
    def _record(self, name):
        return SweepRecord(scenario=name, family="chaos", scenario_hash="h",
                           code_version="c", status="ok",
                           summary={"completeness": 1.0})

    def test_remembered_records_answer_queries(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        try:
            append_jsonl(path, [self._record("on-disk")])
            token_before = store.state_token()
            store.remember([self._record("in-memory")])
            assert store.fallback_count() == 1
            assert store.count() == 2
            assert store.state_token() != token_before
            records, total = store.query(family="chaos", limit=10)
            assert total == 2
            # Fallback records are the newest.
            assert [r.scenario for r in records] == ["on-disk", "in-memory"]
            newest = store.query(family="chaos", limit=1,
                                 newest_first=True)[0]
            assert newest[0].scenario == "in-memory"
            assert store.latest("in-memory").scenario == "in-memory"
            entry = store.latest_entry("in-memory")
            assert entry is not None and entry.status == "ok"
            assert "in-memory" in store.scenarios_seen()
        finally:
            store.close()

    def test_flush_lands_fallback_records_on_disk(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        try:
            store.remember([self._record("parked")])
            store.flush()
            assert store.fallback_count() == 0
            records, total = store.query(scenario="parked", limit=1)
            assert total == 1 and records[0].scenario == "parked"
        finally:
            store.close()
        assert any(r.scenario == "parked" for r in load_jsonl(path))
