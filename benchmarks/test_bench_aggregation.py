"""CLM-AGGR — composing indirect estimates (completeness example of §2.3).

*"Latency between A and C can then be roughly estimated by adding the
latencies measured on AB and on BC.  The minimum of the bandwidths on AB and
BC can be used to estimate the one on AC."*  The benchmark aggregates
estimates for every unmeasured ENS-Lyon pair from the ENV plan's measured
pairs and reports the error against ground truth, both from the analytic
oracle and from a real simulated NWS run.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core import Aggregator, ground_truth_store
from repro.netsim import FlowModel
from repro.nws import NWSConfig, NWSSystem, NWSClient
from repro.simkernel import Engine


def test_bench_aggregation_accuracy(benchmark, ens_lyon, ens_plan):
    aggregator = Aggregator(ens_plan, ground_truth_store(ens_lyon))
    estimates = benchmark(aggregator.estimate_all_pairs)

    reference = FlowModel(Engine(), ens_lyon)
    rows = []
    bw_errors = {"direct": [], "representative": [], "aggregated": []}
    for pair, estimate in estimates.items():
        a, b = sorted(pair)
        truth = reference.single_flow_mbps(a, b)
        error = abs(estimate.bandwidth_mbps - truth) / truth
        bw_errors[estimate.method].append(error)
    for method, errors in bw_errors.items():
        rows.append({
            "method": method,
            "pairs": len(errors),
            "mean bandwidth error": round(float(np.mean(errors)), 3) if errors else "-",
            "max bandwidth error": round(float(np.max(errors)), 3) if errors else "-",
        })
    print("\n[CLM-AGGR] end-to-end estimates from the ENV plan's measurements")
    print(render_table(rows))

    n = len(ens_plan.hosts)
    assert len(estimates) == n * (n - 1) // 2  # completeness
    assert float(np.mean(bw_errors["aggregated"])) < 0.15
    # the gateway example of the paper: moby -- (gateway path) --> sci3
    example = estimates[frozenset(("moby", "sci3"))]
    assert example.method == "aggregated"
    assert example.bandwidth_mbps == pytest.approx(10.0, rel=0.05)
    print(f"  example (paper §2.3): moby->sci3 estimated at "
          f"{example.bandwidth_mbps:.1f} Mbit/s via {' -> '.join(example.path)}")


def test_bench_aggregation_from_running_nws(ens_lyon, ens_plan):
    system = NWSSystem(ens_lyon, ens_plan, config=NWSConfig(token_hold_gap_s=1.0))
    system.run(200.0)
    client = NWSClient(system)
    reference = FlowModel(Engine(), ens_lyon)

    answer = client.bandwidth("the-doors", "sci3")
    truth = reference.single_flow_mbps("the-doors", "sci3")
    print("\n[CLM-AGGR] aggregated forecast from a running NWS deployment")
    print(f"  the-doors -> sci3: forecast {answer.forecast.value:.1f} Mbit/s "
          f"({answer.method}), ground truth {truth:.1f} Mbit/s")
    assert answer.method == "aggregated"
    assert answer.forecast.value == pytest.approx(truth, rel=0.25)
    assert client.availability() == pytest.approx(1.0)
