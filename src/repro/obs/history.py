"""Metrics history: a fixed-size ring of registry snapshots with windows.

``/metrics`` answers "what is the value *now*"; :class:`MetricsHistory`
answers "what happened over the last N seconds" without an external
time-series database.  A daemon thread snapshots the shared
:class:`~repro.obs.metrics.MetricsRegistry` every ``interval_s`` into a
``deque(maxlen=capacity)`` — memory is bounded by the ring size no
matter how long the process runs or how big the store grows.

:meth:`MetricsHistory.window` derives what a dashboard actually wants
from the raw snapshots:

* **counters** → per-window delta and ``rate_per_s`` (monotonic-clock
  denominator, so wall-clock jumps cannot fake a rate);
* **gauges** → last/min/max over the window;
* **histograms** → observation rate plus p50/p95/p99 estimated from the
  window's *bucket deltas* (the cumulative-bucket math Prometheus'
  ``histogram_quantile`` does server-side).

Series keys are ``name`` or ``name{label=value,...}`` with labels sorted
by name, so the same series always folds into the same key.  The serve
layer exposes this as ``GET /metrics/history?window=&names=`` and
``repro top`` renders it as a live dashboard (``obs/export.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from .logs import get_logger, kv
from .metrics import REGISTRY, MetricsRegistry

_LOG = get_logger("obs.history")

__all__ = ["MetricsHistory", "percentile_from_buckets"]

#: Default ring: 360 snapshots x 5 s = a 30-minute window.
DEFAULT_CAPACITY = 360
DEFAULT_INTERVAL_S = 5.0
#: ``window()`` returns at most this many series unless filtered by name
#: — the endpoint's response size stays bounded even against a registry
#: with unbounded label cardinality.
MAX_SERIES = 64


def _series_key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(key: str) -> str:
    return key.split("{", 1)[0]


def percentile_from_buckets(buckets: Dict[str, int],
                            q: float) -> Optional[float]:
    """Estimate the q-quantile from *delta* cumulative bucket counts.

    ``buckets`` maps formatted upper bounds (``"0.05"``, ``"+Inf"``) to
    cumulative counts over the window.  Returns the upper bound of the
    first bucket whose cumulative count reaches ``q * total`` — ``None``
    when the window saw no observations or the quantile falls in +Inf
    (no finite upper bound to report).
    """
    finite = sorted(
        ((float(bound), count) for bound, count in buckets.items()
         if bound != "+Inf"), key=lambda item: item[0])
    total = buckets.get("+Inf", finite[-1][1] if finite else 0)
    if total <= 0:
        return None
    threshold = q * total
    for bound, cumulative in finite:
        if cumulative >= threshold:
            return bound
    return None


class MetricsHistory:
    """The bounded snapshot ring (see the module docstring)."""

    def __init__(self, registry: MetricsRegistry = REGISTRY,
                 capacity: int = DEFAULT_CAPACITY,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 on_snapshot: Optional[Callable[[], None]] = None) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, object]]" = deque(
            maxlen=max(2, int(capacity)))
        self._types: Dict[str, str] = {}
        self._generation = 0
        self._stop_event: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.capacity = max(2, int(capacity))
        self.interval_s = float(interval_s)
        self.on_snapshot = on_snapshot
        self.snap_errors = 0

    # -- snapshotting --------------------------------------------------------

    def snap(self, ts: Optional[float] = None,
             mono: Optional[float] = None) -> Dict[str, object]:
        """Take one snapshot now (clock overrides are test hooks)."""
        snapshot = self._registry.snapshot()
        values: Dict[str, Optional[float]] = {}
        hists: Dict[str, Dict[str, object]] = {}
        for name, doc in snapshot.items():
            kind = doc.get("type", "gauge")
            self._types[name] = kind
            for series in doc.get("series", ()):
                key = _series_key(name, series.get("labels", {}))
                if kind == "histogram":
                    hists[key] = {"count": series.get("count", 0),
                                  "sum": series.get("sum", 0.0),
                                  "buckets": dict(series.get("buckets", {}))}
                else:
                    values[key] = series.get("value")
        entry = {
            "ts": time.time() if ts is None else ts,
            "mono": time.monotonic() if mono is None else mono,
            "values": values,
            "hists": hists,
        }
        with self._lock:
            self._ring.append(entry)
        if self.on_snapshot is not None:
            try:
                self.on_snapshot()
            except Exception as exc:   # noqa: BLE001 — a broken breach
                # hook must not stop history collection.
                self.snap_errors += 1
                _LOG.warning("event=history_hook_failed %s",
                             kv(error=type(exc).__name__))
        return entry

    def _loop(self, generation: int, stop: threading.Event) -> None:
        while not stop.wait(self.interval_s):
            with self._lock:
                if generation != self._generation:
                    return
            try:
                self.snap()
            except Exception as exc:   # noqa: BLE001 — keep the ring
                # alive through a single bad scrape.
                self.snap_errors += 1
                _LOG.warning("event=history_snap_failed %s",
                             kv(error=type(exc).__name__))

    def start(self) -> None:
        """Start the snapshot thread; idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._generation += 1
            stop = threading.Event()
            thread = threading.Thread(
                target=self._loop, args=(self._generation, stop),
                name="repro-metrics-history", daemon=True)
            self._stop_event = stop
            self._thread = thread
        self.snap()
        thread.start()

    def stop(self) -> None:
        thread = None
        with self._lock:
            self._generation += 1
            if self._stop_event is not None:
                self._stop_event.set()
                thread = self._thread
            self._stop_event = None
            self._thread = None
        if thread is not None:
            thread.join(timeout=1.0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- windows -------------------------------------------------------------

    def window(self, seconds: float,
               names: Optional[Sequence[str]] = None) -> Dict[str, object]:
        """Derive rates/quantiles over the trailing ``seconds`` (see the
        module docstring for the per-kind semantics)."""
        with self._lock:
            entries = list(self._ring)
        if not entries:
            return {"window_s": seconds, "interval_s": self.interval_s,
                    "snapshots": 0, "from_ts": None, "to_ts": None,
                    "series": {}}
        horizon = entries[-1]["mono"] - float(seconds)
        entries = [e for e in entries if e["mono"] >= horizon]
        span = entries[-1]["mono"] - entries[0]["mono"]

        keys: List[str] = []
        seen = set()
        for entry in entries:
            for key in list(entry["values"]) + list(entry["hists"]):
                if key not in seen:
                    seen.add(key)
                    keys.append(key)
        if names:
            prefixes = tuple(names)
            keys = [k for k in keys
                    if any(k == p or k.startswith(p + "{")
                           for p in prefixes)]
        truncated = max(0, len(keys) - MAX_SERIES)
        keys = keys[:MAX_SERIES]

        series: Dict[str, Dict[str, object]] = {}
        for key in keys:
            kind = self._types.get(base_name(key), "gauge")
            if kind == "histogram":
                series[key] = self._hist_series(key, entries, span)
            else:
                series[key] = self._scalar_series(key, kind, entries, span)
        doc: Dict[str, object] = {
            "window_s": float(seconds),
            "interval_s": self.interval_s,
            "snapshots": len(entries),
            "from_ts": entries[0]["ts"],
            "to_ts": entries[-1]["ts"],
            "series": series,
        }
        if truncated:
            doc["truncated_series"] = truncated
        return doc

    @staticmethod
    def _scalar_series(key: str, kind: str, entries, span: float
                       ) -> Dict[str, object]:
        points = [[e["ts"], e["values"][key]] for e in entries
                  if key in e["values"]]
        present = [p[1] for p in points if p[1] is not None]
        doc: Dict[str, object] = {"type": kind, "points": points}
        if not present:
            return doc
        if kind == "counter":
            delta = present[-1] - present[0]
            doc["delta"] = delta
            doc["rate_per_s"] = (delta / span) if span > 0 else None
        else:
            doc["last"] = present[-1]
            doc["min"] = min(present)
            doc["max"] = max(present)
        return doc

    @staticmethod
    def _hist_series(key: str, entries, span: float) -> Dict[str, object]:
        snaps = [(e["ts"], e["hists"][key]) for e in entries
                 if key in e["hists"]]
        doc: Dict[str, object] = {
            "type": "histogram",
            "points": [[ts, h["count"], h["sum"]] for ts, h in snaps],
        }
        if len(snaps) < 1:
            return doc
        first, last = snaps[0][1], snaps[-1][1]
        count_delta = last["count"] - first["count"]
        doc["count_delta"] = count_delta
        doc["rate_per_s"] = (count_delta / span) if span > 0 else None
        delta_buckets = {
            bound: last["buckets"].get(bound, 0)
            - first["buckets"].get(bound, 0)
            for bound in last["buckets"]}
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            doc[label] = percentile_from_buckets(delta_buckets, q)
        return doc
