"""OBS — the tracing layer's overhead gate on the fast-path benchmark.

The observability layer promises to be *near-free when disabled* and cheap
when on: every pipeline stage, mapper phase and replay epoch is wrapped in
a :meth:`~repro.obs.trace.Tracer.span` call, so a regression here taxes
every run, traced or not.  Two properties are asserted on the same
largest-WAN-grid scenario the FASTPATH benchmark gates:

* at sample rate **1.0** — every span recorded, perf deltas attached, and
  each span appended to a JSONL span log — the end-to-end pipeline slows
  down by less than **5%** against the untraced run;
* **disabled** (sample rate 0, the default), one ``span()`` call costs
  well under a microsecond — a single ``ContextVar`` read — so the
  instrumentation's resting cost is unmeasurable at pipeline scale.

The span log of the traced rounds is written to ``BENCH_spans.jsonl``
(override: ``BENCH_SPANS_PATH``) and re-parsed as part of the benchmark,
so CI can archive a real trace artifact from every run.
"""

from __future__ import annotations

import os
import time

from repro.obs import TRACER, load_span_log
from repro.pipeline import run_pipeline
from repro.scenarios import get_scenario

from test_bench_fastpath import LARGEST_WAN_GRID

MAX_TRACED_OVERHEAD_PCT = 5.0
#: Near-free: one disabled span() call reduces to a ContextVar read.
MAX_DISABLED_SPAN_NS = 2_000
ROUNDS = 7

SPANS_PATH = os.environ.get("BENCH_SPANS_PATH", "BENCH_spans.jsonl")


def _one_round(scenario, traced: bool) -> float:
    """Wall time of one pipeline run on a fresh platform."""
    platform = scenario.build()
    start = time.perf_counter()
    if traced:
        TRACER.configure(sample_rate=1.0)
        with TRACER.start_trace("bench.pipeline", scenario=scenario.name):
            run_pipeline(platform)
        TRACER.configure(sample_rate=0.0)
    else:
        run_pipeline(platform)
    return time.perf_counter() - start


def test_bench_tracing_overhead_under_full_sampling():
    scenario = get_scenario(LARGEST_WAN_GRID)
    TRACER.reset()
    if os.path.exists(SPANS_PATH):
        os.unlink(SPANS_PATH)
    try:
        TRACER.configure(log_path=SPANS_PATH)
        # Interleave the two modes so machine-load drift across the
        # measurement hits both equally, and compare the best rounds.
        untraced_s = traced_s = float("inf")
        _one_round(scenario, traced=False)          # warm-up, untimed
        for _ in range(ROUNDS):
            untraced_s = min(untraced_s, _one_round(scenario, traced=False))
            traced_s = min(traced_s, _one_round(scenario, traced=True))
        buffered = len(TRACER)
    finally:
        TRACER.reset()
    overhead_pct = (traced_s / untraced_s - 1.0) * 100.0
    spans = load_span_log(SPANS_PATH)
    per_round = {s["name"] for s in spans}
    print(f"\n[OBS] {scenario.name}: untraced {untraced_s:.3f}s, "
          f"traced+logged {traced_s:.3f}s -> {overhead_pct:+.2f}% "
          f"({len(spans)} spans logged, {buffered} buffered)")
    assert overhead_pct < MAX_TRACED_OVERHEAD_PCT, (
        f"tracing at sample 1.0 costs {overhead_pct:.2f}% on "
        f"{scenario.name} (budget: {MAX_TRACED_OVERHEAD_PCT}%)")
    # The trace is real: root + pipeline stages + mapper phases, on disk.
    assert {"bench.pipeline", "pipeline.map", "pipeline.plan",
            "pipeline.evaluate", "env.lookup", "env.structural",
            "env.refine"} <= per_round
    assert len(spans) == buffered


def test_bench_disabled_tracing_is_near_free():
    TRACER.reset()                       # sample rate 0, the default
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with TRACER.span("noop"):
            pass
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    print(f"\n[OBS] disabled span(): {per_call_ns:.0f} ns/call "
          f"({calls} calls)")
    assert len(TRACER) == 0              # nothing recorded
    assert per_call_ns < MAX_DISABLED_SPAN_NS, (
        f"a disabled span() call costs {per_call_ns:.0f} ns "
        f"(budget: {MAX_DISABLED_SPAN_NS} ns)")
