"""SCALE — mapping cost and plan quality on platforms of growing size (§4.3/§6).

The paper's scalability arguments are qualitative; this benchmark quantifies
them on synthetic constellations: how the number of ENV measurements, the
planning time and the plan quality evolve as the platform grows, compared
with the naive exhaustive-mapping cost and with the single-global-clique
deployment.
"""

import pytest

from repro.analysis import naive_mapping_experiments, render_table
from repro.core import evaluate_plan, global_clique_plan, plan_from_view
from repro.env import map_platform
from repro.netsim import SyntheticSpec, generate_constellation


def _platform(sites: int):
    return generate_constellation(SyntheticSpec(
        sites=sites, seed=31, hosts_per_cluster=(3, 4), clusters_per_site=(2, 3)))


def test_bench_scaling_with_platform_size(benchmark):
    site_counts = (1, 2, 4, 6)

    def run_all():
        results = []
        for sites in site_counts:
            platform = _platform(sites)
            master = platform.host_names()[0]
            view = map_platform(platform, master)
            plan = plan_from_view(view)
            results.append((sites, platform, view, plan))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for sites, platform, view, plan in results:
        n = len(platform.host_names())
        quality = evaluate_plan(plan, platform)
        global_quality = evaluate_plan(global_clique_plan(platform), platform)
        rows.append({
            "sites": sites,
            "hosts": n,
            "env_measurements": view.stats.measurements,
            "naive_experiments": naive_mapping_experiments(n),
            "cliques": quality.n_cliques,
            "worst_period_s": quality.worst_period_s,
            "global_clique_period_s": global_quality.worst_period_s,
            "completeness": round(quality.completeness, 3),
            "intrusiveness": round(quality.intrusiveness, 3),
        })
    print("\n[SCALE] ENV mapping and deployment quality vs. platform size")
    print(render_table(rows))

    hosts = [row["hosts"] for row in rows]
    env_cost = [row["env_measurements"] for row in rows]
    assert hosts == sorted(hosts) and hosts[-1] > hosts[0]
    # ENV probing grows with the platform but stays far below the naive cost.
    assert all(row["env_measurements"] < row["naive_experiments"] / 10
               for row in rows)
    assert env_cost == sorted(env_cost)
    # The planned deployment keeps completeness while its worst measurement
    # period grows much more slowly than the single global clique's.
    for row in rows:
        assert row["completeness"] == pytest.approx(1.0)
    assert rows[-1]["worst_period_s"] < rows[-1]["global_clique_period_s"] / 5
    # Intrusiveness (fraction of pairs probed directly) drops as the platform
    # grows: the hierarchy amortises measurements.
    assert rows[-1]["intrusiveness"] < rows[0]["intrusiveness"]
