"""Network Weather Service simulator: sensors, memories, forecasters, cliques."""

from .api import NWSClient
from .clique import CliqueRunner, CliqueStats
from .config import NWSConfig
from .experiments import (
    METRIC_BANDWIDTH,
    METRIC_CONNECT,
    METRIC_LATENCY,
    ExperimentResult,
    LinkExperiment,
)
from .forecasting import (
    ExponentialSmoothingForecaster,
    Forecast,
    Forecaster,
    ForecasterBank,
    LastValueForecaster,
    RunningMeanForecaster,
    SlidingWindowMeanForecaster,
    SlidingWindowMedianForecaster,
    default_forecasters,
)
from .memory import Measurement, MemoryServer, Series
from .nameserver import NameServer, Registration
from .sensor import Sensor
from .system import NWSSystem, QueryAnswer

__all__ = [
    "NWSConfig",
    "NameServer", "Registration",
    "MemoryServer", "Series", "Measurement",
    "Sensor",
    "LinkExperiment", "ExperimentResult",
    "METRIC_BANDWIDTH", "METRIC_LATENCY", "METRIC_CONNECT",
    "CliqueRunner", "CliqueStats",
    "Forecaster", "ForecasterBank", "Forecast", "default_forecasters",
    "LastValueForecaster", "RunningMeanForecaster", "SlidingWindowMeanForecaster",
    "SlidingWindowMedianForecaster", "ExponentialSmoothingForecaster",
    "NWSSystem", "QueryAnswer", "NWSClient",
]
