"""Noqa fixture: suppressed RC002/RC005/RC006 violations."""


class Platform:
    def __init__(self):
        self.links = {}
        self._version = 0

    def waived_mutator(self, name, bw):
        self.links[name] = bw        # repro: noqa[RC002]


def waived_silent():
    try:
        raise ValueError("boom")
    except ValueError:               # repro: noqa[RC005]
        pass


def waived_lambda(pool):
    pool.apply_async(lambda: 1)      # repro: noqa[RC006]
