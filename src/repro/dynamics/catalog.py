"""The built-in dynamic-scenario catalog.

Eight churn schedules layered on the PR-1 static catalog, chosen to exercise
every branch of the maintenance loop:

* pure condition drift (the incremental remapper's sweet spot),
* link failures and repairs (full-remap fallback on re-routing),
* host join/leave (membership churn),
* route flaps (traceroute-visible path changes),
* and mixes of the above.

Like the static catalog, registration is idempotent: call
:func:`load_dynamic_catalog` as often as needed.
"""

from __future__ import annotations

from .scenarios import register_dynamic_scenario

__all__ = ["load_dynamic_catalog"]


def load_dynamic_catalog() -> None:
    """(Re-)register every built-in dynamic scenario.  Idempotent."""
    register_dynamic_scenario(
        "dyn-wan-drift", base="wan-grid-3x2", tags=("drift",),
        description="WAN grid with pure backbone bandwidth/latency drift",
        epochs=12, seed=101, drift_rate=1.5,
        drift_factor_range=(0.3, 2.5), latency_drift_share=0.25)

    register_dynamic_scenario(
        "dyn-wan-failures", base="wan-grid-2x2", tags=("failures",),
        description="WAN grid with drift plus redundant-link failure/repair",
        epochs=12, seed=37, drift_rate=0.8,
        drift_factor_range=(0.5, 1.8),
        failure_rate=0.35, repair_delay=2)

    register_dynamic_scenario(
        "dyn-campus-flap", base="campus-open", tags=("flaps",),
        description="Open campus with route flaps over drifting links",
        epochs=12, seed=59, drift_rate=0.7,
        drift_factor_range=(0.5, 1.6), flap_rate=0.3)

    register_dynamic_scenario(
        "dyn-campus-churn", base="campus-open", tags=("membership",),
        description="Open campus with hosts joining and leaving departments",
        epochs=12, seed=71, drift_rate=0.5,
        drift_factor_range=(0.6, 1.5),
        join_rate=0.3, leave_rate=0.25)

    register_dynamic_scenario(
        "dyn-ring-degrade", base="ring-4", tags=("drift",),
        description="WAN ring whose links progressively degrade",
        epochs=10, seed=83, drift_rate=1.2,
        drift_factor_range=(0.25, 1.1), latency_drift_share=0.2)

    register_dynamic_scenario(
        "dyn-hub-flash", base="star-hub-8", tags=("drift",),
        description="Shared hub under flash-crowd style capacity swings",
        epochs=10, seed=97, drift_rate=1.0,
        drift_factor_range=(0.2, 3.0), latency_drift_share=0.0)

    register_dynamic_scenario(
        "dyn-fat-tree-joins", base="fat-tree-2x2", tags=("membership",),
        description="Fat-tree LAN steadily gaining hosts on its edges",
        epochs=10, seed=113, drift_rate=0.4,
        drift_factor_range=(0.7, 1.4), join_rate=0.5)

    register_dynamic_scenario(
        "dyn-degraded-mixed", base="degraded-asym", tags=("mixed",),
        description="Degraded platform with drift and route flaps combined",
        epochs=10, seed=127, drift_rate=1.0,
        drift_factor_range=(0.4, 2.0), flap_rate=0.25)


load_dynamic_catalog()
