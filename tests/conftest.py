"""Shared fixtures.

The ENS-Lyon platform, its ENV views and the derived deployment plan are
expensive enough to be worth sharing across the test session; they are all
deterministic, and tests never mutate them (tests that need to mutate build
their own instances).
"""

from __future__ import annotations

import os

import pytest

from repro.core import plan_from_view
from repro.env import map_ens_lyon, map_platform
from repro.netsim import PRIVATE_HOSTS, PUBLIC_HOSTS, build_ens_lyon
from repro.obs import TRACER
from repro.scenarios import registry_snapshot, restore_registry

# The chaos harness (`make chaos`, the CI chaos job) exports
# REPRO_CHAOS_SPAN_LOG so a failing seeded chaos run leaves a span log
# behind for post-mortem rendering (`repro trace <log>`).
_CHAOS_SPAN_LOG = os.environ.get("REPRO_CHAOS_SPAN_LOG")
if _CHAOS_SPAN_LOG:
    TRACER.configure(sample_rate=1.0, log_path=_CHAOS_SPAN_LOG)


@pytest.fixture(autouse=True)
def _scenario_registry_isolation():
    """Restore the scenario registry around every test.

    Tests may clear the registry or register throwaway scenarios; without
    this fixture the visible registrations (and therefore scenario listings,
    sweep selections and cache keys) would depend on test execution order.
    """
    snapshot = registry_snapshot()
    yield
    restore_registry(snapshot)


@pytest.fixture(scope="session")
def ens_lyon():
    """The ENS-Lyon platform of Figure 1(a) (firewalled, asymmetric routes)."""
    return build_ens_lyon()


@pytest.fixture(scope="session")
def public_view(ens_lyon):
    """ENV view of the public side, master the-doors."""
    return map_platform(ens_lyon, "the-doors", hosts=PUBLIC_HOSTS)


@pytest.fixture(scope="session")
def private_view(ens_lyon):
    """ENV view of the popc.private side, master popc0."""
    return map_platform(ens_lyon, "popc0", hosts=PRIVATE_HOSTS)


@pytest.fixture(scope="session")
def merged_view(ens_lyon):
    """The merged effective view of Figure 1(b)."""
    return map_ens_lyon(ens_lyon)


@pytest.fixture(scope="session")
def ens_plan(merged_view):
    """The NWS deployment plan of Figure 3."""
    return plan_from_view(merged_view)
