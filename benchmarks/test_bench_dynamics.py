"""DYNAMICS — incremental ENV remapping vs the full-remap oracle.

The maintenance argument of `repro.dynamics`: on a churning WAN grid, the
monitor → detect → patch loop keeps the deployment current at a small
fraction of the cost of re-mapping every epoch, while the resulting plans
stay within a few percent of the full-remap oracle's quality.  Two views:

* a microbenchmark of one remap decision (patch one drifted cluster vs map
  the whole platform), and
* the end-to-end replay of the ``dyn-wan-drift`` scenario with the oracle
  track enabled.
"""

import time

from repro.analysis import render_table
from repro.dynamics import full_remap, incremental_remap, run_replay
from repro.dynamics.monitor import DriftReport
from repro.env import map_platform
from repro.netsim.generators import WanGridSpec, generate_wan_grid

#: Acceptance thresholds: incremental must be at least this much cheaper
#: than a full remap, at no more than this much plan-quality loss.
MIN_SPEEDUP = 3.0
MAX_QUALITY_GAP = 0.05


def test_bench_incremental_remap_vs_full():
    platform = generate_wan_grid(WanGridSpec(rows=3, cols=2, seed=23))
    master = platform.host_names()[0]
    view = map_platform(platform, master)
    leaf = view.classified_networks()[0]

    # Degrade one cluster's up-link, flag exactly that cluster.
    uplink = next(l for l in platform.links.values()
                  if leaf.hosts[0] in (l.a, l.b))
    platform.set_link_bandwidth(uplink.name, uplink.bandwidth_mbps * 0.2)
    report = DriftReport(epoch=1, drifted_pairs=[tuple(leaf.hosts[:2])],
                         suspect_labels=[leaf.label])

    # Best of a few repetitions (both paths are sub-millisecond here).
    patch, patch_s = None, float("inf")
    full = None
    for _ in range(5):
        start = time.perf_counter()
        candidate = incremental_remap(platform, view, report)
        patch_s = min(patch_s, time.perf_counter() - start)
        patch = candidate
        attempt = full_remap(platform, master)
        if full is None or attempt.seconds < full.seconds:
            full = attempt

    rows = [
        {"mode": "incremental (1 cluster)", "measurements":
         patch.stats.measurements, "traceroutes": patch.stats.traceroutes,
         "wall_s": round(patch_s, 4)},
        {"mode": "full remap", "measurements": full.stats.measurements,
         "traceroutes": full.stats.traceroutes,
         "wall_s": round(full.seconds, 4)},
    ]
    meas_ratio = full.stats.measurements / max(patch.stats.measurements, 1)
    time_ratio = full.seconds / max(patch_s, 1e-9)
    print(f"\n[DYNAMICS] one remap decision on wan-grid-3x2 "
          f"({len(platform.host_names())} hosts): "
          f"{meas_ratio:.1f}x fewer measurements, {time_ratio:.1f}x faster")
    print(render_table(rows))

    assert patch.mode == "incremental"
    assert meas_ratio >= MIN_SPEEDUP
    assert time_ratio >= MIN_SPEEDUP


def test_bench_dynamics_replay_vs_oracle():
    result = run_replay("dyn-wan-drift", oracle=True)

    print(f"\n[DYNAMICS] dyn-wan-drift replay: {len(result.records)} epochs, "
          f"master {result.master}, bootstrap "
          f"{result.bootstrap_measurements} measurements")
    print(render_table([r.as_row() for r in result.records]))

    # Remap probes are the cost the incremental strategy saves; the monitor
    # observations are the deployment's own periodic NWS measurements (taken
    # under either strategy), reported separately for honest accounting.
    inc_meas = sum(r.remap_measurements for r in result.records)
    inc_s = sum(r.remap_seconds for r in result.records)
    monitor_meas = result.remap_measurements - inc_meas
    oracle_meas = sum(r.oracle_measurements for r in result.records)
    oracle_s = sum(r.oracle_seconds for r in result.records)
    gaps = result.quality_gaps()
    counts = result.remap_counts

    print(render_table([
        {"track": "incremental remaps", "measurements": inc_meas,
         "wall_s": round(inc_s, 4),
         "remaps": f"{counts['incremental']} inc + {counts['full']} full"},
        {"track": "NWS monitoring (either strategy)",
         "measurements": monitor_meas, "wall_s": "-", "remaps": "-"},
        {"track": "full-remap oracle", "measurements": oracle_meas,
         "wall_s": round(oracle_s, 4),
         "remaps": f"{len(result.records)} full"},
    ]))
    print(f"remap speedup: {oracle_meas / max(inc_meas, 1):.1f}x "
          f"measurements, {oracle_s / max(inc_s, 1e-9):.1f}x wall clock; "
          f"quality gap completeness {gaps['completeness']:.4f}, "
          f"bw_err {gaps['bandwidth_error']:.4f}; "
          f"mean plan stability {result.mean_stability:.3f}")

    # The maintenance loop must actually react (not coast on a stale view)...
    assert counts["incremental"] + counts["full"] >= 1
    # ...while staying ≥3x cheaper than remapping every epoch...
    assert oracle_meas / max(inc_meas, 1) >= MIN_SPEEDUP
    assert oracle_s / max(inc_s, 1e-9) >= MIN_SPEEDUP
    # ...at ENV-plan quality within 5% of the full-remap oracle.
    assert gaps["completeness"] <= MAX_QUALITY_GAP
    assert gaps["bandwidth_error"] <= MAX_QUALITY_GAP
