"""Mapping cost models (paper §4.3, "Master/Slave paradigm").

The paper dismisses exhaustive mapping with a back-of-the-envelope estimate:
a naive approach would first run the ``n(n−1)`` one-way bandwidth tests, then
test every ordered pair of links against every other to find interferences;
at roughly half a minute per experiment that is *"about 50 days for 20
hosts"*.  ENV avoids this by only mapping the view from one master.

This module provides both cost models so the CLM-NAIVE benchmark can
reproduce that comparison: the analytic naive cost, and the actual probe
count of an ENV run converted to wall-clock time with the same
seconds-per-experiment assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..env.probes import ProbeStats, SECONDS_PER_MEASUREMENT

__all__ = ["naive_mapping_experiments", "naive_mapping_seconds",
           "env_mapping_seconds", "MappingCostComparison", "compare_costs"]

SECONDS_PER_DAY = 86_400.0


def naive_mapping_experiments(n_hosts: int) -> int:
    """Number of experiments of the exhaustive mapping of ``n_hosts``.

    ``n(n−1)`` single-link bandwidth tests plus one interference test for
    every ordered pair of distinct links (the paper's accounting, which gives
    ≈ 144 000 experiments and hence ≈ 50 days for 20 hosts).
    """
    if n_hosts < 2:
        return 0
    links = n_hosts * (n_hosts - 1)
    return links + links * (links - 1)


def naive_mapping_seconds(n_hosts: int,
                          seconds_per_experiment: float = SECONDS_PER_MEASUREMENT
                          ) -> float:
    """Wall-clock estimate of the exhaustive mapping."""
    return naive_mapping_experiments(n_hosts) * seconds_per_experiment


def env_mapping_seconds(stats: ProbeStats,
                        seconds_per_experiment: float = SECONDS_PER_MEASUREMENT
                        ) -> float:
    """Wall-clock estimate of an ENV mapping from its probe statistics."""
    return stats.measurements * seconds_per_experiment


@dataclass(frozen=True)
class MappingCostComparison:
    """Side-by-side cost of naive exhaustive mapping vs. ENV."""

    n_hosts: int
    naive_experiments: int
    naive_days: float
    env_measurements: int
    env_days: float
    speedup: float

    def as_row(self) -> Dict[str, object]:
        return {
            "hosts": self.n_hosts,
            "naive_experiments": self.naive_experiments,
            "naive_days": round(self.naive_days, 2),
            "env_experiments": self.env_measurements,
            "env_days": round(self.env_days, 4),
            "speedup": round(self.speedup, 1),
        }


def compare_costs(n_hosts: int, stats: ProbeStats,
                  seconds_per_experiment: float = SECONDS_PER_MEASUREMENT
                  ) -> MappingCostComparison:
    """Build the naive-vs-ENV comparison for a platform of ``n_hosts``."""
    naive_s = naive_mapping_seconds(n_hosts, seconds_per_experiment)
    env_s = env_mapping_seconds(stats, seconds_per_experiment)
    return MappingCostComparison(
        n_hosts=n_hosts,
        naive_experiments=naive_mapping_experiments(n_hosts),
        naive_days=naive_s / SECONDS_PER_DAY,
        env_measurements=stats.measurements,
        env_days=env_s / SECONDS_PER_DAY,
        speedup=(naive_s / env_s) if env_s > 0 else float("inf"),
    )
