"""Sweep result records, the JSONL result store and summary tables."""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..ioutils import append_line

__all__ = ["SweepRecord", "append_jsonl", "load_jsonl", "summary_rows",
           "records_json", "default_store_path", "add_append_hook",
           "remove_append_hook"]


@dataclass
class SweepRecord:
    """Outcome of running (or cache-loading) one scenario of a sweep."""

    scenario: str
    family: str
    scenario_hash: str
    code_version: str
    status: str = "ok"                     # "ok" | "error" | "failed"
    cached: bool = False
    elapsed_s: float = 0.0
    #: Flat pipeline digest (:meth:`repro.pipeline.PipelineResult.summary`).
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    #: Fields a stored record must carry; anything else falls back to the
    #: dataclass defaults.  ``scenario_hash`` may legitimately be empty (error
    #: records of unresolvable scenarios), ``scenario`` may not.
    _REQUIRED = ("scenario", "family", "scenario_hash", "code_version")

    @classmethod
    def from_json(cls, line: str) -> "SweepRecord":
        """Parse one store line, rejecting corrupt/truncated records.

        Raises :class:`ValueError` when the line is not a JSON object, a
        required field is missing or mistyped, or the status is unknown —
        instead of silently constructing a record full of ``None``s.
        """
        data = json.loads(line)
        if not isinstance(data, dict):
            raise ValueError("sweep record line is not a JSON object")
        bad = [k for k in cls._REQUIRED if not isinstance(data.get(k), str)]
        if bad or not data["scenario"]:
            raise ValueError(f"sweep record missing required fields: "
                             f"{bad or ['scenario']}")
        if data.get("status", "ok") not in ("ok", "error", "failed"):
            raise ValueError(f"sweep record has unknown status "
                             f"{data.get('status')!r}")
        for key, kind in (("summary", dict), ("error", str)):
            if data.get(key) is not None and not isinstance(data[key], kind):
                raise ValueError(f"sweep record field {key!r} has the "
                                 f"wrong type")
        elapsed = data.get("elapsed_s", 0.0)
        if isinstance(elapsed, bool) or not isinstance(elapsed, (int, float)):
            raise ValueError("sweep record field 'elapsed_s' has the "
                             "wrong type")
        if not isinstance(data.get("cached", False), bool):
            raise ValueError("sweep record field 'cached' has the wrong type")
        return cls(**{k: data[k] for k in cls.__dataclass_fields__
                      if k in data})


def default_store_path(cache_dir: str) -> str:
    """The JSONL result store a cache directory's sweeps append to."""
    return os.path.join(cache_dir, "results.jsonl")


#: Callbacks invoked after every successful :func:`append_jsonl`, with the
#: store path and the records just appended.  The serving layer's result
#: index registers here so in-process appends (HTTP-submitted runs, sweeps)
#: extend the index without waiting for the next on-demand refresh.
_APPEND_HOOKS: List[Callable[[str, Sequence[SweepRecord]], None]] = []


def add_append_hook(hook: Callable[[str, Sequence[SweepRecord]], None]) -> None:
    """Register a post-append callback (idempotent)."""
    if hook not in _APPEND_HOOKS:
        _APPEND_HOOKS.append(hook)


def remove_append_hook(hook: Callable[[str, Sequence[SweepRecord]], None]
                       ) -> None:
    """Drop a previously registered post-append callback if present."""
    if hook in _APPEND_HOOKS:
        _APPEND_HOOKS.remove(hook)


def append_jsonl(path: str, records: Sequence[SweepRecord]) -> None:
    """Append ``records`` to the JSONL result store at ``path``.

    The whole batch goes down in one unbuffered ``O_APPEND`` write, so two
    processes appending to the same store concurrently (a sweep CLI and a
    running ``repro serve``) can interleave only at record boundaries —
    never inside a line.
    """
    if not records:
        return
    payload = "".join(record.to_json() + "\n" for record in records)
    append_line(path, payload)
    for hook in list(_APPEND_HOOKS):
        hook(path, records)


def load_jsonl(path: str) -> List[SweepRecord]:
    """All valid records of the JSONL result store at ``path``.

    Corrupt or truncated lines (interrupted appends, partial writes) are
    skipped with a warning rather than poisoning every consumer of the store
    with half-parsed records.
    """
    records: List[SweepRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SweepRecord.from_json(line))
            except (ValueError, TypeError) as exc:
                warnings.warn(f"{path}:{lineno}: skipping bad sweep record "
                              f"({exc})", stacklevel=2)
    return records


def _rounded(summary: Dict[str, object], key: str, digits: int) -> object:
    value = summary.get(key)
    return round(value, digits) if isinstance(value, (int, float)) else ""


def summary_rows(records: Sequence[SweepRecord]) -> List[Dict[str, object]]:
    """One flat table row per record (for :func:`analysis.report.render_table`).

    Rows are sorted by scenario name — deterministic regardless of the order
    parallel workers completed in or of cache-hit interleaving.
    """
    rows: List[Dict[str, object]] = []
    for record in sorted(records, key=lambda r: r.scenario):
        row: Dict[str, object] = {
            "scenario": record.scenario,
            "family": record.family,
            "status": record.status + (" (cached)" if record.cached else ""),
        }
        summary = record.summary or {}
        row.update({
            "hosts": summary.get("hosts", ""),
            "epochs": summary.get("epochs", ""),
            "cliques": summary.get("cliques", ""),
            "collisions": summary.get("collisions", ""),
            "harmful": summary.get("harmful_collisions", ""),
            "completeness": _rounded(summary, "completeness", 3),
            "bw_err": _rounded(summary, "bandwidth_error", 3),
            "worst_period_s": _rounded(summary, "worst_period_s", 1),
            "measurements": summary.get("measurements", ""),
            "elapsed_s": round(record.elapsed_s, 3),
        })
        rows.append(row)
    return rows


def records_json(records: Sequence[SweepRecord], indent: int = 2) -> str:
    """The records as a deterministic JSON array (sorted by scenario name)."""
    payload = [asdict(record)
               for record in sorted(records, key=lambda r: r.scenario)]
    return json.dumps(payload, sort_keys=True, indent=indent)
