"""ENV decision thresholds.

Paper §4.2.2: *"Most of these experiments use thresholds to interpret the
measurement results.  The value of this thresholds may have a great impact on
the mapping results, and were determined experimentally and empirically by
the ENV authors."*  The published values are:

* host-to-host bandwidth split ratio: **3** — hosts of a cluster whose
  bandwidth to the master differs by more than this factor are separated;
* pairwise independence ratio: **1.25** — if the un-paired/paired bandwidth
  ratio stays below this value, the two hosts are declared independent and
  split;
* jammed-bandwidth classification: average jammed/base ratio **< 0.7** ⇒
  shared, **> 0.9** ⇒ switched, in-between ⇒ inconclusive;
* the jam experiment is repeated **5** times.

(The paper's prose writes the jam ratio as ``Bandwidth/Bandwidth_jammed``
with the same 0.7/0.9 thresholds; since a shared link halves the jammed
bandwidth, the ratio that is *below* 0.7 on a shared link is necessarily
``jammed/base`` — we implement that reading.)

The ablation benchmark sweeps these values (experiment ABL-THRESH).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ENVThresholds", "DEFAULT_THRESHOLDS"]


@dataclass(frozen=True)
class ENVThresholds:
    """Tunable thresholds of the ENV mapping process."""

    #: Bandwidth ratio above which two hosts are put in different clusters.
    split_ratio: float = 3.0
    #: Paired/unpaired ratio below which two hosts are considered independent.
    pairwise_independence_ratio: float = 1.25
    #: Average jammed/base ratio below which a cluster is declared shared.
    shared_threshold: float = 0.7
    #: Average jammed/base ratio above which a cluster is declared switched.
    switched_threshold: float = 0.9
    #: Number of repetitions of the jammed-bandwidth experiment.
    jam_repetitions: int = 5
    #: Probe transfer size in bytes for the bandwidth experiments.
    probe_size_bytes: int = 1_000_000

    def __post_init__(self) -> None:
        if self.split_ratio <= 1.0:
            raise ValueError("split_ratio must be > 1")
        if self.pairwise_independence_ratio < 1.0:
            raise ValueError("pairwise_independence_ratio must be >= 1")
        if not 0.0 < self.shared_threshold <= self.switched_threshold <= 1.5:
            raise ValueError("need 0 < shared_threshold <= switched_threshold")
        if self.jam_repetitions < 1:
            raise ValueError("jam_repetitions must be >= 1")
        if self.probe_size_bytes <= 0:
            raise ValueError("probe_size_bytes must be positive")

    def with_overrides(self, **kwargs) -> "ENVThresholds":
        """A copy with some fields replaced (used by the ablation sweeps)."""
        return replace(self, **kwargs)


#: The values published in the paper.
DEFAULT_THRESHOLDS = ENVThresholds()
