"""Probe drivers: how ENV observes the (simulated) network.

ENV relies exclusively on user-level, end-to-end observations (paper §3.5);
every observation it needs is captured by the small :class:`ProbeDriver`
interface below:

* single-flow bandwidth between two hosts,
* bandwidths of several transfers run *concurrently* (the pairwise and jam
  experiments),
* a traceroute towards a destination,
* host reachability (firewalls) and host metadata.

Two implementations are provided.  :class:`AnalyticProbeDriver` queries the
flow model's steady-state allocator directly — fast, exact, ideal for unit
tests and large parameter sweeps.  :class:`SimulatedProbeDriver` actually
schedules the probe transfers on a discrete-event engine so that probes
experience transient effects and background load — this is the faithful mode
used by the headline experiments.

Both drivers account for the number of measurement operations, the bytes
injected and an estimate of wall-clock mapping time, which feeds the
naive-vs-ENV cost comparison of paper §4.3 (experiment CLM-NAIVE).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..perf import COUNTERS, fast_path_enabled
from ..simkernel import Engine
from ..netsim.firewall import platform_allows
from ..netsim.flows import FlowModel
from ..netsim.topology import Platform
from ..netsim.traceroute import TracerouteResult, traceroute

__all__ = ["ProbeStats", "ProbeMemo", "ProbeDriver", "AnalyticProbeDriver",
           "SimulatedProbeDriver"]

#: Stabilisation delay the paper assumes between two measurements ("half a
#: minute ... since the network needs to stabilize between each experiments").
SECONDS_PER_MEASUREMENT = 30.0


@dataclass
class ProbeStats:
    """Accounting of the probing effort spent by a mapping run."""

    measurements: int = 0           # measurement operations (single or concurrent)
    probe_flows: int = 0            # individual probe transfers started
    bytes_injected: float = 0.0
    traceroutes: int = 0
    estimated_seconds: float = 0.0  # wall-clock estimate of the mapping
    memo_hits: int = 0              # measurements answered from the probe memo

    def merge(self, other: "ProbeStats") -> "ProbeStats":
        """Combine the accounting of two mapping runs (e.g. firewall sides)."""
        return ProbeStats(
            measurements=self.measurements + other.measurements,
            probe_flows=self.probe_flows + other.probe_flows,
            bytes_injected=self.bytes_injected + other.bytes_injected,
            traceroutes=self.traceroutes + other.traceroutes,
            estimated_seconds=self.estimated_seconds + other.estimated_seconds,
            memo_hits=self.memo_hits + other.memo_hits,
        )


class ProbeMemo:
    """Memo of deterministic probe results, keyed on (op, pairs, size).

    Each entry remembers the topology state it was measured under: the
    platform-wide route epoch, the per-pair route-override epochs, and the
    mutation version of every link and hub the probed routes cross
    (:meth:`~repro.netsim.topology.Platform.element_version`).  A lookup is
    served only while all of those are unchanged, so a platform mutation
    invalidates exactly the entries whose measurements it could alter —
    bandwidth drift on one link leaves every other memoised pair warm.

    A memo may outlive a single driver: :func:`repro.dynamics.remap` hands
    one memo across remap epochs so warm starts stop re-measuring identical
    pairs.  Only noiseless analytic drivers use a memo (a noisy or simulated
    measurement is not reproducible by construction).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[Tuple, Tuple] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _dependencies(self, platform: Platform,
                      pairs: Tuple[Tuple[str, str], ...]) -> Tuple:
        deps = set()
        for src, dst in pairs:
            route = platform.route(src, dst)
            for link in route.links:
                deps.add(("link", link.name))
            for key in route.constraint_keys(platform):
                if key[0] == "hub":
                    deps.add(("hub", key[1]))
        return tuple(sorted(deps))

    def lookup(self, platform: Platform, op: str,
               pairs: Tuple[Tuple[str, str], ...], size_bytes: int):
        """The memoised result, or ``None`` when absent or invalidated."""
        memo_key = (op, pairs, size_bytes)
        entry = self._entries.get(memo_key)
        if entry is None:
            return None
        value, route_epoch, pair_stamps, dep_stamps = entry
        if route_epoch != platform.route_epoch:
            del self._entries[memo_key]
            return None
        for (src, dst), epoch in pair_stamps:
            if platform.pair_epoch(src, dst) != epoch:
                del self._entries[memo_key]
                return None
        for dep, version in dep_stamps:
            if platform.element_version(dep) != version:
                del self._entries[memo_key]
                return None
        return value

    def store(self, platform: Platform, op: str,
              pairs: Tuple[Tuple[str, str], ...], size_bytes: int,
              value) -> None:
        self._entries[(op, pairs, size_bytes)] = (
            value,
            platform.route_epoch,
            tuple((pair, platform.pair_epoch(*pair)) for pair in pairs),
            tuple((dep, platform.element_version(dep))
                  for dep in self._dependencies(platform, pairs)),
        )


class ProbeDriver(ABC):
    """Everything ENV is allowed to observe about the platform."""

    def __init__(self, platform: Platform,
                 seconds_per_measurement: float = SECONDS_PER_MEASUREMENT):
        self.platform = platform
        self.seconds_per_measurement = seconds_per_measurement
        self.stats = ProbeStats()

    # -- mandatory observations ------------------------------------------------
    @abstractmethod
    def bandwidth(self, src: str, dst: str, size_bytes: int) -> float:
        """Measured bandwidth (Mbit/s) of one probe transfer ``src`` → ``dst``."""

    @abstractmethod
    def concurrent_bandwidths(self, pairs: Sequence[Tuple[str, str]],
                              size_bytes: int) -> List[float]:
        """Bandwidths observed when all ``pairs`` transfer at the same time."""

    def run_traceroute(self, src: str, dst: Optional[str] = None) -> TracerouteResult:
        """Run a traceroute from ``src`` (towards the external world by default)."""
        self.stats.traceroutes += 1
        return traceroute(self.platform, src, dst)

    # -- metadata ----------------------------------------------------------------
    def can_communicate(self, src: str, dst: str) -> bool:
        """Whether the two hosts can exchange traffic (firewalls considered)."""
        return (platform_allows(self.platform, src, dst)
                and platform_allows(self.platform, dst, src))

    def host_ip(self, host: str) -> Optional[str]:
        node = self.platform.nodes.get(host)
        if node is None or node.ip is None:
            return None
        return str(node.ip)

    def host_properties(self, host: str) -> Dict[str, object]:
        node = self.platform.nodes.get(host)
        return dict(node.properties) if node is not None else {}

    def host_domain(self, host: str) -> str:
        node = self.platform.nodes.get(host)
        return node.domain if node is not None else ""

    def resolve_name(self, ip: str) -> Optional[str]:
        """Reverse DNS of an address, or ``None`` when resolution fails."""
        return self.platform.resolver.try_reverse(ip)

    # -- accounting helpers ----------------------------------------------------------
    def _account(self, n_flows: int, size_bytes: int) -> None:
        self.stats.measurements += 1
        self.stats.probe_flows += n_flows
        self.stats.bytes_injected += n_flows * size_bytes
        self.stats.estimated_seconds += self.seconds_per_measurement


class AnalyticProbeDriver(ProbeDriver):
    """Probe driver answering from the max-min fair steady state.

    Optional multiplicative log-normal noise models measurement jitter; the
    noise is drawn from a dedicated stream so runs stay reproducible.

    Noiseless drivers memoise their measurements in a :class:`ProbeMemo`
    (a fresh one per driver unless ``memo`` is given): a repeated probe of
    the same pair(s) with the same size on an unmutated topology is answered
    from the memo — counted in ``stats.memo_hits`` instead of
    ``stats.measurements`` — and returns the identical value the experiment
    would have produced.  Pass a shared memo to carry the warm state across
    drivers (e.g. across remap epochs).  With ``noise_sigma > 0`` the memo
    is disabled: each measurement must draw fresh jitter.
    """

    def __init__(self, platform: Platform,
                 noise_sigma: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 seconds_per_measurement: float = SECONDS_PER_MEASUREMENT,
                 memo: Optional[ProbeMemo] = None,
                 memoize: bool = True):
        super().__init__(platform, seconds_per_measurement)
        self.noise_sigma = noise_sigma
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._flow_model = FlowModel(Engine(), platform)
        if noise_sigma > 0 or not memoize:
            # ``memoize=False`` models the naive tool that re-measures
            # everything (the dynamics oracle track).
            memo = None
        elif memo is None and fast_path_enabled():
            memo = ProbeMemo()
        self.memo = memo

    def _noisy(self, value: float) -> float:
        if self.noise_sigma <= 0:
            return value
        return value * float(self.rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def bandwidth(self, src: str, dst: str, size_bytes: int) -> float:
        memo = self.memo
        if memo is not None:
            hit = memo.lookup(self.platform, "bw", ((src, dst),), size_bytes)
            if hit is not None:
                self.stats.memo_hits += 1
                COUNTERS.probe_memo_hits += 1
                return hit
        self._account(1, size_bytes)
        rate = self._flow_model.single_flow_mbps(src, dst)
        latency = self.platform.route(src, dst).latency
        duration = latency + size_bytes * 8.0 / 1e6 / rate
        value = self._noisy(size_bytes * 8.0 / 1e6 / duration)
        if memo is not None:
            memo.store(self.platform, "bw", ((src, dst),), size_bytes, value)
        return value

    def concurrent_bandwidths(self, pairs: Sequence[Tuple[str, str]],
                              size_bytes: int) -> List[float]:
        memo = self.memo
        key_pairs = tuple(pairs)
        if memo is not None:
            hit = memo.lookup(self.platform, "conc", key_pairs, size_bytes)
            if hit is not None:
                self.stats.memo_hits += 1
                COUNTERS.probe_memo_hits += 1
                return list(hit)
        self._account(len(pairs), size_bytes)
        rates = self._flow_model.steady_state_mbps(list(pairs))
        values = [self._noisy(r) for r in rates]
        if memo is not None:
            # Store a copy: the returned list is the caller's to mutate.
            memo.store(self.platform, "conc", key_pairs, size_bytes,
                       list(values))
        return values


class SimulatedProbeDriver(ProbeDriver):
    """Probe driver that schedules real transfers on a discrete-event engine.

    Each measurement starts its probe flows simultaneously and waits for all
    of them; bandwidth is computed from each flow's own completion time, so
    unequal sharing, latencies and any background traffic running on the same
    engine are reflected in the results — exactly like the real tool.
    """

    def __init__(self, platform: Platform,
                 engine: Optional[Engine] = None,
                 flow_model: Optional[FlowModel] = None,
                 stabilisation_s: float = 0.5,
                 seconds_per_measurement: float = SECONDS_PER_MEASUREMENT):
        super().__init__(platform, seconds_per_measurement)
        self.engine = engine if engine is not None else Engine()
        self.flow_model = (flow_model if flow_model is not None
                           else FlowModel(self.engine, platform))
        if self.flow_model.platform is not platform:
            raise ValueError("flow_model must be bound to the same platform")
        self.stabilisation_s = stabilisation_s

    def _run_transfers(self, pairs: Sequence[Tuple[str, str]],
                       size_bytes: int) -> List[float]:
        events = []
        start = self.engine.now
        for src, dst in pairs:
            events.append(self.flow_model.transfer(src, dst, size_bytes,
                                                   label=f"env-probe:{src}->{dst}"))
        self.engine.run(until=self.engine.all_of(events))
        bandwidths = []
        for ev in events:
            result = ev.value[ev] if isinstance(ev.value, dict) else ev.value
            duration = max(result.end_time - start, 1e-12)
            bandwidths.append(size_bytes * 8.0 / 1e6 / duration)
        # Let the platform drain before the next measurement.
        if self.stabilisation_s > 0:
            self.engine.run(until=self.engine.now + self.stabilisation_s)
        return bandwidths

    def bandwidth(self, src: str, dst: str, size_bytes: int) -> float:
        self._account(1, size_bytes)
        return self._run_transfers([(src, dst)], size_bytes)[0]

    def concurrent_bandwidths(self, pairs: Sequence[Tuple[str, str]],
                              size_bytes: int) -> List[float]:
        self._account(len(pairs), size_bytes)
        return self._run_transfers(pairs, size_bytes)
