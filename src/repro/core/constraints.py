"""Validation of the four NWS deployment constraints (paper §2.3).

Given a deployment plan and the *ground-truth* platform, the validators
check:

1. **No colliding experiments** — no two distinct cliques may run experiments
   whose routes share a physical constraint (link direction or hub segment):
   inside one clique the token ring serialises experiments, but across
   cliques nothing does.
2. **Scalability** — cliques should stay small; the check reports cliques
   larger than a configurable bound (the measurement period grows linearly
   with the number of pairs in the clique).
3. **Completeness** — every host pair must be answerable: measured directly,
   covered by a representative pair, or composable from measured segments
   (aggregation along a path of measured pairs).
4. **Reduced intrusiveness** — the share of pairs measured directly should
   stay low; redundant measurements of the same shared segment are reported.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from ..netsim.topology import Platform
from ..perf import fast_path_enabled
from .plan import Clique, DeploymentPlan

__all__ = ["CollisionReport", "ConstraintReport", "find_collisions",
           "check_completeness", "coverage_graph", "check_constraints"]


@dataclass(frozen=True)
class CollisionReport:
    """Two experiments from different cliques that can share a physical element."""

    clique_a: str
    clique_b: str
    pair_a: Tuple[str, str]
    pair_b: Tuple[str, str]
    shared_elements: Tuple[Tuple, ...]


@dataclass
class ConstraintReport:
    """Outcome of checking the four constraints for one plan."""

    collisions: List[CollisionReport] = field(default_factory=list)
    oversized_cliques: List[str] = field(default_factory=list)
    unreachable_pairs: List[FrozenSet[str]] = field(default_factory=list)
    uncovered_hosts: List[str] = field(default_factory=list)
    directly_measured_pairs: int = 0
    total_pairs: int = 0
    redundant_segment_measurements: Dict[Tuple, int] = field(default_factory=dict)

    @property
    def collision_free(self) -> bool:
        return not self.collisions

    @property
    def complete(self) -> bool:
        return not self.unreachable_pairs and not self.uncovered_hosts

    @property
    def intrusiveness(self) -> float:
        """Fraction of host pairs measured directly (lower is less intrusive)."""
        if self.total_pairs == 0:
            return 0.0
        return self.directly_measured_pairs / self.total_pairs

    def summary(self) -> Dict[str, object]:
        return {
            "collision_free": self.collision_free,
            "collisions": len(self.collisions),
            "complete": self.complete,
            "unreachable_pairs": len(self.unreachable_pairs),
            "uncovered_hosts": len(self.uncovered_hosts),
            "oversized_cliques": len(self.oversized_cliques),
            "intrusiveness": round(self.intrusiveness, 4),
            "redundant_segments": len(self.redundant_segment_measurements),
        }


def find_collisions(plan: DeploymentPlan, platform: Platform,
                    max_reports: int = 100_000) -> List[CollisionReport]:
    """All potential cross-clique experiment collisions.

    Two experiments collide when their routes share a constraint key and they
    can run simultaneously, i.e. they belong to different cliques and involve
    four distinct hosts is *not* required: a host taking part in two cliques
    can be driven into two experiments at once, which is also a collision (on
    the host's own interface) — however, following the paper, we only count
    *network* collisions here: shared link or hub constraints.
    """
    if not fast_path_enabled():
        return _find_collisions_reference(plan, platform, max_reports)
    reports: List[CollisionReport] = []
    cliques = plan.cliques
    # Pre-resolve every clique's pairs and route-key sets once: the nested
    # loop below compares each pair combination, and recomputing routes and
    # constraint keys there dominates the whole quality stage on big plans.
    resolved = []
    for clique in cliques:
        entries = []
        for pair in clique.unordered_pairs():
            a, b = sorted(pair)
            keyset = platform.route(a, b).constraint_keyset(platform)
            entries.append((pair, (a, b), keyset))
        resolved.append(entries)
    for i, ca in enumerate(cliques):
        pairs_a = resolved[i]
        for j in range(i + 1, len(cliques)):
            cb = cliques[j]
            pairs_b = resolved[j]
            for pa, (a1, a2), keys_a in pairs_a:
                for pb, (b1, b2), keys_b in pairs_b:
                    if pa == pb:
                        shared = tuple(sorted(set(keys_a)))
                    elif keys_a & keys_b:
                        shared = tuple(sorted(keys_a & keys_b))
                    else:
                        continue
                    if shared:
                        reports.append(CollisionReport(
                            clique_a=ca.name, clique_b=cb.name,
                            pair_a=(a1, a2), pair_b=(b1, b2),
                            shared_elements=shared))
                        if len(reports) >= max_reports:
                            return reports
    return reports


def _find_collisions_reference(plan: DeploymentPlan, platform: Platform,
                               max_reports: int = 100_000
                               ) -> List[CollisionReport]:
    """The straightforward quadratic scan, re-resolving routes per comparison.

    Kept as the equivalence oracle for :func:`find_collisions` and as the
    baseline the fast-path benchmarks measure against.
    """
    reports: List[CollisionReport] = []
    cliques = plan.cliques
    for i, ca in enumerate(cliques):
        pairs_a = ca.unordered_pairs()
        for cb in cliques[i + 1:]:
            pairs_b = cb.unordered_pairs()
            for pa in pairs_a:
                a1, a2 = sorted(pa)
                for pb in pairs_b:
                    b1, b2 = sorted(pb)
                    if pa == pb:
                        shared = tuple(sorted(
                            set(platform.route(a1, a2).constraint_keys(platform))))
                    else:
                        shared = tuple(platform.shared_elements((a1, a2), (b1, b2)))
                    if shared:
                        reports.append(CollisionReport(
                            clique_a=ca.name, clique_b=cb.name,
                            pair_a=(a1, a2), pair_b=(b1, b2),
                            shared_elements=shared))
                        if len(reports) >= max_reports:
                            return reports
    return reports


def coverage_graph(plan: DeploymentPlan) -> nx.Graph:
    """Graph whose edges are host pairs answerable without aggregation.

    Edges carry ``source`` = the measured pair providing the data (itself or
    a representative).
    """
    graph = nx.Graph()
    graph.add_nodes_from(plan.hosts)
    for clique in plan.cliques:
        for pair in clique.unordered_pairs():
            a, b = sorted(pair)
            graph.add_edge(a, b, source=pair, direct=True)
    for pair, rep in plan.representatives.items():
        a, b = sorted(pair)
        if not graph.has_edge(a, b):
            graph.add_edge(a, b, source=rep, direct=False)
    return graph


def check_completeness(plan: DeploymentPlan) -> Tuple[List[FrozenSet[str]], List[str]]:
    """Pairs that cannot be answered even by aggregation, and uncovered hosts.

    A host is *uncovered* when no measurement concerns it at all — it neither
    belongs to a clique nor benefits from a representative pair.  Hosts of a
    shared network that are not part of the two-host representative clique
    are still covered (the paper's plan deliberately leaves them out of the
    clique), so they do not count as uncovered.
    """
    graph = coverage_graph(plan)
    uncovered_hosts = sorted(host for host in plan.hosts
                             if graph.degree(host) == 0)
    unreachable: List[FrozenSet[str]] = []
    components = {host: idx
                  for idx, comp in enumerate(nx.connected_components(graph))
                  for host in comp}
    for a, b in itertools.combinations(sorted(plan.hosts), 2):
        if components.get(a) != components.get(b):
            unreachable.append(frozenset((a, b)))
    return unreachable, uncovered_hosts


def _segment_measurement_counts(plan: DeploymentPlan,
                                platform: Platform) -> Dict[Tuple, int]:
    """How many distinct cliques measure each shared (hub) segment."""
    counts: Dict[Tuple, Set[str]] = {}
    for clique in plan.cliques:
        for pair in clique.unordered_pairs():
            a, b = sorted(pair)
            for key in platform.route(a, b).constraint_keys(platform):
                if key[0] == "hub":
                    counts.setdefault(key, set()).add(clique.name)
    return {key: len(names) for key, names in counts.items() if len(names) > 1}


def check_constraints(plan: DeploymentPlan, platform: Platform,
                      max_clique_size: int = 10) -> ConstraintReport:
    """Check the four §2.3 constraints for ``plan`` on ``platform``."""
    report = ConstraintReport()
    report.collisions = find_collisions(plan, platform)
    report.oversized_cliques = [c.name for c in plan.cliques
                                if c.size > max_clique_size]
    report.unreachable_pairs, report.uncovered_hosts = check_completeness(plan)
    n = len(plan.hosts)
    report.total_pairs = n * (n - 1) // 2
    report.directly_measured_pairs = len(plan.measured_pairs())
    report.redundant_segment_measurements = _segment_measurement_counts(plan, platform)
    return report
