"""Background pipeline execution for the serving layer.

A bounded queue of *jobs* — one registered scenario each — dispatched onto
the **shared** warm multiprocessing pool of :mod:`repro.sweep.runner`
(:func:`~repro.sweep.runner.submit_scenario`; never a second pool), so an
HTTP-submitted run and a CLI sweep compete for the same workers instead of
oversubscribing the machine.

Results flow through exactly the sweep engine's persistence
(:func:`~repro.sweep.runner.store_record`): the per-scenario cache entry and
the JSONL result store.  A run requested over HTTP is therefore a **cache
hit** for a later ``repro sweep`` of the same scenario, and vice versa — a
job whose scenario is already cached completes instantly without touching
the pool.

Lifecycle per job: ``queued`` → ``running`` → one of ``ok`` / ``error`` /
``timeout`` / ``cancelled``.  Cancellation is immediate for queued jobs;
a running job's pool task cannot be killed without poisoning the shared
pool, so cancelling (or timing out) one only abandons the result (status
``cancelled``/``timeout``, nothing persisted) while its dispatcher keeps
draining the worker before dispatching new work — abandonment never
over-commits the pool.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import REGISTRY
from ..obs.profile import PROFILER
from ..obs.trace import TRACER
from ..perf import COUNTERS
from ..sweep.results import SweepRecord
from ..sweep.runner import (
    DEFAULT_BASELINES,
    DEFAULT_CACHE_DIR,
    load_cached_record,
    store_record,
    submit_scenario,
)

__all__ = ["Job", "JobQueue", "QueueFull"]

#: How often a dispatcher polls its in-flight pool task.
_POLL_INTERVAL_S = 0.05

#: Queue-wait distribution — submission to dispatcher pick-up.  Observed for
#: every job; the matching per-trace ``serve.queue_wait`` span only exists
#: for sampled requests.
_QUEUE_WAIT_SECONDS = REGISTRY.histogram(
    "repro_job_queue_wait_seconds",
    "seconds a job waited in the queue before a dispatcher picked it up")

TERMINAL = ("ok", "error", "timeout", "cancelled")


class QueueFull(Exception):
    """The job queue is at capacity; retry later."""


@dataclass
class Job:
    """One submitted pipeline run."""

    id: str
    scenario: str
    period_s: float = 60.0
    baselines: Tuple[str, ...] = DEFAULT_BASELINES
    rerun: bool = False
    status: str = "queued"
    cached: bool = False
    error: Optional[str] = None
    record: Optional[SweepRecord] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: The submitting request's trace context (``None`` outside a sampled
    #: trace): the queue-wait/job spans parent under it and the pool worker
    #: adopts it.
    trace_ctx: Optional[Dict[str, str]] = None
    #: Non-zero (an ``X-Repro-Profile`` header) arms the pool worker's
    #: sampling profiler for this job; its collapsed stacks are folded into
    #: the process-wide profiler (``GET /profile``) on completion.
    profile_hz: int = 0
    #: How many profiler samples the worker shipped back (``None`` until a
    #: profiled job finishes).
    profile_samples: Optional[int] = None

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace_ctx.get("trace_id") if self.trace_ctx else None

    @property
    def done(self) -> bool:
        return self.status in TERMINAL

    def as_payload(self) -> Dict[str, object]:
        """The job as a JSON-compatible API record."""
        payload: Dict[str, object] = {
            "id": self.id,
            "scenario": self.scenario,
            "status": self.status,
            "cached": self.cached,
            "period_s": self.period_s,
            "baselines": list(self.baselines),
            "rerun": self.rerun,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "trace_id": self.trace_id,
            "profile_hz": self.profile_hz,
            "profile_samples": self.profile_samples,
        }
        if self.record is not None:
            payload["record"] = {
                "scenario": self.record.scenario,
                "status": self.record.status,
                "scenario_hash": self.record.scenario_hash,
                "code_version": self.record.code_version,
                "elapsed_s": self.record.elapsed_s,
                "summary": self.record.summary,
            }
        return payload


class JobQueue:
    """Bounded asyncio job queue over the shared sweep worker pool."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR,
                 out_path: Optional[str] = None,
                 pool_processes: int = 2,
                 timeout_s: float = 600.0,
                 maxsize: int = 32,
                 keep_finished: int = 256) -> None:
        self.cache_dir = cache_dir
        self.out_path = out_path
        self.pool_processes = max(1, pool_processes)
        self.timeout_s = timeout_s
        self.maxsize = maxsize
        self.keep_finished = keep_finished
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._ids = itertools.count(1)
        self._dispatchers: List[asyncio.Task] = []
        self.completed = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher tasks (as many as the pool has workers —
        the pool itself is the real concurrency limit)."""
        if self._dispatchers:
            return
        for _ in range(self.pool_processes):
            self._dispatchers.append(asyncio.ensure_future(self._dispatch()))

    async def close(self) -> None:
        """Cancel dispatchers; queued jobs are marked cancelled."""
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers = []
        for job in self._jobs.values():
            if not job.done:
                self._finish(job, "cancelled")

    # -- submission / inspection --------------------------------------------

    def pending(self) -> int:
        return sum(1 for j in self._jobs.values() if not j.done)

    def submit(self, scenario: str, period_s: float = 60.0,
               baselines: Tuple[str, ...] = DEFAULT_BASELINES,
               rerun: bool = False,
               trace_ctx: Optional[Dict[str, str]] = None,
               profile_hz: int = 0) -> Job:
        """Enqueue one run; raises :class:`QueueFull` at capacity."""
        if self.pending() >= self.maxsize:
            raise QueueFull(f"job queue is full ({self.maxsize} pending)")
        job = Job(id=f"job-{next(self._ids)}", scenario=scenario,
                  period_s=float(period_s), baselines=tuple(baselines),
                  rerun=bool(rerun), trace_ctx=trace_ctx,
                  profile_hz=max(0, int(profile_hz)))
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._queue.put_nowait(job.id)
        self._trim()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every tracked job, submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate while queued, best-effort while running
        (the result is abandoned), a no-op once terminal."""
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.done:
            self._finish(job, "cancelled")
        return job

    def _trim(self) -> None:
        """Bound the finished-job history."""
        while len(self._order) > self.keep_finished:
            for index, job_id in enumerate(self._order):
                if self._jobs[job_id].done:
                    del self._jobs[job_id]
                    del self._order[index]
                    break
            else:
                return

    def _finish(self, job: Job, status: str,
                record: Optional[SweepRecord] = None,
                error: Optional[str] = None) -> None:
        job.status = status
        job.record = record
        job.error = error if error is not None else \
            (record.error if record is not None else None)
        job.finished_at = time.time()
        self.completed += 1
        # The job interval is enclosed by no single frame (it spans poll
        # iterations), so it is recorded retroactively — a no-op without a
        # trace context.
        start = job.started_at if job.started_at is not None \
            else job.submitted_at
        TRACER.record_external(
            "serve.job", job.trace_ctx, start_ts=start,
            duration_s=job.finished_at - start, job=job.id,
            scenario=job.scenario, status=status, cached=job.cached)

    # -- execution ----------------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.done:     # cancelled (or trimmed) in queue
                continue
            try:
                await self._run(job)
            except asyncio.CancelledError:
                if not job.done:
                    self._finish(job, "cancelled")
                raise
            except Exception as exc:        # noqa: BLE001 — keep dispatching
                self._finish(job, "error", error=f"{type(exc).__name__}: "
                                                 f"{exc}")

    async def _run(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        wait_s = job.started_at - job.submitted_at
        _QUEUE_WAIT_SECONDS.observe(wait_s)
        TRACER.record_external("serve.queue_wait", job.trace_ctx,
                               start_ts=job.submitted_at, duration_s=wait_s,
                               job=job.id)
        # A profiled job must actually run the pipeline: a cache hit would
        # return a record without ever sampling a frame.
        if not job.rerun and not job.profile_hz:
            cached = load_cached_record(self.cache_dir, job.scenario,
                                        period_s=job.period_s,
                                        baselines=job.baselines)
            if cached is not None:
                cached.cached = True
                job.cached = True
                store_record(self.cache_dir, cached, period_s=job.period_s,
                             baselines=job.baselines, out_path=self.out_path)
                self._finish(job, "ok", record=cached)
                return
        # Dispatch onto the shared warm pool and poll without blocking the
        # event loop; the worker itself never raises (error records).
        async_result = submit_scenario(job.scenario, self.pool_processes,
                                       period_s=job.period_s,
                                       baselines=job.baselines,
                                       trace_ctx=job.trace_ctx,
                                       profile_hz=job.profile_hz)
        deadline = time.monotonic() + self.timeout_s
        while not async_result.ready():
            # A timed-out or cancelled job surfaces immediately, but the
            # pool task cannot be killed (terminating a worker would poison
            # the shared pool) — so this dispatcher keeps draining it
            # before taking the next job.  Otherwise abandoned tasks pile
            # up in front of freshly dispatched ones, whose deadlines then
            # expire before they ever run: a capacity leak behind a
            # healthy-looking server.
            if not job.done and time.monotonic() > deadline:
                self._finish(job, "timeout",
                             error=f"job exceeded {self.timeout_s:g}s; "
                                   "the pool task is abandoned (its worker "
                                   "drains before the next job dispatches)")
            await asyncio.sleep(_POLL_INTERVAL_S)
        if job.done:                        # timed out / cancelled: discard
            return
        record, counter_deltas, worker_spans, profile = async_result.get()
        # Pipeline work happened in a pool worker whose perf counters and
        # span ring are invisible here; fold the deltas in (atomically) so
        # /metrics in this process reflects the work its jobs caused,
        # ingest the worker's spans so GET /trace/{id} shows its pipeline
        # stages, and fold any shipped profile into the process-wide
        # profiler so GET /profile shows the worker's hot frames.
        COUNTERS.add(**counter_deltas)
        TRACER.ingest(worker_spans)
        if profile is not None:
            job.profile_samples = PROFILER.ingest(profile)
        store_record(self.cache_dir, record, period_s=job.period_s,
                     baselines=job.baselines, out_path=self.out_path)
        self._finish(job, "ok" if record.ok else "error", record=record)
