"""Event primitives for the discrete-event simulation kernel.

The kernel is a small, dependency-free discrete-event engine in the spirit of
SimPy: *processes* are Python generators that ``yield`` events, and the
engine resumes them when those events fire.  Only the features needed by the
network and NWS simulators are implemented, which keeps the hot path (event
scheduling and dispatch) simple and fast.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Engine

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "EventCancelled",
    "StopSimulation",
]

_event_ids = itertools.count()


class Interrupt(Exception):
    """Raised inside a process that has been interrupted by another process."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised (by a process or callback) to terminate :meth:`Engine.run` early.

    The engine always honours it — even with ``strict=False``, which swallows
    ordinary process exceptions — and :meth:`Engine.run` returns cleanly with
    the exception's value (its first argument, if any).
    """

    @property
    def value(self) -> Any:
        return self.args[0] if self.args else None


class EventCancelled(Exception):
    """Raised when waiting on an event that was cancelled."""


class Event:
    """A value-carrying one-shot occurrence on the simulation timeline.

    An event starts *pending*, may be :meth:`succeed`-ed or :meth:`fail`-ed
    exactly once, and notifies its callbacks when it fires.  Processes wait on
    events by yielding them.  Events are the densest allocation of the hot
    loop, so the whole hierarchy uses ``__slots__``.
    """

    __slots__ = ("engine", "eid", "callbacks", "_value", "_ok")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.eid = next(_event_ids)
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending, True/False once fired

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire (or already fired)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully (only valid once triggered)."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception if it failed)."""
        if self._ok is None:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- firing -----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value`` at the current time."""
        if self._ok is not None:
            raise RuntimeError(f"event {self.eid} already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event as failed; waiters will see ``exception`` raised."""
        if self._ok is not None:
            raise RuntimeError(f"event {self.eid} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.engine._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still wake up.
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} #{self.eid} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._schedule(self, delay=delay)


class _Condition(Event):
    """Base class for composite events (:class:`AnyOf` / :class:`AllOf`)."""

    __slots__ = ("events", "_done")

    def __init__(self, engine: "Engine", events: List[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks have run count as "happened": a Timeout
        # is triggered (scheduled) from birth but has not occurred yet.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any one of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires once all the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())
