"""Scenario suite: a registry of named, hashed evaluation platforms.

Importing the package loads the built-in catalog, so
``list_scenarios()`` immediately enumerates every registered scenario::

    from repro.scenarios import get_scenario, list_scenarios

    for scenario in list_scenarios("wan"):
        platform = scenario.build()
"""

from .registry import (
    Scenario,
    clear_registry,
    get_scenario,
    list_scenarios,
    register,
    register_scenario,
    registry_snapshot,
    restore_registry,
    scenario_names,
    unregister,
)
from .catalog import load_catalog  # noqa: F401  (import populates the registry)

__all__ = [
    "Scenario",
    "register",
    "register_scenario",
    "get_scenario",
    "unregister",
    "list_scenarios",
    "scenario_names",
    "clear_registry",
    "registry_snapshot",
    "restore_registry",
    "load_catalog",
]
