"""Tests of the max-min fair flow model, TCP probes and background load."""

import numpy as np
import pytest

from repro.simkernel import Engine, Tracer
from repro.netsim import (
    CommunicationBlocked,
    Firewall,
    FlowModel,
    LoadSpec,
    BackgroundLoad,
    TcpModel,
    attach_firewall,
    build_ens_lyon,
    max_min_allocation,
)
from tests.test_netsim_topology import small_platform


class TestMaxMinAllocation:
    def test_single_flow_gets_bottleneck(self):
        rates = max_min_allocation([[("l", "ab")]], {("l", "ab"): 100.0})
        assert rates == [100.0]

    def test_two_flows_share_equally(self):
        keys = [[("l", "shared")], [("l", "shared")]]
        assert max_min_allocation(keys, {("l", "shared"): 100.0}) == [50.0, 50.0]

    def test_unequal_bottlenecks(self):
        caps = {("a", "ab"): 10.0, ("b", "ab"): 100.0, ("c", "ab"): 100.0}
        keys = [[("a", "ab"), ("c", "ab")], [("b", "ab"), ("c", "ab")]]
        rates = max_min_allocation(keys, caps)
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_unconstrained_flow_gets_infinity(self):
        assert max_min_allocation([[]], {}) == [float("inf")]

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            max_min_allocation([[("missing", "ab")]], {})

    def test_three_way_fairness(self):
        keys = [[("l", "shared")]] * 3
        rates = max_min_allocation(keys, {("l", "shared"): 90.0})
        assert rates == [30.0, 30.0, 30.0]

    def test_allocation_never_exceeds_capacity(self):
        caps = {("x", "ab"): 50.0, ("y", "ab"): 80.0}
        keys = [[("x", "ab")], [("x", "ab"), ("y", "ab")], [("y", "ab")]]
        rates = max_min_allocation(keys, caps)
        assert rates[0] + rates[1] <= 50.0 + 1e-9
        assert rates[1] + rates[2] <= 80.0 + 1e-9


class TestFlowModel:
    def test_single_transfer_duration(self):
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        ev = fm.transfer("a", "c", 1_000_000)
        result = eng.run(until=ev)
        # 1 MB over 100 Mbit/s = 0.08 s plus the route latency twice (one-way
        # charged before data flows, transfer afterwards).
        assert result.duration == pytest.approx(0.08 + 2 * 4e-4, rel=0.01)
        assert result.bandwidth_mbps == pytest.approx(99.0, rel=0.02)

    def test_same_host_transfer_is_instant(self):
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        ev = fm.transfer("a", "a", 1000)
        result = eng.run(until=ev)
        assert result.duration == 0.0

    def test_negative_size_rejected(self):
        p = small_platform()
        fm = FlowModel(Engine(), p)
        with pytest.raises(ValueError):
            fm.transfer("a", "b", -1)

    def test_concurrent_hub_transfers_halve_bandwidth(self):
        """The §2.3 collision effect: two probes on one hub each see ~half."""
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        ev1 = fm.transfer("a", "c", 1_000_000)
        ev2 = fm.transfer("b", "c", 1_000_000)
        r1 = eng.run(until=ev1)
        r2 = eng.run(until=ev2)
        assert r1.bandwidth_mbps == pytest.approx(50.0, rel=0.05)
        assert r2.bandwidth_mbps == pytest.approx(50.0, rel=0.05)

    def test_steady_state_matches_simulation(self):
        p = small_platform()
        fm = FlowModel(Engine(), p)
        rates = fm.steady_state_mbps([("a", "c"), ("b", "c")])
        assert rates == [pytest.approx(50.0), pytest.approx(50.0)]

    def test_switched_ports_do_not_interfere(self):
        platform = build_ens_lyon()
        fm = FlowModel(Engine(), platform)
        rates = fm.steady_state_mbps([("sci1", "sci2"), ("sci3", "sci4")])
        assert rates[0] == pytest.approx(100.0)
        assert rates[1] == pytest.approx(100.0)

    def test_sequential_transfers_do_not_interfere(self):
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        first = eng.run(until=fm.transfer("a", "c", 500_000))
        second = eng.run(until=fm.transfer("b", "c", 500_000))
        assert first.bandwidth_mbps == pytest.approx(second.bandwidth_mbps, rel=0.01)

    def test_tracer_records_flows(self):
        p = small_platform()
        eng = Engine()
        tracer = Tracer()
        fm = FlowModel(eng, p, tracer=tracer)
        eng.run(until=fm.transfer("a", "b", 1000, label="probe"))
        assert len(tracer.select("flow.start", label="probe")) == 1
        assert len(tracer.select("flow.end", label="probe")) == 1

    def test_completed_counters(self):
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        eng.run(until=fm.transfer("a", "b", 1234))
        assert fm.completed_transfers == 1
        assert fm.total_bytes_transferred == pytest.approx(1234)

    def test_efficiency_scales_capacity(self):
        p = small_platform()
        fm = FlowModel(Engine(), p, efficiency=0.5)
        assert fm.single_flow_mbps("a", "b") == pytest.approx(50.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            FlowModel(Engine(), small_platform(), efficiency=0.0)

    def test_firewall_blocks_transfer(self):
        p = small_platform()
        for name, dom in (("a", "private"), ("b", "private"), ("c", "public")):
            p.nodes[name].domain = dom
        fw = Firewall()
        fw.isolate_domain("private", gateways=("a",))
        attach_firewall(p, fw)
        eng = Engine(strict=False)
        fm = FlowModel(eng, p)
        ev = fm.transfer("b", "c", 1000)
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, CommunicationBlocked)
        # the gateway is still allowed
        ok = fm.transfer("a", "c", 1000)
        eng.run(until=ok)

    def test_many_concurrent_flows_complete(self):
        platform = build_ens_lyon(with_firewall=False)
        eng = Engine()
        fm = FlowModel(eng, platform)
        hosts = platform.host_names()
        events = [fm.transfer(a, b, 50_000)
                  for a in hosts[:6] for b in hosts[6:12] if a != b]
        eng.run(until=eng.all_of(events))
        assert fm.active_flow_count() == 0
        assert fm.completed_transfers == len(events)


class TestTcpModel:
    def test_rtt_and_connect(self):
        p = small_platform()
        tcp = TcpModel(FlowModel(Engine(), p))
        assert tcp.rtt("a", "c") == pytest.approx(8e-4)
        assert tcp.connect_time("a", "c") == pytest.approx(1.5 * 8e-4)

    def test_bandwidth_probe_matches_analytic(self):
        p = small_platform()
        tcp = TcpModel(FlowModel(Engine(), p))
        outcome = tcp.run_bandwidth_probe("a", "c")
        assert outcome.kind == "bandwidth"
        assert outcome.value == pytest.approx(tcp.analytic_bandwidth("a", "c"), rel=0.02)

    def test_latency_probe_close_to_rtt(self):
        p = small_platform()
        tcp = TcpModel(FlowModel(Engine(), p))
        outcome = tcp.run_latency_probe("a", "c")
        assert outcome.value == pytest.approx(tcp.rtt("a", "c"), rel=0.05)


class TestBackgroundLoad:
    def test_constant_load_generates_transfers(self):
        p = small_platform()
        eng = Engine()
        fm = FlowModel(eng, p)
        load = BackgroundLoad(fm, [LoadSpec("a", "c", interarrival_s=1.0,
                                            size_bytes=10_000, jitter=False)])
        load.start()
        eng.run(until=10.5)
        assert load.generated_transfers == 10
        load.stop()
        count = load.generated_transfers
        eng.run(until=20.0)
        assert load.generated_transfers == count

    def test_poisson_load_reproducible(self):
        p = small_platform()

        def run(seed):
            eng = Engine()
            fm = FlowModel(eng, p)
            rng = np.random.default_rng(seed)
            load = BackgroundLoad(fm, [LoadSpec("a", "b", 0.5, 5_000)], rng=rng)
            load.start()
            eng.run(until=20.0)
            return load.generated_transfers

        assert run(3) == run(3)
        assert run(3) != run(4) or run(3) > 0
