"""ENV mapper orchestration.

:class:`ENVMapper` chains the phases of paper §4.2 — lookup, extra
information gathering, structural topology, then the master-dependent
bandwidth experiments — and produces an :class:`~repro.env.envtree.ENVView`.

Firewalled platforms are handled as in §4.3: the mapper is run once on each
side (each with its own master and host list), and :func:`map_and_merge`
merges the per-side views with the gateway alias table.
:func:`map_ens_lyon` wires this up for the paper's platform with master
*the-doors* on the public side, reproducing Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..netsim.ens_lyon import PRIVATE_HOSTS, PUBLIC_HOSTS
from ..netsim.topology import Platform
from ..obs.trace import TRACER
from .bandwidth_tests import ClusterRefiner
from .envtree import ENVNetwork, ENVView, KIND_STRUCTURAL, merge_views
from .lookup import lookup_machines, site_domain_of
from .probes import (AnalyticProbeDriver, ProbeDriver, ProbeMemo,
                     SimulatedProbeDriver)
from .structural import StructuralNode, build_structural_tree
from .thresholds import DEFAULT_THRESHOLDS, ENVThresholds

__all__ = ["ENVMapper", "map_platform", "map_and_merge", "map_ens_lyon",
           "make_driver"]


def make_driver(platform: Platform, mode: str = "analytic",
                noise_sigma: float = 0.0,
                rng: Optional[np.random.Generator] = None,
                memo: Optional[ProbeMemo] = None,
                memoize: bool = True) -> ProbeDriver:
    """Create a probe driver.

    ``mode`` is ``"analytic"`` (steady-state oracle, fast) or ``"simulated"``
    (probe transfers scheduled on a discrete-event engine).  ``memo`` hands a
    shared :class:`ProbeMemo` to the analytic driver so repeated probes of
    unchanged pairs are answered without re-measuring (noiseless mode only;
    the simulated driver never memoises); ``memoize=False`` disables even the
    per-driver memo, modelling a naive tool that re-runs every experiment.
    """
    if mode == "analytic":
        return AnalyticProbeDriver(platform, noise_sigma=noise_sigma, rng=rng,
                                   memo=memo, memoize=memoize)
    if mode == "simulated":
        return SimulatedProbeDriver(platform)
    raise ValueError(f"unknown probe driver mode {mode!r}")


class ENVMapper:
    """Maps a platform from one master's point of view."""

    def __init__(self, driver: ProbeDriver, master: str,
                 hosts: Optional[Sequence[str]] = None,
                 thresholds: ENVThresholds = DEFAULT_THRESHOLDS):
        self.driver = driver
        self.platform = driver.platform
        self.master = master
        if hosts is None:
            hosts = self.platform.host_names()
        if master not in hosts:
            hosts = list(hosts) + [master]
        self.requested_hosts = sorted(set(hosts))
        self.thresholds = thresholds
        #: Hosts dropped because the master cannot exchange traffic with them.
        self.unreachable: List[str] = []

    # -- phases --------------------------------------------------------------
    def reachable_hosts(self) -> List[str]:
        """Hosts of the request the master can actually probe."""
        reachable = []
        self.unreachable = []
        for host in self.requested_hosts:
            if host == self.master or self.driver.can_communicate(self.master, host):
                reachable.append(host)
            else:
                self.unreachable.append(host)
        return reachable

    def run(self) -> ENVView:
        """Run the full mapping and return the effective view."""
        hosts = self.reachable_hosts()
        with TRACER.span("env.lookup", hosts=len(hosts)):
            machines = lookup_machines(self.driver, hosts)
        with TRACER.span("env.structural"):
            structural = build_structural_tree(self.driver, hosts,
                                               self.master)
        with TRACER.span("env.refine"):
            root = self._refine_tree(structural)
        view = ENVView(
            master=self.master,
            root=root,
            machines=machines,
            site_domain=site_domain_of(machines),
            stats=self.driver.stats,
        )
        return view

    # -- internals -------------------------------------------------------------
    def _refine_tree(self, node: StructuralNode) -> ENVNetwork:
        """Refine every structural machine group into classified networks."""
        refiner = ClusterRefiner(self.driver, self.master, self.thresholds)
        return self._refine_node(node, refiner, counter=[0])

    def _refine_node(self, node: StructuralNode, refiner: ClusterRefiner,
                     counter: List[int]) -> ENVNetwork:
        children: List[ENVNetwork] = []
        classified: List[ENVNetwork] = []
        if node.machines:
            clusters = refiner.refine(node.machines, gateway=node.gateway_host)
            for cluster in clusters:
                counter[0] += 1
                label = self._cluster_label(node, cluster.hosts, counter[0])
                classified.append(cluster.to_network(label))
            # The master belongs to the network of its own branch: attach it to
            # the refined cluster with the highest base bandwidth (its most
            # local peers), mirroring Figure 1(b) where the-doors sits on Hub 1.
            if self.master in node.machines and classified:
                home = max(classified,
                           key=lambda net: net.base_bandwidth_mbps or 0.0)
                if self.master not in home.hosts:
                    home.hosts = sorted(home.hosts + [self.master])
            elif self.master in node.machines and not classified:
                counter[0] += 1
                classified.append(ENVNetwork(label=f"net-{counter[0]}",
                                             kind=KIND_STRUCTURAL,
                                             hosts=[self.master]))
        for child in node.children.values():
            children.append(self._refine_node(child, refiner, counter))

        if not node.children and len(classified) == 1 and not node.machines == []:
            # A structural leaf fully described by one classified cluster:
            # return the cluster directly (keeping the structural label as a
            # fallback) instead of wrapping it in an empty structural node.
            leaf = classified[0]
            if leaf.gateway is None:
                leaf.gateway = node.gateway_host
            return leaf
        wrapper = ENVNetwork(label=node.label, kind=KIND_STRUCTURAL,
                             gateway=node.gateway_host)
        wrapper.children = classified + children
        return wrapper

    def _cluster_label(self, node: StructuralNode, hosts: Sequence[str],
                       index: int) -> str:
        if node.gateway_host is not None:
            return node.gateway_host
        if hosts:
            return sorted(hosts)[0]
        return f"net-{index}"


def map_platform(platform: Platform, master: str,
                 hosts: Optional[Sequence[str]] = None,
                 thresholds: ENVThresholds = DEFAULT_THRESHOLDS,
                 mode: str = "analytic",
                 noise_sigma: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 driver: Optional[ProbeDriver] = None) -> ENVView:
    """Map ``platform`` from ``master`` and return the effective view."""
    if driver is None:
        driver = make_driver(platform, mode=mode, noise_sigma=noise_sigma, rng=rng)
    mapper = ENVMapper(driver, master, hosts=hosts, thresholds=thresholds)
    return mapper.run()


def map_and_merge(platform: Platform,
                  sides: Sequence[Tuple[str, Sequence[str]]],
                  gateway_aliases: Optional[Mapping[str, str]] = None,
                  thresholds: ENVThresholds = DEFAULT_THRESHOLDS,
                  mode: str = "analytic",
                  noise_sigma: float = 0.0,
                  rng: Optional[np.random.Generator] = None) -> ENVView:
    """Map each firewall side separately and merge the views (paper §4.3).

    ``sides`` is an ordered list of ``(master, hosts)`` pairs; the first one
    is the "public" reference view into which the following ones are merged.
    """
    if not sides:
        raise ValueError("at least one (master, hosts) side is required")
    aliases = dict(gateway_aliases or {})
    views = [map_platform(platform, master, hosts, thresholds=thresholds,
                          mode=mode, noise_sigma=noise_sigma, rng=rng)
             for master, hosts in sides]
    merged = views[0]
    for view in views[1:]:
        merged = merge_views(merged, view, aliases)
    return merged


def map_ens_lyon(platform: Platform, master: str = "the-doors",
                 private_master: str = "popc0",
                 thresholds: ENVThresholds = DEFAULT_THRESHOLDS,
                 mode: str = "analytic",
                 noise_sigma: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> ENVView:
    """Reproduce the paper's ENS-Lyon mapping (Figure 1(b)).

    The public side is mapped from ``master`` (*the-doors* in the paper) over
    the ens-lyon.fr hosts and gateways; the firewalled ``popc.private`` side
    is mapped from ``private_master`` and merged in.
    """
    sides = [
        (master, PUBLIC_HOSTS),
        (private_master, PRIVATE_HOSTS),
    ]
    return map_and_merge(platform, sides, gateway_aliases={},
                         thresholds=thresholds, mode=mode,
                         noise_sigma=noise_sigma, rng=rng)
