"""Parsers turning external topology descriptions into a neutral graph.

The ENV evaluation so far ran exclusively on hand-built or synthetic
platforms; real measured topologies (CAIDA-style AS graphs, GraphML router
maps) are a far richer source of structure.  This module reads the common
interchange formats into a :class:`TopologyGraph` — a plain undirected graph
of named nodes — which :mod:`repro.ingest.build` then scales down and
annotates into a runnable :class:`~repro.netsim.topology.Platform`.

Supported formats (``FORMATS``):

``aslinks``
    CAIDA AS-links traces: ``D <from_AS> <to_AS> ...`` (direct) and
    ``I <from_AS> <to_AS> ...`` (indirect) lines; multi-origin AS tokens
    (``"701_1239"``) contribute their first AS.
``edges``
    Plain edge lists: one ``a b`` pair per line, ``#`` comments,
    whitespace- or comma-separated.
``graphml``
    GraphML XML (namespace-agnostic ``<node id>`` / ``<edge source target>``).
``brite``
    BRITE topology generator output (``Nodes:``/``Edges:`` sections); both
    router- and AS-level single-plane topologies.
``gridml``
    GridML documents; these carry full platform structure and bypass the
    graph stage (see :func:`repro.ingest.bridge.platform_from_gridml`).

Files ending in ``.gz`` are decompressed transparently — CAIDA publishes its
traces gzipped.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = ["TopologyGraph", "TopologyParseError", "FORMATS",
           "parse_edge_list", "parse_aslinks", "parse_graphml",
           "parse_brite", "detect_format", "file_digest", "read_text",
           "load_topology", "source_stem", "sanitise_name"]

#: Formats ``repro import`` understands.
FORMATS: Tuple[str, ...] = ("aslinks", "brite", "edges", "graphml", "gridml")


class TopologyParseError(ValueError):
    """Raised when a topology file cannot be parsed in the claimed format."""


@dataclass(frozen=True)
class TopologyGraph:
    """An undirected graph of named nodes (the neutral ingest representation).

    Nodes and edges are canonicalised: edges are stored with their endpoints
    sorted, deduplicated, self-loop free; node order is sorted.  Two parses
    of the same file therefore always compare equal.
    """

    name: str
    nodes: Tuple[str, ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def from_edges(cls, name: str, edges: Iterable[Tuple[str, str]],
                   extra_nodes: Iterable[str] = ()) -> "TopologyGraph":
        node_set = set(extra_nodes)
        edge_set = set()
        for a, b in edges:
            if a == b:
                continue
            node_set.update((a, b))
            edge_set.add((a, b) if a < b else (b, a))
        return cls(name=name, nodes=tuple(sorted(node_set)),
                   edges=tuple(sorted(edge_set)))

    def adjacency(self) -> Dict[str, FrozenSet[str]]:
        """Node → neighbour set."""
        adj: Dict[str, set] = {node: set() for node in self.nodes}
        for a, b in self.edges:
            adj[a].add(b)
            adj[b].add(a)
        return {node: frozenset(peers) for node, peers in adj.items()}

    def degrees(self) -> Dict[str, int]:
        """Node → degree, in one edge pass (no adjacency sets allocated)."""
        degree = {node: 0 for node in self.nodes}
        for a, b in self.edges:
            degree[a] += 1
            degree[b] += 1
        return degree

    def largest_component(self) -> "TopologyGraph":
        """The induced subgraph of the largest connected component.

        Ties break on the smallest member name, so the choice is
        deterministic; isolated nodes never survive (a one-node component is
        only returned when the graph holds nothing else).
        """
        adj = self.adjacency()
        unvisited = set(self.nodes)
        best: List[str] = []
        while unvisited:
            seed = min(unvisited)
            component = {seed}
            queue = [seed]
            while queue:
                for peer in adj[queue.pop()]:
                    if peer not in component:
                        component.add(peer)
                        queue.append(peer)
            unvisited -= component
            # Seeds are taken in increasing name order, so among equal-size
            # components the first found already has the smallest member —
            # strictly-larger keeps the documented tie-break.
            if len(component) > len(best):
                best = sorted(component)
        members = set(best)
        return TopologyGraph.from_edges(
            self.name,
            (e for e in self.edges if e[0] in members and e[1] in members),
            extra_nodes=best)


def parse_edge_list(text: str, name: str = "edges") -> TopologyGraph:
    """Parse a plain edge list (``a b`` per line, ``#`` comments)."""
    edges: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.replace(",", " ").split()
        if len(tokens) < 2:
            raise TopologyParseError(
                f"{name}:{lineno}: edge line needs two node names: {raw!r}")
        edges.append((tokens[0], tokens[1]))
    if not edges:
        raise TopologyParseError(f"{name}: no edges found")
    return TopologyGraph.from_edges(name, edges)


def _first_as(token: str) -> str:
    """The first AS of a (possibly multi-origin) CAIDA AS token."""
    return token.split("_", 1)[0].split(",", 1)[0]


def parse_aslinks(text: str, name: str = "aslinks") -> TopologyGraph:
    """Parse a CAIDA AS-links trace (``D``/``I`` link lines).

    Nodes are named ``as<number>`` so they read naturally as router names in
    the derived platforms.
    """
    edges: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line[0] not in "DI":
            continue
        tokens = line.split()
        if len(tokens) < 3:
            raise TopologyParseError(
                f"{name}:{lineno}: truncated AS-links line: {raw!r}")
        src, dst = _first_as(tokens[1]), _first_as(tokens[2])
        if not src.isdigit() or not dst.isdigit():
            raise TopologyParseError(
                f"{name}:{lineno}: non-numeric AS numbers: {raw!r}")
        edges.append((f"as{src}", f"as{dst}"))
    if not edges:
        raise TopologyParseError(f"{name}: no D/I link lines found")
    return TopologyGraph.from_edges(name, edges)


def parse_graphml(text: str, name: str = "graphml") -> TopologyGraph:
    """Parse a GraphML document (namespace-agnostic)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TopologyParseError(f"{name}: not well-formed XML: {exc}") from exc

    def local(tag: object) -> str:
        return tag.rsplit("}", 1)[-1] if isinstance(tag, str) else ""

    nodes: List[str] = []
    edges: List[Tuple[str, str]] = []
    for elem in root.iter():
        kind = local(elem.tag)
        if kind == "node":
            node_id = elem.get("id")
            if node_id:
                nodes.append(node_id)
        elif kind == "edge":
            src, dst = elem.get("source"), elem.get("target")
            if not src or not dst:
                raise TopologyParseError(
                    f"{name}: edge element without source/target")
            edges.append((src, dst))
    if not nodes and not edges:
        raise TopologyParseError(f"{name}: no GraphML nodes found")
    return TopologyGraph.from_edges(name, edges, extra_nodes=nodes)


#: Section headers a BRITE file is made of (``Topology:`` opens the file,
#: ``Nodes:``/``Edges:`` open the data sections; ``Model`` lines are
#: metadata).
_BRITE_SECTION = re.compile(r"^(Nodes|Edges)\s*:", re.IGNORECASE)


def parse_brite(text: str, name: str = "brite") -> TopologyGraph:
    """Parse BRITE topology-generator output.

    BRITE files carry a ``Nodes: ( N )`` section (``NodeId x y inDegree
    outDegree ASid type``) and an ``Edges: ( M )`` section (``EdgeId from
    to length delay bandwidth ASfrom ASto type [direction]``).  Only the
    structure is kept — nodes are named ``n<id>`` and edges connect them —
    because the sampling/annotation stage re-derives link properties from
    degree tiers, exactly as for the other graph formats.
    """
    section = None
    nodes: List[str] = []
    edges: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        header = _BRITE_SECTION.match(line)
        if header:
            section = header.group(1).lower()
            continue
        if section is None or line[0].isalpha():
            # Preamble ("Topology:", "Model ..."), or a stray header.
            continue
        tokens = line.split()
        if section == "nodes":
            if not tokens[0].lstrip("-").isdigit():
                raise TopologyParseError(
                    f"{name}:{lineno}: BRITE node line must start with a "
                    f"node id: {raw!r}")
            nodes.append(f"n{tokens[0]}")
        elif section == "edges":
            if len(tokens) < 3 or not tokens[1].lstrip("-").isdigit() \
                    or not tokens[2].lstrip("-").isdigit():
                raise TopologyParseError(
                    f"{name}:{lineno}: BRITE edge line needs numeric "
                    f"endpoints: {raw!r}")
            edges.append((f"n{tokens[1]}", f"n{tokens[2]}"))
    if not nodes and not edges:
        raise TopologyParseError(f"{name}: no BRITE Nodes:/Edges: sections "
                                 "found")
    if not edges:
        raise TopologyParseError(f"{name}: BRITE file has no edges")
    return TopologyGraph.from_edges(name, edges, extra_nodes=nodes)


_PARSERS = {
    "edges": parse_edge_list,
    "aslinks": parse_aslinks,
    "graphml": parse_graphml,
    "brite": parse_brite,
}


#: Archive/format suffixes stripped off a source file's basename when
#: deriving graph and scenario names (``a/b.txt.gz`` → ``b``).
_STEM_SUFFIXES = (".gz", ".txt", ".csv", ".edges", ".graphml", ".gridml",
                  ".grid", ".xml", ".brite")


def source_stem(path: str) -> str:
    """The source file's basename with archive/format suffixes stripped."""
    stem = os.path.basename(path)
    for suffix in _STEM_SUFFIXES:
        if stem.endswith(suffix):
            stem = stem[:-len(suffix)]
    return stem


def sanitise_name(name: str, fallback: str = "node") -> str:
    """``name`` reduced to a safe lowercase [a-z0-9-] identifier.

    Imported identifiers feed platform element names and cache-file paths,
    so separators and other specials must not survive.
    """
    cleaned = re.sub(r"[^A-Za-z0-9-]+", "-", name).strip("-").lower()
    return cleaned or fallback


def read_text(path: str) -> str:
    """File content as text, transparently decompressing ``.gz`` files."""
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return handle.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _read_prefix(path: str, limit: int = 1 << 18) -> str:
    """The first ``limit`` characters (sniffing must not slurp a huge trace)."""
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8",
                       errors="replace") as handle:
            return handle.read(limit)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read(limit)


def file_digest(path: str) -> str:
    """SHA-256 over the raw file bytes (the import's source identity)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def detect_format(path: str, text: str = None) -> str:
    """Guess the topology format from extension, then content."""
    stem = path[:-3] if path.endswith(".gz") else path
    ext = os.path.splitext(stem)[1].lower()
    if ext == ".graphml":
        return "graphml"
    if ext in (".gridml", ".grid"):
        return "gridml"
    if ext == ".brite":
        return "brite"
    if text is None:
        text = _read_prefix(path)
    stripped = text.lstrip()
    # BRITE output opens with "Topology: ( N Nodes, M Edges )" and carries
    # Nodes:/Edges: section headers — unmistakable, check before the
    # line-shape heuristics below.
    if stripped.startswith("Topology:") or _BRITE_SECTION.match(stripped):
        return "brite"
    if stripped.startswith("<"):
        # The GRID root may follow an XML declaration, long comment/license
        # headers and carry attributes — search the whole sniffed prefix.
        if re.search(r"<GRID[\s>/]", stripped):
            return "gridml"
        return "graphml"
    # Real CAIDA traces open with metadata lines (T/M/...) before the first
    # D/I link line — scan a prefix instead of judging the first data line,
    # and never mistake a metadata-only prefix for an edge list: a line
    # whose first token is a single uppercase letter is a CAIDA-style
    # record, not edge evidence.
    scanned = edge_like = 0
    for raw in stripped.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if line[0] in "DI" and len(tokens) >= 3 \
                and _first_as(tokens[1]).isdigit():
            return "aslinks"
        # A CAIDA-style record line ("T 1438387200", "M 12"): one uppercase
        # letter followed by a number.  "A B" is a legitimate edge.
        is_record = (len(tokens[0]) == 1 and tokens[0].isupper()
                     and len(tokens) >= 2
                     and tokens[1].lstrip("-").isdigit())
        if not is_record:
            edge_like += 1
        scanned += 1
        if scanned >= 200:
            break
    if edge_like:
        return "edges"
    if scanned:
        raise TopologyParseError(
            f"{path}: ambiguous topology format (only record-type lines "
            "in the scanned prefix); pass the format explicitly")
    raise TopologyParseError(f"{path}: cannot detect topology format "
                             "(empty file?)")


def load_topology(path: str, fmt: str = None,
                  digest: str = None) -> Tuple[TopologyGraph, str, str]:
    """Read ``path`` and return ``(graph, sha256 digest, resolved format)``.

    ``digest`` lets a caller that already hashed the file (scenario builders
    re-verifying their registration) skip the second read.  ``gridml`` files
    do not reduce to a plain graph (they carry full platform structure);
    callers route them through
    :func:`repro.ingest.bridge.platform_from_gridml` instead.
    """
    text = read_text(path)
    resolved = fmt or detect_format(path, text)
    if resolved == "gridml":
        raise ValueError("gridml files carry platform structure; "
                         "use platform_from_gridml instead of load_topology")
    if resolved not in _PARSERS:
        raise ValueError(f"unknown topology format {resolved!r}; "
                         f"supported: {', '.join(FORMATS)}")
    graph = _PARSERS[resolved](text, name=source_stem(path) or "topology")
    return graph, digest or file_digest(path), resolved
