"""Tests of the fault-injection layer: plans, determinism, write faults."""

import errno
import os

import pytest

from repro import faults
from repro.faults import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    activate_from_env,
    active_plan,
    clear_plan,
    fired_counts,
    inject_worker,
    install_plan,
    load_plan,
    write_fault,
)
from repro.ioutils import append_line, write_atomic


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no plan armed (env included)."""
    clear_plan()
    yield
    clear_plan()


class TestPlanParsing:
    def test_round_trip(self):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(kind="kill", match="star", on_attempts=(0,)),
            FaultSpec(kind="enospc", match="results.jsonl", times=2),
            FaultSpec(kind="hang", delay_s=1.5, probability=0.5),
        ))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultPlan.from_json('{"faults": [{"kind": "kill", "bogus": 1}]}')
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_json('{"seed": 1, "bogus": []}')

    def test_probability_bounds_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="raise", probability=1.5)

    def test_non_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_load_plan_literal_and_file(self, tmp_path):
        text = '{"seed": 3, "faults": [{"kind": "raise", "match": "x"}]}'
        literal = load_plan(text)
        assert literal.seed == 3 and literal.specs[0].kind == "raise"
        path = tmp_path / "plan.json"
        path.write_text(text, encoding="utf-8")
        assert load_plan(str(path)) == literal


class TestInstallation:
    def test_install_exports_env_and_clear_removes_it(self):
        plan = FaultPlan(specs=(FaultSpec(kind="raise"),))
        install_plan(plan)
        assert active_plan() == plan
        assert os.environ[ENV_VAR] == plan.to_json()
        clear_plan()
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_activate_from_env_adopts_inherited_plan(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec(kind="enospc"),))
        os.environ[ENV_VAR] = plan.to_json()
        assert activate_from_env() == plan
        assert active_plan() == plan

    def test_activate_is_idempotent_and_keeps_firing_counters(self):
        install_plan(FaultPlan(specs=(FaultSpec(kind="raise", times=5),)))
        with pytest.raises(FaultInjected):
            inject_worker("anything")
        assert fired_counts() == {0: 1}
        # Re-activation with an unchanged env token must NOT reset counters
        # (the worker entrypoint calls this per task).
        activate_from_env()
        assert fired_counts() == {0: 1}

    def test_invalid_env_plan_is_ignored_with_warning(self):
        os.environ[ENV_VAR] = "{broken"
        assert activate_from_env() is None


class TestWorkerFaults:
    def test_raise_fires_only_on_matching_key(self):
        install_plan(FaultPlan(specs=(FaultSpec(kind="raise", match="star"),)))
        inject_worker("ring-4")                      # no match: no fault
        with pytest.raises(FaultInjected):
            inject_worker("star-hub-8")

    def test_attempt_gating(self):
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="raise", on_attempts=(0, 2), times=-1),)))
        with pytest.raises(FaultInjected):
            inject_worker("s", attempt=0)
        inject_worker("s", attempt=1)                # gated off
        with pytest.raises(FaultInjected):
            inject_worker("s", attempt=2)
        inject_worker("s", attempt=3)

    def test_times_caps_firings_per_process(self):
        install_plan(FaultPlan(specs=(FaultSpec(kind="raise", times=2),)))
        for _ in range(2):
            with pytest.raises(FaultInjected):
                inject_worker("s")
        inject_worker("s")                           # cap reached

    def test_probability_is_deterministic_per_key_and_attempt(self):
        install_plan(FaultPlan(seed=11, specs=(
            FaultSpec(kind="raise", probability=0.5, times=-1),)))
        outcomes = {}
        for key in ("a", "b", "c", "d", "e", "f", "g", "h"):
            try:
                inject_worker(key)
                outcomes[key] = False
            except FaultInjected:
                outcomes[key] = True
        assert any(outcomes.values()) and not all(outcomes.values())
        # Same seed, same keys: identical outcomes on a fresh plan install.
        install_plan(FaultPlan(seed=11, specs=(
            FaultSpec(kind="raise", probability=0.5, times=-1),)))
        for key, fired in outcomes.items():
            if fired:
                with pytest.raises(FaultInjected):
                    inject_worker(key)
            else:
                inject_worker(key)

    def test_probability_zero_never_fires(self):
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="raise", probability=0.0, times=-1),)))
        for key in ("a", "b", "c"):
            inject_worker(key)
        assert fired_counts() == {}

    def test_kill_and_hang_are_inert_outside_pool_workers(self):
        # This test process is NOT a pool worker: a kill here would take
        # down pytest itself.  The fault must skip (and un-count itself so
        # a real worker can still fire it).
        install_plan(FaultPlan(specs=(FaultSpec(kind="kill"),
                                      FaultSpec(kind="hang", delay_s=60.0))))
        assert not faults.in_worker_process()
        inject_worker("anything")
        assert fired_counts() == {}


class TestWriteFaults:
    def test_enospc_append_raises_and_writes_nothing(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match="out.jsonl"),)))
        with pytest.raises(OSError) as excinfo:
            append_line(path, "hello\n")
        assert excinfo.value.errno == errno.ENOSPC
        assert not os.path.exists(path)
        # The fault is spent: the retry lands.
        append_line(path, "hello\n")
        assert _read(path) == "hello\n"

    def test_torn_append_leaves_half_a_line(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        append_line(path, "committed\n")
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="torn", match="out.jsonl"),)))
        with pytest.raises(OSError) as excinfo:
            append_line(path, "torn-away\n")
        assert excinfo.value.errno == errno.ENOSPC
        raw = _read(path)
        assert raw.startswith("committed\n")
        assert not raw.endswith("\n")                # the torn tail
        assert len(raw) < len("committed\n") + len("torn-away\n")

    def test_next_append_heals_a_torn_tail(self, tmp_path):
        # A later committed append must not be swallowed by merging into
        # the torn half-line a failed append left behind.
        path = str(tmp_path / "out.jsonl")
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="torn", match="out.jsonl"),)))
        with pytest.raises(OSError):
            append_line(path, "torn-away\n")
        append_line(path, "committed\n")
        lines = _read(path).split("\n")
        assert "committed" in lines                  # a whole line of its own

    def test_enospc_write_atomic_leaves_no_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match="doc.json"),)))
        with pytest.raises(OSError):
            write_atomic(path, "{}")
        assert not os.path.exists(path)
        assert os.listdir(str(tmp_path)) == []       # no tmp litter either

    def test_write_fault_matches_path_substring_only(self, tmp_path):
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match="results.jsonl"),)))
        assert write_fault(str(tmp_path / "other.jsonl")) is None
        assert write_fault(str(tmp_path / "results.jsonl")) == "enospc"

    def test_no_plan_means_no_overhead_faults(self, tmp_path):
        assert write_fault(str(tmp_path / "x")) is None
        path = str(tmp_path / "x.jsonl")
        append_line(path, "fine\n")
        assert _read(path) == "fine\n"

    def test_gridml_export_site_is_fault_covered(self, tmp_path):
        """Regression: ``write_gridml`` goes through ``write_atomic``.

        The exporter used to raw-``open(path, "w")`` — a write site
        invisible to fault injection that could leave half an XML file.
        ENOSPC at the site must now leave *nothing*, and the retry after
        the disk "recovers" must produce a complete, parseable document.
        """
        from repro.gridml import GridDocument, from_xml, write_gridml
        path = str(tmp_path / "export.xml")
        install_plan(FaultPlan(specs=(
            FaultSpec(kind="enospc", match="export.xml", times=1),)))
        with pytest.raises(OSError):
            write_gridml(GridDocument(label="Grid1"), path)
        assert not os.path.exists(path)              # no partial export
        assert os.listdir(str(tmp_path)) == []       # no tmp litter either
        write_gridml(GridDocument(label="Grid1"), path)   # fault exhausted
        assert from_xml(_read(path)).label == "Grid1"
