"""Empirical measurement-frequency analysis (experiment CLM-FREQ).

Paper §2.3: *"The token-ring algorithms are known to be not very scalable,
and the frequency of the measurements obviously decreases when the number of
hosts in a given clique increases."*  This module measures that effect on the
running NWS simulator: it extracts, from the trace of a run, the time between
two successive measurements of the same host pair, per clique, and relates it
to the clique size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional

import numpy as np

from ..nws.system import NWSSystem

__all__ = ["PairFrequency", "measurement_intervals", "frequency_vs_clique_size"]


@dataclass(frozen=True)
class PairFrequency:
    """Observed measurement cadence of one host pair."""

    pair: FrozenSet[str]
    clique: str
    samples: int
    mean_interval_s: float

    @property
    def frequency_hz(self) -> float:
        if self.mean_interval_s <= 0:
            return float("inf")
        return 1.0 / self.mean_interval_s


def measurement_intervals(system: NWSSystem) -> List[PairFrequency]:
    """Per-pair measurement statistics extracted from a run's trace."""
    by_pair: Dict[FrozenSet[str], Dict[str, List[float]]] = {}
    for record in system.tracer.select("nws.experiment_end"):
        pair = frozenset((record["src"], record["dst"]))
        entry = by_pair.setdefault(pair, {"times": [], "clique": record["clique"]})
        entry["times"].append(record.time)
    out: List[PairFrequency] = []
    for pair, entry in by_pair.items():
        times = sorted(entry["times"])
        if len(times) < 2:
            interval = float("inf")
        else:
            interval = float(np.mean(np.diff(times)))
        out.append(PairFrequency(pair=pair, clique=str(entry["clique"]),
                                 samples=len(times), mean_interval_s=interval))
    return out


def frequency_vs_clique_size(system: NWSSystem) -> List[Dict[str, object]]:
    """Rows of (clique, size, mean interval, mean frequency) for the report."""
    intervals = measurement_intervals(system)
    rows: List[Dict[str, object]] = []
    for clique_name, runner in sorted(system.cliques.items()):
        pair_stats = [p for p in intervals if p.clique == clique_name
                      and p.mean_interval_s != float("inf")]
        if pair_stats:
            mean_interval = float(np.mean([p.mean_interval_s for p in pair_stats]))
        else:
            mean_interval = float("inf")
        rows.append({
            "clique": clique_name,
            "size": len(runner.members),
            "pairs": len(pair_stats),
            "mean_interval_s": (round(mean_interval, 2)
                                if mean_interval != float("inf") else "inf"),
            "measurements": runner.stats.experiments,
        })
    return rows
